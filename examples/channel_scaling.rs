//! Multi-channel study (Section 4.3 of the paper): sweep 1, 2 and 4 memory
//! channels and all four address mapping schemes for one workload, reporting
//! the best mapping per channel count as the paper's Table 4 does.
//!
//! Run with (workload acronym optional, defaults to TPC-H Q6):
//! ```text
//! cargo run --release --example channel_scaling -- TPCH-Q6
//! ```

use cloudmc::memctrl::AddressMapping;
use cloudmc::sim::{run_system, SimStats, SystemConfig};
use cloudmc::workloads::Workload;

fn run_point(
    workload: Workload,
    channels: usize,
    mapping: AddressMapping,
) -> Result<SimStats, String> {
    let mut config = SystemConfig::baseline(workload);
    config.warmup_cpu_cycles = 80_000;
    config.measure_cpu_cycles = 300_000;
    config.mc.dram.channels = channels;
    config.mc.mapping = mapping;
    run_system(config)
}

fn main() -> Result<(), String> {
    let workload: Workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TPCH-Q6".to_owned())
        .parse()?;

    println!("workload: {workload}");
    let baseline = run_point(workload, 1, AddressMapping::RoRaBaCoCh)?;
    println!(
        "1 channel  ({}): IPC {:.3}, latency {:.1} ns, hit {:.1}%",
        baseline.mapping,
        baseline.user_ipc(),
        baseline.avg_read_latency_ns,
        baseline.row_buffer_hit_rate * 100.0
    );

    for channels in [2usize, 4] {
        let mut best: Option<SimStats> = None;
        for mapping in AddressMapping::all() {
            let stats = run_point(workload, channels, mapping)?;
            if best
                .as_ref()
                .map(|b| stats.user_ipc() > b.user_ipc())
                .unwrap_or(true)
            {
                best = Some(stats);
            }
        }
        let best = best.expect("at least one mapping evaluated");
        println!(
            "{} channels (best: {}): IPC {:.3} ({:+.1}% vs 1ch), latency {:.1} ns, hit {:.1}%",
            channels,
            best.mapping,
            best.user_ipc(),
            (best.normalized_ipc(&baseline) - 1.0) * 100.0,
            best.avg_read_latency_ns,
            best.row_buffer_hit_rate * 100.0
        );
    }
    println!(
        "\n(The paper finds extra channels help decision-support workloads (~+19% at 4 \
         channels) but barely move scale-out workloads (~+1.7%).)"
    );
    Ok(())
}
