//! Multi-channel study (Section 4.3 of the paper), in two parts:
//!
//! 1. A backend-shard sweep: 1, 2 and 4 independent memory controllers
//!    (`SystemConfig::num_channels`) serving block-interleaved traffic. On a
//!    bandwidth-bound workload the average read latency must fall (or at
//!    least not rise) with every added channel — the example asserts it.
//! 2. The paper's Table 4 view: per-controller channel count crossed with all
//!    four address mapping schemes, reporting the best mapping per count.
//!
//! Run with (workload acronym optional, defaults to TPC-H Q6):
//! ```text
//! cargo run --release --example channel_scaling -- TPCH-Q6
//! ```

use cloudmc::memctrl::AddressMapping;
use cloudmc::sim::{run_system, SimStats, SystemConfig};
use cloudmc::workloads::{Category, Workload};

fn scaled(workload: Workload) -> SystemConfig {
    let mut config = SystemConfig::baseline(workload);
    config.warmup_cpu_cycles = 80_000;
    config.measure_cpu_cycles = 300_000;
    config
}

fn run_shards(workload: Workload, num_channels: usize) -> Result<SimStats, String> {
    let mut config = scaled(workload);
    config.num_channels = num_channels;
    run_system(config)
}

fn run_mapping(
    workload: Workload,
    channels: usize,
    mapping: AddressMapping,
) -> Result<SimStats, String> {
    let mut config = scaled(workload);
    config.mc.dram.channels = channels;
    config.mc.mapping = mapping;
    run_system(config)
}

fn main() -> Result<(), String> {
    let workload: Workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TPCH-Q6".to_owned())
        .parse()?;
    println!("workload: {workload}\n");

    println!("— backend shards (SystemConfig::num_channels) —");
    let mut latencies = Vec::new();
    for num_channels in [1usize, 2, 4] {
        let stats = run_shards(workload, num_channels)?;
        println!(
            "{num_channels} channel(s): IPC {:.3}, avg read latency {:.1} DRAM cycles ({:.1} ns), \
             BW util {:.1}%",
            stats.user_ipc(),
            stats.avg_read_latency_dram,
            stats.avg_read_latency_ns,
            stats.bandwidth_utilization * 100.0
        );
        latencies.push(stats.avg_read_latency_dram);
    }
    let monotone = latencies.windows(2).all(|w| w[1] <= w[0]);
    if workload.category() == Category::DecisionSupport {
        // Bandwidth-bound workloads must get faster with every added channel.
        assert!(
            monotone,
            "average read latency must be monotonically non-increasing over 1/2/4 channels \
             on the bandwidth-bound workload, got {latencies:?}"
        );
        println!("latency is monotonically non-increasing: {latencies:?}\n");
    } else if monotone {
        println!("latency is monotonically non-increasing: {latencies:?}\n");
    } else {
        // Latency-bound workloads barely queue, so interleaving can cost a
        // cycle or two of row locality — the paper's Section 4.3 observation.
        println!("latency is not monotone (workload is not bandwidth-bound): {latencies:?}\n");
    }

    println!("— per-controller channels x address mapping (Table 4) —");
    let baseline = run_mapping(workload, 1, AddressMapping::RoRaBaCoCh)?;
    println!(
        "1 channel  ({}): IPC {:.3}, latency {:.1} ns, hit {:.1}%",
        baseline.mapping,
        baseline.user_ipc(),
        baseline.avg_read_latency_ns,
        baseline.row_buffer_hit_rate * 100.0
    );
    for channels in [2usize, 4] {
        let mut best: Option<SimStats> = None;
        for mapping in AddressMapping::all() {
            let stats = run_mapping(workload, channels, mapping)?;
            if best
                .as_ref()
                .map(|b| stats.user_ipc() > b.user_ipc())
                .unwrap_or(true)
            {
                best = Some(stats);
            }
        }
        let best = best.expect("at least one mapping evaluated");
        println!(
            "{} channels (best: {}): IPC {:.3} ({:+.1}% vs 1ch), latency {:.1} ns, hit {:.1}%",
            channels,
            best.mapping,
            best.user_ipc(),
            (best.normalized_ipc(&baseline) - 1.0) * 100.0,
            best.avg_read_latency_ns,
            best.row_buffer_hit_rate * 100.0
        );
    }
    println!(
        "\n(The paper finds extra channels help decision-support workloads (~+19% at 4 \
         channels) but barely move scale-out workloads (~+1.7%).)"
    );
    Ok(())
}
