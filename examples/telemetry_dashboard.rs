//! Text dashboard over the telemetry subsystem: runs a latency-critical +
//! batch tenant mix with every observability layer on and renders what came
//! back — the interval time series (with an IPC bar chart), the end-of-run
//! latency percentiles, a digest of the sampled request spans, and the
//! kernel self-profile.
//!
//! Telemetry collection is in-memory here; set `series_path`/`span_path` in
//! `TelemetryConfig` to stream the same records to JSON-lines files instead.
//!
//! Run with:
//! ```text
//! cargo run --release --example telemetry_dashboard
//! ```

use cloudmc::sim::{Simulator, SystemConfig};
use cloudmc::telemetry::{KernelPhase, SpanOutcome, TelemetryConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

/// An ASCII bar scaled so that `max` fills the full width.
fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(filled.min(width))
}

fn main() -> Result<(), String> {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = 20_000;
    cfg.measure_cpu_cycles = 160_000;
    cfg.telemetry = TelemetryConfig {
        sample_interval: 15_000,
        span_sample_every: 32,
        profile_kernel: true,
        ..TelemetryConfig::default()
    };
    let interval = cfg.telemetry.sample_interval;

    let mut sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    sim.run_warmup();
    let stats = sim.run_measurement().map_err(|e| e.to_string())?;

    println!("== time series (window = {interval} CPU cycles) ==");
    println!(
        "{:>9} {:>6} {:>7} {:>8} {:>6} {:>6} {:>11}  ipc",
        "cycle", "ipc", "reads", "avg lat", "hit%", "queue", "share t0/t1"
    );
    let series = sim.system().telemetry_series();
    let peak_ipc = series.iter().map(|s| s.ipc).fold(0.0f64, f64::max);
    for s in series {
        println!(
            "{:>9} {:>6.3} {:>7} {:>8.1} {:>6.1} {:>6.2} {:>5.2}/{:<5.2}  {}",
            s.cycle,
            s.ipc,
            s.reads_completed,
            s.avg_read_latency,
            s.row_hit_rate * 100.0,
            s.avg_read_queue,
            s.bandwidth_share.first().copied().unwrap_or(1.0),
            s.bandwidth_share.get(1).copied().unwrap_or(0.0),
            bar(s.ipc, peak_ipc, 24),
        );
    }

    println!("\n== read latency (DRAM cycles, measurement window) ==");
    println!(
        "avg {:.1}   p50 {:.1}   p95 {:.1}   p99 {:.1}   max {}",
        stats.avg_read_latency_dram,
        stats.read_latency_p50_dram,
        stats.read_latency_p95_dram,
        stats.read_latency_p99_dram,
        stats.read_latency_max_dram,
    );

    let spans = sim.system().telemetry_spans();
    println!(
        "\n== sampled request spans (1 in 32 by id; {} captured) ==",
        spans.len()
    );
    for outcome in [SpanOutcome::Hit, SpanOutcome::Miss, SpanOutcome::Conflict] {
        let matching: Vec<_> = spans.iter().filter(|s| s.outcome == outcome).collect();
        let avg_queue = if matching.is_empty() {
            0.0
        } else {
            matching.iter().map(|s| s.queue_delay() as f64).sum::<f64>() / matching.len() as f64
        };
        let avg_total = if matching.is_empty() {
            0.0
        } else {
            matching.iter().map(|s| s.latency() as f64).sum::<f64>() / matching.len() as f64
        };
        println!(
            "row {:<9} {:>5} spans   avg queue wait {:>6.1}   avg total {:>6.1}",
            outcome.as_str(),
            matching.len(),
            avg_queue,
            avg_total,
        );
    }
    if let Some(span) = spans.first() {
        println!(
            "first span: request {} ({}, tenant {}, channel {}): enqueue {} -> issue {} -> \
             complete {} ({}, {} retries)",
            span.id,
            span.access.as_str(),
            span.tenant,
            span.channel,
            span.enqueue,
            span.issue,
            span.completion,
            span.outcome.as_str(),
            span.retries,
        );
    }

    if let Some(profile) = sim.system_mut().kernel_profile() {
        println!("\n== kernel self-profile ==");
        for (name, phase) in [
            ("frontend", KernelPhase::Frontend),
            ("backend", KernelPhase::Backend),
            ("event queue", KernelPhase::EventQueue),
            ("barrier", KernelPhase::Barrier),
        ] {
            let fraction = profile.fraction(phase);
            println!(
                "{:<12} {:>5.1}%  {}",
                name,
                fraction * 100.0,
                bar(fraction, 1.0, 40)
            );
        }
        println!(
            "{} cycles stepped, {} jumped; {:.0} simulated CPU cycles per host us",
            profile.stepped_cpu_cycles,
            profile.jumped_cpu_cycles,
            profile.cycles_per_host_micro(),
        );
    }
    Ok(())
}
