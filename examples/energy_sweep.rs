//! Energy/latency Pareto sweep across page and power policies.
//!
//! The paper conjectures that the simplest policies would also be the
//! cheapest; this sweep makes the tradeoff visible on one workload by
//! crossing page policies with rank power-management policies and marking
//! the Pareto-optimal (no other point is both faster and cheaper)
//! combinations.
//!
//! Run with (workload acronym optional, defaults to Web Search; an
//! `--idle` flag throttles it to 2% intensity, where power-down matters):
//! ```text
//! cargo run --release --example energy_sweep -- WS --idle
//! ```

use cloudmc::memctrl::{PagePolicyKind, PowerPolicyKind};
use cloudmc::sim::{run_system, SimStats, SystemConfig};
use cloudmc::workloads::Workload;

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let idle = args.iter().any(|a| a == "--idle");
    let workload: Workload = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("WS", String::as_str)
        .parse()?;

    let pages = [
        PagePolicyKind::OpenAdaptive,
        PagePolicyKind::CloseAdaptive,
        PagePolicyKind::Rbpp,
        PagePolicyKind::Close,
    ];

    let mut points: Vec<SimStats> = Vec::new();
    for page in pages {
        for power in PowerPolicyKind::all() {
            let mut config = SystemConfig::baseline(workload);
            if idle {
                config.workload = config.workload.with_intensity(0.02);
            }
            config.warmup_cpu_cycles = 40_000;
            config.measure_cpu_cycles = 200_000;
            config.mc.page_policy = page;
            config.mc.power_policy = power;
            points.push(run_system(config)?);
        }
    }

    // A point is Pareto-optimal when no other point has both lower energy
    // and lower read latency.
    let pareto: Vec<bool> = points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                q.dram_energy_mj < p.dram_energy_mj
                    && q.avg_read_latency_dram < p.avg_read_latency_dram
            })
        })
        .collect();

    println!(
        "workload: {workload}{}",
        if idle {
            " (throttled to 2% intensity)"
        } else {
            ""
        }
    );
    println!(
        "{:<16} {:<13} {:>11} {:>11} {:>11} {:>10} {:>8}",
        "page policy",
        "power policy",
        "energy(mJ)",
        "bkgnd(mJ)",
        "latency(cy)",
        "PD resid%",
        "pareto"
    );
    for (stats, optimal) in points.iter().zip(&pareto) {
        println!(
            "{:<16} {:<13} {:>11.4} {:>11.4} {:>11.1} {:>10.1} {:>8}",
            stats.page_policy,
            stats.power_policy,
            stats.dram_energy_mj,
            stats.dram_background_energy_mj,
            stats.avg_read_latency_dram,
            stats.power_down_fraction * 100.0,
            if *optimal { "*" } else { "" }
        );
    }
    println!(
        "\n(* = Pareto-optimal: no other combination is both faster and cheaper. \
         On idle-heavy streams the power policies trade a few cycles of wake \
         latency for large background-energy savings; on dense streams the \
         ranks never idle long enough to park.)"
    );
    Ok(())
}
