//! Multi-tenant QoS comparison on one latency-critical + batch mix.
//!
//! Co-locates latency-critical Web Search with a batch TPC-H Q6 sweep on one
//! 16-core pod and compares the fairness-oriented schedulers the paper
//! studies (FR-FCFS baseline, PAR-BS, ATLAS) with and without the
//! controller's QoS policies. For each combination the table reports the
//! latency-critical tenant's slowdown versus running alone, the batch
//! tenant's slowdown, the weighted speedup and the per-tenant read latency.
//!
//! Run with:
//! ```text
//! cargo run --release --example tenant_mix
//! ```

use cloudmc::memctrl::{AtlasConfig, ParBsConfig, QosPolicyKind, SchedulerKind};
use cloudmc::sim::{run_system, SystemConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn main() -> Result<(), String> {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let schedulers = [
        SchedulerKind::FrFcfs,
        SchedulerKind::ParBs(ParBsConfig::default()),
        SchedulerKind::Atlas(AtlasConfig::default()),
    ];
    let scale = |mut cfg: SystemConfig| {
        cfg.warmup_cpu_cycles = 40_000;
        cfg.measure_cpu_cycles = 250_000;
        cfg
    };

    println!(
        "tenant mix: {} (tenant 0 = Web Search, latency-critical; tenant 1 = TPC-H Q6, batch)\n",
        mix.label()
    );
    println!(
        "{:<10} {:<18} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "qos policy", "LC slow", "batch slow", "w.speedup", "LC lat", "batch lat"
    );

    for scheduler in schedulers {
        // Alone-run baselines: each tenant with the whole memory system to
        // itself on its own core allocation.
        let mut alone_ipc = Vec::new();
        for tenant in mix.tenants() {
            let mut cfg = scale(SystemConfig::baseline(tenant.workload.workload));
            cfg.workload = tenant.workload;
            cfg.mc.scheduler = scheduler;
            alone_ipc.push(run_system(cfg)?.user_ipc());
        }
        for qos in QosPolicyKind::all() {
            let mut cfg = scale(SystemConfig::mixed(mix));
            cfg.mc.scheduler = scheduler;
            cfg.mc.qos.policy = qos;
            let stats = run_system(cfg)?;
            let slowdown: Vec<f64> = alone_ipc
                .iter()
                .enumerate()
                .map(|(t, &base)| base / stats.tenant_ipc(t).max(1e-12))
                .collect();
            let weighted_speedup: f64 = slowdown.iter().map(|s| 1.0 / s).sum();
            println!(
                "{:<10} {:<18} {:>8.3} {:>10.3} {:>10.3} {:>10.1} {:>10.1}",
                stats.scheduler,
                stats.qos_policy,
                slowdown[0],
                slowdown[1],
                weighted_speedup,
                stats.avg_read_latency_per_tenant[0],
                stats.avg_read_latency_per_tenant[1],
            );
        }
    }
    println!(
        "\nslowdown = alone-run IPC / shared IPC (1.0 = co-location is free); \
         latencies in DRAM cycles"
    );
    Ok(())
}
