//! Define a custom workload model (a hypothetical in-memory analytics
//! service), record a short trace of its access stream, and evaluate two
//! controller configurations against it.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cloudmc::memctrl::{PagePolicyKind, SchedulerKind};
use cloudmc::sim::{run_system, SystemConfig};
use cloudmc::workloads::{TraceRecord, TraceWriter, Workload, WorkloadSpec, WorkloadStreams};

fn main() -> Result<(), String> {
    // Start from a preset and customize it: a 16-core in-memory analytics
    // tier with higher memory intensity and more streaming locality than the
    // CloudSuite Data Serving workload it is based on.
    let spec = WorkloadSpec {
        data_mpki: 9.0,
        row_burst_prob: 0.22,
        row_burst_len: 12.0,
        store_fraction: 0.15,
        mlp_fraction: 0.45,
        core_imbalance: 0.1,
        ..Workload::DataServing.spec()
    };
    spec.validate()?;

    // Record a short trace of core 0's instruction stream (the same format
    // can be replayed through `cloudmc_workloads::TraceReader`).
    let mut streams = WorkloadStreams::from_spec(spec, 7);
    let mut writer = TraceWriter::new(Vec::new());
    for _ in 0..2_000 {
        let record = TraceRecord {
            core: 0,
            op: streams.stream_mut(0).next_op(),
        };
        writer.write(&record).map_err(|e| e.to_string())?;
    }
    let trace_bytes = writer.finish().map_err(|e| e.to_string())?;
    println!(
        "recorded {} trace records ({} bytes) for core 0\n",
        2_000,
        trace_bytes.len()
    );

    // Evaluate two controller designs against the custom workload.
    let candidates = [
        (
            "FR-FCFS + open-adaptive",
            SchedulerKind::FrFcfs,
            PagePolicyKind::OpenAdaptive,
        ),
        (
            "FCFS/bank + close-adaptive",
            SchedulerKind::FcfsBanks,
            PagePolicyKind::CloseAdaptive,
        ),
    ];
    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "controller", "IPC", "latency(ns)", "row hit %"
    );
    for (label, scheduler, policy) in candidates {
        let mut config = SystemConfig::baseline(Workload::DataServing);
        config.workload = spec;
        config.mc.scheduler = scheduler;
        config.mc.page_policy = policy;
        config.warmup_cpu_cycles = 80_000;
        config.measure_cpu_cycles = 300_000;
        let stats = run_system(config)?;
        println!(
            "{:<28} {:>8.3} {:>12.1} {:>10.1}",
            label,
            stats.user_ipc(),
            stats.avg_read_latency_ns,
            stats.row_buffer_hit_rate * 100.0
        );
    }
    Ok(())
}
