//! Quickstart: simulate the paper's baseline system running the Data Serving
//! workload and print the headline metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudmc::sim::{Simulator, SystemConfig};
use cloudmc::workloads::Workload;

fn main() -> Result<(), String> {
    // Table 2 baseline: 16 in-order cores, 4 MB shared L2, FR-FCFS
    // single-channel DDR3-1600 controller with the open-adaptive page policy.
    let mut config = SystemConfig::baseline(Workload::DataServing);
    config.warmup_cpu_cycles = 100_000;
    config.measure_cpu_cycles = 400_000;

    let stats = Simulator::new(config)?.run();

    println!("workload            : {}", stats.workload);
    println!("scheduler           : {}", stats.scheduler);
    println!("page policy         : {}", stats.page_policy);
    println!("user IPC (aggregate): {:.2}", stats.user_ipc());
    println!(
        "avg memory latency  : {:.1} DRAM cycles ({:.1} ns)",
        stats.avg_read_latency_dram, stats.avg_read_latency_ns
    );
    println!(
        "row-buffer hit rate : {:.1}%",
        stats.row_buffer_hit_rate * 100.0
    );
    println!(
        "single-access rows  : {:.1}%",
        stats.single_access_activation_fraction * 100.0
    );
    println!("L2 MPKI             : {:.2}", stats.l2_mpki);
    println!(
        "bandwidth utilized  : {:.1}%",
        stats.bandwidth_utilization * 100.0
    );
    println!(
        "read / write queue  : {:.2} / {:.2} entries",
        stats.avg_read_queue_len, stats.avg_write_queue_len
    );
    println!(
        "DRAM energy estimate: {:.2} mJ over {} CPU cycles",
        stats.dram_energy_mj, stats.cpu_cycles
    );
    Ok(())
}
