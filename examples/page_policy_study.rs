//! Compare DRAM page-management policies (Section 4.2 of the paper) on one
//! workload: open, close, open-adaptive, close-adaptive, RBPP, ABPP and the
//! idle-timer extension.
//!
//! Run with (workload acronym optional, defaults to Media Streaming):
//! ```text
//! cargo run --release --example page_policy_study -- MS
//! ```

use cloudmc::memctrl::PagePolicyKind;
use cloudmc::sim::{run_system, SystemConfig};
use cloudmc::workloads::Workload;

fn main() -> Result<(), String> {
    let workload: Workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MS".to_owned())
        .parse()?;

    let policies = [
        PagePolicyKind::OpenAdaptive,
        PagePolicyKind::CloseAdaptive,
        PagePolicyKind::Rbpp,
        PagePolicyKind::Abpp,
        PagePolicyKind::Open,
        PagePolicyKind::Close,
        PagePolicyKind::Timer,
    ];

    println!("workload: {workload}");
    println!(
        "{:<16} {:>8} {:>12} {:>10} {:>14}",
        "page policy", "IPC", "latency(ns)", "row hit %", "1-access rows%"
    );
    for policy in policies {
        let mut config = SystemConfig::baseline(workload);
        config.warmup_cpu_cycles = 80_000;
        config.measure_cpu_cycles = 300_000;
        config.mc.page_policy = policy;
        let stats = run_system(config)?;
        println!(
            "{:<16} {:>8.3} {:>12.1} {:>10.1} {:>14.1}",
            stats.page_policy,
            stats.user_ipc(),
            stats.avg_read_latency_ns,
            stats.row_buffer_hit_rate * 100.0,
            stats.single_access_activation_fraction * 100.0
        );
    }
    println!(
        "\n(The paper observes 77%-90% single-access activations and finds that \
         close-adaptive trades row hits for earlier closure.)"
    );
    Ok(())
}
