//! Compare the five memory scheduling algorithms of the paper (Section 4.1)
//! on one workload and print user IPC, latency and row-buffer hit rate.
//!
//! Run with (workload acronym optional, defaults to Web Search):
//! ```text
//! cargo run --release --example scheduler_comparison -- MS
//! ```

use cloudmc::memctrl::{AtlasConfig, ParBsConfig, RlConfig, SchedulerKind};
use cloudmc::sim::{run_system, SystemConfig};
use cloudmc::workloads::Workload;

fn main() -> Result<(), String> {
    let workload: Workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "WS".to_owned())
        .parse()?;

    let schedulers = [
        SchedulerKind::FrFcfs,
        SchedulerKind::FcfsBanks,
        SchedulerKind::ParBs(ParBsConfig::default()),
        SchedulerKind::Atlas(AtlasConfig::default()),
        SchedulerKind::Rl(RlConfig::default()),
    ];

    println!("workload: {workload}");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10}",
        "scheduler", "IPC", "latency(ns)", "row hit %", "rel. IPC"
    );
    let mut baseline_ipc = None;
    for scheduler in schedulers {
        let mut config = SystemConfig::baseline(workload);
        config.warmup_cpu_cycles = 80_000;
        config.measure_cpu_cycles = 300_000;
        config.mc.scheduler = scheduler;
        let stats = run_system(config)?;
        let ipc = stats.user_ipc();
        let base = *baseline_ipc.get_or_insert(ipc);
        println!(
            "{:<12} {:>8.3} {:>12.1} {:>10.1} {:>10.3}",
            stats.scheduler,
            ipc,
            stats.avg_read_latency_ns,
            stats.row_buffer_hit_rate * 100.0,
            ipc / base
        );
    }
    println!("\n(The paper finds FR-FCFS best or tied for every server workload.)");
    Ok(())
}
