//! Trace capture & replay: record a multi-tenant run's per-core op streams
//! to a trace file, replay the trace through a fresh system, and show that
//! the replayed statistics reproduce the original bit for bit.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_replay
//! ```

use cloudmc::sim::{run_system, SimStats, SystemConfig, WorkloadSource};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn main() -> Result<(), String> {
    // A latency-critical Web Search tenant consolidated with a batch TPC-H
    // Q6 scan — the kind of mixed run traces make exactly repeatable.
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut config = SystemConfig::mixed(mix);
    config.warmup_cpu_cycles = 50_000;
    config.measure_cpu_cycles = 200_000;

    let trace = std::env::temp_dir().join("cloudmc_trace_replay_example.trace");

    // 1. Record: the run behaves exactly as without the tap; every op the
    //    cores consume is streamed to the trace file.
    let mut record = config.clone();
    record.trace_record = Some(trace.clone());
    let recorded = run_system(record)?;

    // 2. Replay: the synthetic generators are bypassed; the cores re-execute
    //    the captured streams (tenancy, DMA and fast-forward all intact).
    let mut replay = config.clone();
    replay.source = WorkloadSource::Trace(trace.clone());
    let replayed = run_system(replay)?;

    let trace_bytes = std::fs::metadata(&trace).map(|m| m.len()).unwrap_or(0);
    println!("mix                  : {}", recorded.workload);
    println!(
        "trace file           : {} ({:.1} KiB)",
        trace.display(),
        trace_bytes as f64 / 1024.0
    );
    println!();
    println!("{:24} {:>12} {:>12}", "metric", "recorded", "replayed");
    let row = |name: &str, f: &dyn Fn(&SimStats) -> String| {
        println!("{:24} {:>12} {:>12}", name, f(&recorded), f(&replayed));
    };
    row("user IPC", &|s| format!("{:.4}", s.user_ipc()));
    row("user instructions", &|s| s.user_instructions.to_string());
    row("reads completed", &|s| s.reads_completed.to_string());
    row("avg read latency", &|s| {
        format!("{:.2}", s.avg_read_latency_dram)
    });
    row("row-buffer hit rate", &|s| {
        format!("{:.4}", s.row_buffer_hit_rate)
    });
    row("LC tenant slowdown ref", &|s| {
        format!("{:.3}", s.avg_read_latency_per_tenant[0])
    });
    println!();
    println!(
        "bit-identical        : {}",
        if recorded == replayed { "yes" } else { "NO" }
    );
    std::fs::remove_file(&trace).ok();
    if recorded == replayed {
        Ok(())
    } else {
        Err("replayed statistics diverged from the recording".to_owned())
    }
}
