//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion's API that the `cloudmc` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical machinery it runs a short warm-up,
//! then times enough iterations to fill a measurement window and reports the
//! mean wall-clock time per iteration. That is deliberately simple but more
//! than adequate for the relative before/after comparisons the repository's
//! microbenchmarks are used for.

use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (API compatibility only; the stand-in treats
/// every batch size identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    measured: Option<(u64, Duration)>,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Self {
            measured: None,
            measure_for,
        }
    }

    /// Times `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also provides a first cost estimate to size batches.
        let warm_start = Instant::now();
        black_box(routine());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (self.measure_for.as_nanos() / estimate.as_nanos() / 8).clamp(1, 1 << 24) as u64;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure_for {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
        }
        self.measured = Some((iters, elapsed));
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the routine
    /// is included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let target_iters =
            (self.measure_for.as_nanos() / estimate.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
            if elapsed >= self.measure_for {
                break;
            }
        }
        self.measured = Some((iters, elapsed));
    }
}

fn report(name: &str, measured: Option<(u64, Duration)>) {
    match measured {
        Some((iters, elapsed)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            let (value, unit) = if per_iter >= 1_000_000.0 {
                (per_iter / 1_000_000.0, "ms")
            } else if per_iter >= 1_000.0 {
                (per_iter / 1_000.0, "µs")
            } else {
                (per_iter, "ns")
            };
            println!("{name:<48} {value:>10.3} {unit}/iter  ({iters} iters)");
        }
        _ => println!("{name:<48} (no measurement recorded)"),
    }
}

/// Benchmark registry and runner, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CLOUDMC_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.measure_for);
        f(&mut bencher);
        report(&name.to_string(), bencher.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.measure_for);
        f(&mut bencher);
        report(&format!("{}/{name}", self.prefix), bencher.measured);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
    }
}
