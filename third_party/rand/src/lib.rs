//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate provides the exact subset of the `rand` 0.8 API that the
//! `cloudmc` workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng`] with `gen_range` / `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, with
//! excellent statistical quality for simulation purposes. Sequences differ
//! from upstream `rand`'s ChaCha-based `StdRng`, which is fine here: the
//! simulator only requires determinism for a fixed seed and good uniformity,
//! not a specific stream.

/// Random number generator implementations.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state words (checkpoint/restore support;
        /// not part of the upstream `rand` API).
        #[inline]
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Overwrites the generator state with previously captured words
        /// (checkpoint/restore support; not part of the upstream `rand`
        /// API). The all-zero state is degenerate for xoshiro and is mapped
        /// to the `seed_from_u64(0)` state instead.
        pub fn set_state(&mut self, state: [u64; 4]) {
            if state == [0; 4] {
                *self = crate::SeedableRng::seed_from_u64(0);
            } else {
                self.state = state;
            }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seedable construction of generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }
}

/// A half-open range that a value can be uniformly sampled from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `self` using `rng`.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> u64 {
        let span = self.end.checked_sub(self.start).expect("empty range");
        assert!(span > 0, "cannot sample an empty range");
        // Multiply-shift reduction (Lemire); bias is negligible for
        // simulation workloads and the result stays deterministic.
        let hi = ((u128::from(rng.next_u64_impl()) * u128::from(span)) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for core::ops::Range<u32> {
    type Output = u32;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> u32 {
        (u64::from(self.start)..u64::from(self.end)).sample(rng) as u32
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let unit = (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Draws one uniform sample from the half-open `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
