//! Observability must be invisible and deterministic — the two invariants
//! the telemetry subsystem is built on:
//!
//! 1. **Off ⇒ free.** With every telemetry layer disabled, `SimStats` is
//!    bit-identical to a run that never heard of telemetry, and enabling any
//!    layer still leaves `SimStats` bit-identical (observation must not
//!    perturb the simulation).
//! 2. **On ⇒ reproducible.** The interval time series and the sampled span
//!    trace are element-for-element identical across all three kernels
//!    (naive polling, horizon jumping, event-driven) and worker thread
//!    counts, for any seed — because samples land on exact cycle boundaries
//!    and span ids are minted in arrival order.

use cloudmc::memctrl::SchedulerKind;
use cloudmc::sim::{SimStats, Simulator, SystemConfig};
use cloudmc::telemetry::{SpanRecord, TelemetryConfig, TelemetrySample};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

const INTERVAL: u64 = 7_000; // deliberately not a divisor of the run length
const SPAN_EVERY: u64 = 16;

fn small(workload: Workload, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg
}

fn with_telemetry(mut cfg: SystemConfig) -> SystemConfig {
    cfg.telemetry = TelemetryConfig {
        sample_interval: INTERVAL,
        span_sample_every: SPAN_EVERY,
        ..TelemetryConfig::default()
    };
    cfg
}

/// Runs `cfg` to completion and returns the stats plus collected telemetry.
fn run_telemetry(cfg: &SystemConfig) -> (SimStats, Vec<TelemetrySample>, Vec<SpanRecord>) {
    let mut sim = Simulator::new(cfg.clone()).expect("valid config");
    sim.run_warmup();
    let stats = sim.run_measurement().expect("measurement");
    (
        stats,
        sim.system().telemetry_series().to_vec(),
        sim.system().telemetry_spans().to_vec(),
    )
}

/// Runs `cfg` under every kernel — naive, horizon, and the event kernel with
/// 1, 2 and 4 worker threads — and demands identical stats, series and spans.
fn assert_telemetry_equivalent(
    mut cfg: SystemConfig,
    label: &str,
) -> (SimStats, Vec<TelemetrySample>, Vec<SpanRecord>) {
    cfg.fast_forward = false;
    let naive = run_telemetry(&cfg);
    cfg.fast_forward = true;
    cfg.event_driven = false;
    let horizon = run_telemetry(&cfg);
    assert_eq!(
        horizon, naive,
        "{label}: horizon kernel diverged from the naive loop"
    );
    cfg.event_driven = true;
    for threads in [1usize, 2, 4] {
        cfg.threads = threads;
        let event = run_telemetry(&cfg);
        assert_eq!(
            event, naive,
            "{label}: event kernel with {threads} worker threads diverged"
        );
    }
    naive
}

/// Invariant 1, both directions: the default config and an explicit
/// telemetry-off config are the same run, and turning every layer on leaves
/// `SimStats` bit-identical to both.
#[test]
fn telemetry_never_perturbs_stats() {
    for seed in [1u64, 7] {
        let plain = small(Workload::TpchQ6, seed);
        let (reference, series, spans) = run_telemetry(&plain);
        assert!(
            series.is_empty() && spans.is_empty(),
            "off must collect nothing"
        );

        let mut off = plain.clone();
        off.telemetry = TelemetryConfig::off();
        let (off_stats, _, _) = run_telemetry(&off);
        assert_eq!(off_stats, reference, "explicit off must equal the default");

        let mut all = with_telemetry(plain.clone());
        all.telemetry.profile_kernel = true;
        let (on_stats, on_series, on_spans) = run_telemetry(&all);
        assert_eq!(
            on_stats, reference,
            "seed {seed}: enabling telemetry changed SimStats"
        );
        assert!(!on_series.is_empty() && !on_spans.is_empty());

        // Profiler-only: telemetry is "active" (snapshots refuse) yet collects
        // no series or spans, and still must not perturb the run.
        let mut profiled = plain.clone();
        profiled.telemetry.profile_kernel = true;
        let (prof_stats, prof_series, prof_spans) = run_telemetry(&profiled);
        assert_eq!(prof_stats, reference);
        assert!(prof_series.is_empty() && prof_spans.is_empty());
    }
}

/// Invariant 2 on single-tenant streams: identical series and spans across
/// kernels, thread counts and seeds, with exact-cycle sample boundaries.
#[test]
fn series_and_spans_are_identical_across_kernels_and_threads() {
    for workload in [Workload::TpchQ6, Workload::WebFrontend] {
        for seed in [1u64, 13] {
            let cfg = with_telemetry(small(workload, seed));
            let total = cfg.warmup_cpu_cycles + cfg.measure_cpu_cycles;
            let (stats, series, spans) =
                assert_telemetry_equivalent(cfg, &format!("{workload:?} seed {seed}"));
            assert!(stats.user_instructions > 0);
            assert_eq!(
                series.len() as u64,
                total / INTERVAL,
                "one sample per full interval"
            );
            for (i, s) in series.iter().enumerate() {
                assert_eq!(
                    s.cycle,
                    (i as u64 + 1) * INTERVAL,
                    "samples must land on exact interval boundaries"
                );
                assert!(s.bandwidth_share.is_empty(), "single-tenant share is empty");
            }
            assert!(!spans.is_empty(), "span trace must sample something");
            for s in &spans {
                assert_eq!(s.id % SPAN_EVERY, 0, "span sampling is id-deterministic");
                assert!(s.enqueue <= s.issue && s.issue <= s.completion);
            }
        }
    }
}

/// Invariant 2 where it is hardest: a sharded backend (the worker pool
/// actually engages at 2 and 4 threads), a latency-critical/batch tenant
/// mix, and a non-FCFS scheduler. Per-tenant bandwidth shares must agree
/// across every kernel too.
#[test]
fn sharded_tenant_mix_series_are_identical() {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = 5;
    cfg.num_channels = 2;
    cfg.mc.scheduler = SchedulerKind::paper_set()[1];
    let cfg = with_telemetry(cfg);
    let (stats, series, spans) = assert_telemetry_equivalent(cfg, "sharded mix");
    assert_eq!(stats.tenants, 2);
    assert!(!spans.is_empty());
    let mut saw_traffic = false;
    for s in &series {
        assert_eq!(s.bandwidth_share.len(), 2, "one share per tenant");
        let total: f64 = s.bandwidth_share.iter().sum();
        if s.reads_completed + s.writes_completed > 0 {
            saw_traffic = true;
            assert!(
                (total - 1.0).abs() < 1e-9,
                "shares must sum to 1 when traffic completed, got {total}"
            );
        }
    }
    assert!(saw_traffic, "mix must complete requests in some window");
}

/// The JSON-lines sinks round-trip: every series sample and span written at
/// the end of the measurement parses back to the in-memory record.
#[test]
fn jsonl_sinks_round_trip() {
    let dir = std::env::temp_dir().join("cloudmc_telemetry_equivalence");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let series_path = dir.join("series.jsonl");
    let span_path = dir.join("spans.jsonl");
    let mut cfg = with_telemetry(small(Workload::TpchQ6, 3));
    cfg.telemetry.series_path = Some(series_path.clone());
    cfg.telemetry.span_path = Some(span_path.clone());
    let (_, series, spans) = run_telemetry(&cfg);

    let series_file = std::fs::read_to_string(&series_path).expect("series file");
    let parsed: Vec<TelemetrySample> = series_file
        .lines()
        .map(|l| TelemetrySample::from_jsonl(l).expect("well-formed series line"))
        .collect();
    assert_eq!(parsed, series);

    let span_file = std::fs::read_to_string(&span_path).expect("span file");
    let parsed: Vec<SpanRecord> = span_file
        .lines()
        .map(|l| SpanRecord::from_jsonl(l).expect("well-formed span line"))
        .collect();
    assert_eq!(parsed, spans);
    let _ = std::fs::remove_dir_all(&dir);
}
