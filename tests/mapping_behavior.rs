//! Integration tests of the address-mapping behaviour that Section 4.3 of the
//! paper builds its multi-channel argument on: the baseline `RoRaBaCoCh`
//! scheme splits sequential cache blocks across channels (destroying row
//! locality), whereas the schemes with the channel bits higher up keep a
//! whole row's worth of blocks on one channel.

use cloudmc::dram::DramConfig;
use cloudmc::memctrl::AddressMapping;

#[test]
fn baseline_mapping_splits_a_row_across_channels() {
    let cfg = DramConfig::with_channels(4);
    let row_blocks = cfg.row_bytes / cfg.column_bytes;
    let mut channels_touched = std::collections::HashSet::new();
    for block in 0..row_blocks {
        channels_touched.insert(AddressMapping::RoRaBaCoCh.decode(block * 64, &cfg).channel);
    }
    assert_eq!(
        channels_touched.len(),
        4,
        "RoRaBaCoCh must interleave sequential blocks over every channel"
    );
}

#[test]
fn row_preserving_mappings_keep_sequential_blocks_on_one_channel_and_row() {
    let cfg = DramConfig::with_channels(4);
    for mapping in [
        AddressMapping::RoRaBaChCo,
        AddressMapping::RoRaChBaCo,
        AddressMapping::RoChRaBaCo,
    ] {
        let first = mapping.decode(0, &cfg);
        for block in 0..cfg.columns_per_row() {
            let d = mapping.decode(block * 64, &cfg);
            assert_eq!(
                d.channel, first.channel,
                "{mapping} split the row across channels"
            );
            assert_eq!(d.location.row, first.location.row);
            assert_eq!(d.location.bank, first.location.bank);
        }
    }
}

#[test]
fn all_mappings_cover_every_channel_bank_and_rank() {
    let cfg = DramConfig::with_channels(2);
    for mapping in AddressMapping::all() {
        let mut channels = std::collections::HashSet::new();
        let mut banks = std::collections::HashSet::new();
        let mut ranks = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            let d = mapping.decode(i * 64, &cfg);
            channels.insert(d.channel);
            banks.insert(d.location.bank);
            ranks.insert(d.location.rank);
        }
        assert_eq!(
            channels.len(),
            cfg.channels,
            "{mapping} does not use every channel"
        );
        assert_eq!(
            banks.len(),
            cfg.banks_per_rank,
            "{mapping} does not use every bank"
        );
        assert_eq!(
            ranks.len(),
            cfg.ranks_per_channel,
            "{mapping} does not use every rank"
        );
    }
}

#[test]
fn single_channel_geometry_makes_all_schemes_equivalent() {
    let cfg = DramConfig::baseline();
    for addr in (0..50u64).map(|i| i * 1_234_567 * 64 % cfg.capacity_bytes()) {
        let reference = AddressMapping::RoRaBaCoCh.decode(addr, &cfg);
        for mapping in AddressMapping::all() {
            let d = mapping.decode(addr, &cfg);
            assert_eq!(
                d.location.row, reference.location.row,
                "{mapping} row differs"
            );
            assert_eq!(d.location.column, reference.location.column);
        }
    }
}
