//! Workspace-level integration tests: the full simulator stack reproduces the
//! qualitative behaviours the paper's evaluation is built on.

use cloudmc::memctrl::{PagePolicyKind, SchedulerKind};
use cloudmc::sim::{run_system, SimStats, SystemConfig};
use cloudmc::workloads::{Category, Workload};

fn small(workload: Workload) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 20_000;
    cfg.measure_cpu_cycles = 80_000;
    cfg
}

fn run(cfg: SystemConfig) -> SimStats {
    run_system(cfg).expect("valid configuration")
}

#[test]
fn baseline_characteristics_are_in_calibrated_bands() {
    let ds = run(small(Workload::DataServing));
    // A 16-core pod commits between 1 and 16 instructions per cycle.
    assert!(
        ds.user_ipc() > 1.0 && ds.user_ipc() < 16.0,
        "IPC {}",
        ds.user_ipc()
    );
    // Row-buffer hit rate and single-access fraction are proper fractions.
    assert!(ds.row_buffer_hit_rate > 0.05 && ds.row_buffer_hit_rate < 0.9);
    assert!(ds.single_access_activation_fraction > 0.4);
    // Memory latency is at least the unloaded DRAM access time.
    assert!(ds.avg_read_latency_dram > 25.0);
    assert!(ds.bandwidth_utilization > 0.02 && ds.bandwidth_utilization < 1.0);
}

#[test]
fn decision_support_is_more_memory_intensive_than_scale_out() {
    let ws = run(small(Workload::WebSearch));
    let q6 = run(small(Workload::TpchQ6));
    assert!(
        q6.l2_mpki > 1.5 * ws.l2_mpki,
        "TPC-H Q6 MPKI {} should far exceed Web Search {}",
        q6.l2_mpki,
        ws.l2_mpki
    );
    assert!(
        q6.bandwidth_utilization > ws.bandwidth_utilization,
        "decision support should use more bandwidth"
    );
    assert!(q6.avg_read_queue_len > ws.avg_read_queue_len);
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let a = run(small(Workload::TpcC1));
    let b = run(small(Workload::TpcC1));
    assert_eq!(a.user_instructions, b.user_instructions);
    assert_eq!(a.reads_completed, b.reads_completed);
    assert_eq!(a.row_buffer_hit_rate, b.row_buffer_hit_rate);
}

#[test]
fn close_page_policy_destroys_row_hits_but_not_correctness() {
    let mut open = small(Workload::MediaStreaming);
    open.mc.page_policy = PagePolicyKind::OpenAdaptive;
    let mut close = small(Workload::MediaStreaming);
    close.mc.page_policy = PagePolicyKind::Close;
    let open_stats = run(open);
    let close_stats = run(close);
    assert!(close_stats.row_buffer_hit_rate < open_stats.row_buffer_hit_rate * 0.6);
    assert!(close_stats.reads_completed > 0);
    // Closing rows early raises the single-access fraction towards 1.
    assert!(
        close_stats.single_access_activation_fraction
            >= open_stats.single_access_activation_fraction
    );
}

#[test]
fn every_scheduler_completes_work_on_a_scale_out_workload() {
    let mut baseline_reads = None;
    for scheduler in SchedulerKind::paper_set() {
        let mut cfg = small(Workload::DataServing);
        cfg.mc.scheduler = scheduler;
        let stats = run(cfg);
        assert!(
            stats.reads_completed > 100,
            "{} completed too little",
            stats.scheduler
        );
        let base = *baseline_reads.get_or_insert(stats.reads_completed);
        // All schedulers serve the same closed-loop demand within 2x.
        assert!(stats.reads_completed * 2 > base);
    }
}

#[test]
fn additional_channels_help_decision_support_more_than_scale_out() {
    let run_channels = |workload: Workload, channels: usize| {
        let mut cfg = small(Workload::DataServing);
        cfg.workload = workload.spec();
        cfg.mc.num_cores = workload.spec().cores;
        cfg.mc.dram.channels = channels;
        run(cfg)
    };
    let ws1 = run_channels(Workload::WebSearch, 1);
    let ws4 = run_channels(Workload::WebSearch, 4);
    let q6_1 = run_channels(Workload::TpchQ6, 1);
    let q6_4 = run_channels(Workload::TpchQ6, 4);
    let ws_gain = ws4.user_ipc() / ws1.user_ipc();
    let q6_gain = q6_4.user_ipc() / q6_1.user_ipc();
    assert!(
        q6_gain > ws_gain,
        "channel scaling should help TPC-H Q6 ({q6_gain:.3}) more than Web Search ({ws_gain:.3})"
    );
    // Latency must improve for the saturated decision-support workload.
    assert!(q6_4.avg_read_latency_dram < q6_1.avg_read_latency_dram);
}

#[test]
fn web_frontend_runs_with_eight_cores_and_dma_traffic() {
    let wf = run(small(Workload::WebFrontend));
    assert_eq!(wf.cores, 8);
    assert_eq!(wf.instructions_per_core.len(), 8);
    assert!(
        wf.memory_writes_sent > 0,
        "DMA writes and write-backs expected"
    );
}

/// The zero-rate boundary of `WorkloadSpec::with_intensity(0.0)`: the spec
/// validates cleanly and the whole stack tolerates per-core streams that
/// (essentially) never emit memory ops — the frontend keeps committing
/// compute, the backend idles, and the run terminates normally with and
/// without the fast-forward (its best case: the event horizon spans almost
/// the entire run).
#[test]
fn zero_intensity_spec_runs_end_to_end() {
    for fast_forward in [true, false] {
        let mut cfg = small(Workload::WebSearch);
        cfg.workload = cfg.workload.with_intensity(0.0);
        cfg.fast_forward = fast_forward;
        cfg.validate().expect("zero-rate spec must validate");
        let stats = run(cfg);
        // Nearly every cycle commits a compute instruction on every core:
        // the only stalls possible come from the (rare) residual data events
        // of the 1e-3-MPKI generator floor.
        assert!(
            stats.user_ipc() > 15.0,
            "zero-rate run should be almost pure compute (IPC {})",
            stats.user_ipc()
        );
        assert!(
            stats.memory_reads_sent < 50,
            "zero-rate run sent {} reads",
            stats.memory_reads_sent
        );
        assert_eq!(stats.cpu_cycles, 80_000);
    }
}

#[test]
fn category_assignment_matches_table1() {
    assert_eq!(Workload::all().len(), 12);
    for w in Workload::scale_out() {
        assert_eq!(w.category(), Category::ScaleOut);
    }
    assert_eq!(Workload::TpcC1.category(), Category::Transactional);
    assert_eq!(Workload::TpchQ17.category(), Category::DecisionSupport);
}
