//! The checkpoint layer must be invisible: snapshot a system at cycle `C`,
//! restore the image onto a freshly built system, run to the end of the
//! measurement — and every statistic must be *bit-identical* to the
//! uninterrupted run. Exercised across all three kernels (naive polling,
//! horizon jumping, event-driven), worker thread counts, a mixed
//! latency-critical/batch tenancy, and a fault-injection configuration with
//! patrol scrub and row retirement active.
//!
//! These tests are the contract that lets the sweep orchestrator warm up
//! once and fork every measured replicate from the warm image: any mutable
//! field missing from the snapshot shows up here as a diverging counter.

use cloudmc::memctrl::{FaultConfig, SchedulerKind, UncorrectablePolicy};
use cloudmc::sim::{SimError, SimStats, Simulator, SystemConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn small(workload: Workload, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 40_000;
    cfg.seed = seed;
    cfg
}

/// The uninterrupted reference run for `cfg`.
fn uninterrupted(cfg: &SystemConfig) -> SimStats {
    let mut sim = Simulator::new(cfg.clone()).expect("valid config");
    sim.run_warmup();
    sim.run_measurement().expect("reference run")
}

/// Runs `cfg` to CPU cycle `at`, snapshots, restores onto a fresh system,
/// finishes the warm-up there and returns the measured statistics — which
/// the caller compares against the uninterrupted run.
fn interrupted_at(cfg: &SystemConfig, at: u64) -> SimStats {
    assert!(at <= cfg.warmup_cpu_cycles);
    let mut first = Simulator::new(cfg.clone()).expect("valid config");
    first.system_mut().run_cycles(at);
    let image = first.system().snapshot().expect("snapshot supported");
    drop(first);
    let mut second = Simulator::from_snapshot(cfg.clone(), &image).expect("restore");
    assert_eq!(
        second.system().cpu_cycle(),
        at,
        "restored clock must resume at the snapshot cycle"
    );
    // A snapshot of the restored-but-untouched system must reproduce the
    // image byte for byte: serialization is a pure function of state.
    let again = second.system().snapshot().expect("re-snapshot");
    assert_eq!(image, again, "restore → snapshot must be the identity");
    second.system_mut().run_cycles(cfg.warmup_cpu_cycles - at);
    second.run_measurement().expect("resumed run")
}

/// Snapshot/restore at the warm-up boundary and mid-warm-up, for one config.
fn assert_restartable(cfg: SystemConfig, label: &str) -> SimStats {
    let reference = uninterrupted(&cfg);
    for at in [cfg.warmup_cpu_cycles / 2, cfg.warmup_cpu_cycles] {
        let resumed = interrupted_at(&cfg, at);
        assert_eq!(
            resumed, reference,
            "{label}: run resumed from a cycle-{at} snapshot diverged"
        );
        assert_eq!(
            format!("{resumed:?}"),
            format!("{reference:?}"),
            "{label}: debug renderings must be byte-identical"
        );
    }
    reference
}

/// Acceptance criterion: bit-identity across all three kernels.
#[test]
fn every_kernel_resumes_bit_identically() {
    for (fast_forward, event_driven, kernel) in [
        (false, false, "naive"),
        (true, false, "horizon"),
        (true, true, "event"),
    ] {
        let mut cfg = small(Workload::DataServing, 7);
        cfg.fast_forward = fast_forward;
        cfg.event_driven = event_driven;
        let stats = assert_restartable(cfg, kernel);
        assert!(stats.user_instructions > 0, "{kernel} must commit work");
    }
}

/// Acceptance criterion: bit-identity for 1, 2 and 4 worker threads on a
/// sharded backend, where the threaded event path actually engages.
#[test]
fn every_thread_count_resumes_bit_identically() {
    let mut baseline: Option<SimStats> = None;
    for threads in [1usize, 2, 4] {
        let mut cfg = small(Workload::TpchQ6, 11);
        cfg.num_channels = 4;
        cfg.threads = threads;
        let stats = assert_restartable(cfg, &format!("{threads} threads"));
        match &baseline {
            None => baseline = Some(stats),
            Some(b) => assert_eq!(&stats, b, "{threads} threads changed the results"),
        }
    }
}

/// Acceptance criterion: a latency-critical + batch tenant mix (with the
/// DMA-driven web frontend so injector credit is in the image) resumes
/// bit-identically, including every per-tenant statistic.
#[test]
fn tenant_mix_resumes_bit_identically() {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebFrontend, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 40_000;
    cfg.seed = 5;
    let stats = assert_restartable(cfg, "tenant mix");
    assert_eq!(stats.tenants, 2);
    assert!(stats.instructions_per_tenant.iter().all(|&n| n > 0));
}

/// Acceptance criterion: a fault-enabled configuration — transient injection,
/// stuck rows, patrol scrub, demand retries, row retirement and poisoning all
/// active — resumes bit-identically, ledger and all.
#[test]
fn fault_injection_resumes_bit_identically() {
    let mut fc = FaultConfig::baseline();
    fc.seed = 3;
    fc.transient_rate_fp = FaultConfig::rate_per_million_reads(20_000);
    fc.uncorrectable_permille = 100;
    fc.scrub_interval = 300;
    fc.stuck_rows_per_rank = 2;
    fc.retire_threshold = 2;
    fc.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
    let mut cfg = small(Workload::TpchQ6, 3);
    cfg.mc.fault_model = Some(fc);
    let stats = assert_restartable(cfg, "fault model");
    assert!(stats.faults_injected > 0, "fault model never fired");
    assert!(stats.scrub_reads_issued > 0);
}

/// Stateful schedulers carry private clockwork (ATLAS quanta, PAR-BS
/// batches, the RL learner's tables and exploration RNG) that must survive
/// the round trip.
#[test]
fn stateful_schedulers_resume_bit_identically() {
    for scheduler in SchedulerKind::paper_set() {
        let mut cfg = small(Workload::WebSearch, 3);
        cfg.mc.scheduler = scheduler;
        assert_restartable(cfg, scheduler.label());
    }
}

/// Restoring under any differing configuration is a typed error, not a
/// silent misparse: the fingerprint covers every field.
#[test]
fn mismatched_config_fingerprint_is_a_typed_error() {
    let cfg = small(Workload::DataServing, 7);
    let mut sim = Simulator::new(cfg.clone()).expect("valid config");
    sim.system_mut().run_cycles(1_000);
    let image = sim.system().snapshot().expect("snapshot supported");
    let mut other = cfg.clone();
    other.seed = 8;
    match Simulator::from_snapshot(other, &image) {
        Err(SimError::Snapshot(msg)) => {
            assert!(
                msg.contains("fingerprint"),
                "error must name the fingerprint mismatch: {msg}"
            );
        }
        Err(other) => panic!("expected SimError::Snapshot, got {other}"),
        Ok(_) => panic!("restore under a different seed must fail"),
    }
    // The exact configuration still restores fine.
    Simulator::from_snapshot(cfg, &image).expect("same config restores");
}

/// Systems with trace taps cannot be snapshotted — typed error, not silent
/// state loss.
#[test]
fn trace_recording_system_refuses_to_snapshot() {
    let dir = std::env::temp_dir().join("cloudmc_snapshot_refuse_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("capture.trace");
    let mut cfg = small(Workload::WebSearch, 2);
    cfg.trace_record = Some(path);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.system_mut().run_cycles(100);
    match sim.system().snapshot() {
        Err(SimError::Snapshot(msg)) => {
            assert!(msg.contains("trace capture"), "unexpected reason: {msg}")
        }
        other => panic!("expected SimError::Snapshot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Systems with an active telemetry sink cannot be snapshotted or restored:
/// sample cursors, pending spans and profiler accumulators live outside the
/// snapshot format, so a restored replica would silently truncate its
/// series. Both directions are typed errors, and any single layer (time
/// series, span tracing, or the profiler alone) triggers the refusal.
#[test]
fn telemetry_system_refuses_snapshot_and_restore() {
    use cloudmc::telemetry::TelemetryConfig;
    let layers = [
        TelemetryConfig {
            sample_interval: 5_000,
            ..TelemetryConfig::default()
        },
        TelemetryConfig {
            span_sample_every: 16,
            ..TelemetryConfig::default()
        },
        TelemetryConfig {
            profile_kernel: true,
            ..TelemetryConfig::default()
        },
    ];
    for telemetry in layers {
        let mut cfg = small(Workload::WebSearch, 2);
        cfg.telemetry = telemetry;
        let mut sim = Simulator::new(cfg.clone()).expect("valid config");
        sim.system_mut().run_cycles(100);
        match sim.system().snapshot() {
            Err(SimError::Snapshot(msg)) => assert!(
                msg.contains("an active telemetry sink"),
                "unexpected reason: {msg}"
            ),
            other => panic!("expected SimError::Snapshot, got {other:?}"),
        }

        // The restore direction refuses symmetrically: an image captured
        // with telemetry off cannot be revived into a telemetry-on config
        // (the fingerprint also differs, but the refusal fires first).
        let mut plain = cfg.clone();
        plain.telemetry = TelemetryConfig::off();
        let mut donor = Simulator::new(plain).expect("valid config");
        donor.system_mut().run_cycles(100);
        let image = donor.system().snapshot().expect("plain system snapshots");
        match Simulator::from_snapshot(cfg, &image) {
            Err(SimError::Snapshot(msg)) => assert!(
                msg.contains("an active telemetry sink"),
                "unexpected reason: {msg}"
            ),
            other => panic!("expected SimError::Snapshot, got {other:?}"),
        }
    }
}
