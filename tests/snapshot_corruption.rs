//! Damaged snapshot images must always fail with a typed
//! [`SimError::Snapshot`] naming what went wrong — never a panic, never a
//! silent misparse into a subtly wrong system.
//!
//! The corpus is generated systematically from one valid image:
//!
//! - every truncation length (strided for large images, exhaustive near the
//!   header and the tail, where the envelope checks live);
//! - single-bit flips at strided positions (the trailing FNV-1a checksum
//!   must catch every one of them);
//! - *checksum-consistent* single-bit flips — flip a body byte, then
//!   recompute the trailing checksum — which drive the per-field validation
//!   paths: these must either restore cleanly (a flipped counter bit is
//!   undetectable and harmless) or fail typed, but never panic and never
//!   hang.

use cloudmc::sim::{SimError, Simulator, Snapshot, SystemConfig};
use cloudmc::snap::fnv1a;
use cloudmc::workloads::Workload;

fn small() -> SystemConfig {
    let mut cfg = SystemConfig::baseline(Workload::WebSearch);
    cfg.warmup_cpu_cycles = 2_000;
    cfg.measure_cpu_cycles = 10_000;
    cfg
}

/// One valid snapshot image of a warm system under `small()`.
fn valid_image() -> Vec<u8> {
    let mut sim = Simulator::new(small()).expect("valid config");
    sim.system_mut().run_cycles(2_000);
    sim.system()
        .snapshot()
        .expect("snapshot supported")
        .into_bytes()
}

/// Restores `bytes` under the matching config, demanding a typed snapshot
/// error (the `expect_failure` corpus) or tolerating success (the
/// checksum-consistent corpus). Panics and non-snapshot errors always fail.
fn restore_outcome(bytes: Vec<u8>, what: &str, expect_failure: bool) {
    match Simulator::from_snapshot(small(), &Snapshot::from_bytes(bytes)) {
        Ok(_) => assert!(!expect_failure, "{what}: corrupted image restored cleanly"),
        Err(SimError::Snapshot(msg)) => {
            assert!(!msg.is_empty(), "{what}: empty error message");
        }
        Err(other) => panic!("{what}: expected SimError::Snapshot, got {other}"),
    }
}

/// Every truncation of the image fails typed. Exhaustive over the first 64
/// lengths (magic, version, fingerprint, first sections) and the last 64
/// (checksum tail), strided through the middle.
#[test]
fn every_truncation_fails_typed() {
    let image = valid_image();
    let len = image.len();
    let mut lengths: Vec<usize> = (0..64.min(len)).collect();
    lengths.extend((len.saturating_sub(64)..len).filter(|&l| l >= 64));
    lengths.extend((64..len.saturating_sub(64)).step_by((len / 97).max(1)));
    lengths.sort_unstable();
    lengths.dedup();
    for cut in lengths {
        restore_outcome(image[..cut].to_vec(), &format!("truncated to {cut}"), true);
    }
}

/// Every strided single-bit flip fails typed: the header checks catch the
/// envelope bytes, the trailing checksum catches everything else.
#[test]
fn every_bit_flip_fails_typed() {
    let image = valid_image();
    let stride = (image.len() / 197).max(1);
    // The envelope (magic, version, fingerprint) exhaustively, the body
    // strided, every byte of the trailing checksum.
    let mut positions: Vec<usize> = (0..20.min(image.len())).collect();
    positions.extend((20..image.len()).step_by(stride));
    positions.extend(image.len().saturating_sub(8)..image.len());
    positions.sort_unstable();
    positions.dedup();
    for pos in positions {
        for bit in [0u8, 3, 7] {
            let mut bytes = image.clone();
            bytes[pos] ^= 1 << bit;
            restore_outcome(bytes, &format!("bit {bit} of byte {pos} flipped"), true);
        }
    }
}

/// Checksum-consistent flips — corruption the envelope *cannot* catch — must
/// drive the per-field validation to a typed error or an accepted parse,
/// never a panic. This is the corpus that exercises the `Truncated`,
/// `BadValue` and `SectionMismatch` paths inside the body.
#[test]
fn checksum_consistent_flips_never_panic() {
    let image = valid_image();
    let body_end = image.len() - 8;
    let stride = (body_end / 211).max(1);
    let mut positions: Vec<usize> = (0..24.min(body_end)).collect();
    positions.extend((24..body_end).step_by(stride));
    positions.sort_unstable();
    positions.dedup();
    for pos in positions {
        for bit in [0u8, 5] {
            let mut bytes = image.clone();
            bytes[pos] ^= 1 << bit;
            let checksum = fnv1a(&bytes[..body_end]);
            bytes[body_end..].copy_from_slice(&checksum.to_le_bytes());
            // Flips inside the envelope change magic/version/fingerprint and
            // must fail; body flips may parse (a counter changed) or fail
            // typed — either way, no panic.
            restore_outcome(
                bytes,
                &format!("consistent flip, bit {bit} of byte {pos}"),
                pos < 20,
            );
        }
    }
}

/// The degenerate images: empty, too short for the envelope, and foreign
/// bytes.
#[test]
fn degenerate_images_fail_typed() {
    restore_outcome(Vec::new(), "empty image", true);
    restore_outcome(vec![0u8; 27], "27 bytes (below envelope minimum)", true);
    restore_outcome(
        b"CMCSNAP1 but not really a snapshot".to_vec(),
        "prose",
        true,
    );
    restore_outcome(vec![0xFF; 4096], "4 KiB of 0xFF", true);
}
