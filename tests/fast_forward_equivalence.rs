//! The accelerated kernels must be invisible: the naive per-cycle loop, the
//! horizon recompute-and-jump loop (`fast_forward` without `event_driven`)
//! and the event-driven kernel (the default) — the latter with any worker
//! thread count — must all produce *bit-identical* statistics: every
//! counter, every latency sum, every per-core vector, every float — for any
//! workload, seed, scheduler, page policy and shard count.
//!
//! These tests are the contract that lets the kernel skip idle cycles at all:
//! any layer whose "next event" bound overshoots by even one cycle shows up
//! here as a diverging field.

use cloudmc::memctrl::{
    FaultConfig, PagePolicyKind, PowerPolicyKind, QosPolicyKind, SchedulerKind, UncorrectablePolicy,
};
use cloudmc::sim::{run_system, SimStats, SystemConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn small(workload: Workload, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg
}

/// Runs `cfg` under every kernel — naive polling, horizon jumping, and the
/// event kernel (plus 2- and 4-thread worker pools when the backend has more
/// than one shard, where the threaded path actually engages) — and demands
/// byte-identical results from all of them.
fn assert_equivalent(mut cfg: SystemConfig, label: &str) -> SimStats {
    cfg.fast_forward = false;
    let naive = run_system(cfg.clone()).expect("valid config");
    cfg.fast_forward = true;
    cfg.event_driven = false;
    let horizon = run_system(cfg.clone()).expect("valid config");
    assert_eq!(
        horizon, naive,
        "{label}: horizon loop diverged from the naive cycle loop"
    );
    cfg.event_driven = true;
    cfg.threads = 1;
    let event = run_system(cfg.clone()).expect("valid config");
    assert_eq!(
        event, naive,
        "{label}: event kernel diverged from the naive cycle loop"
    );
    assert_eq!(
        format!("{event:?}"),
        format!("{naive:?}"),
        "{label}: debug renderings must be byte-identical"
    );
    if cfg.num_channels > 1 {
        for threads in [2usize, 4] {
            cfg.threads = threads;
            let threaded = run_system(cfg.clone()).expect("valid config");
            assert_eq!(
                threaded, naive,
                "{label}: event kernel with {threads} worker threads diverged"
            );
        }
    }
    event
}

/// Acceptance criterion: identical stats on several seeded workloads under
/// the baseline controller (FR-FCFS, open-adaptive).
#[test]
fn baseline_stats_are_bit_identical_across_seeds() {
    for workload in [
        Workload::DataServing,
        Workload::WebFrontend, // exercises the DMA injector
        Workload::TpchQ6,      // dense decision-support stream
        Workload::WebSearch,   // low-intensity scale-out stream
    ] {
        for seed in [1u64, 7, 99] {
            let stats =
                assert_equivalent(small(workload, seed), &format!("{workload:?} seed {seed}"));
            assert!(stats.user_instructions > 0, "{workload:?} must commit work");
        }
    }
}

/// The horizon must respect every scheduler's private clockwork (ATLAS
/// quanta, PAR-BS batches, the RL learner's decision stream).
#[test]
fn every_scheduler_is_bit_identical() {
    for scheduler in SchedulerKind::paper_set() {
        let mut cfg = small(Workload::WebSearch, 3);
        cfg.mc.scheduler = scheduler;
        assert_equivalent(cfg, scheduler.label());
        // Two-shard variant: `assert_equivalent` adds 2- and 4-thread runs
        // for multi-shard backends, so this covers the threaded event path
        // under every scheduler's private clockwork.
        let mut sharded = small(Workload::WebSearch, 3);
        sharded.mc.scheduler = scheduler;
        sharded.num_channels = 2;
        assert_equivalent(sharded, &format!("{}/2 shards", scheduler.label()));
    }
}

/// The horizon must respect every page policy — including the idle-timer
/// policy, whose proposals flip purely with the passage of time.
#[test]
fn every_page_policy_is_bit_identical() {
    for policy in [
        PagePolicyKind::Open,
        PagePolicyKind::Close,
        PagePolicyKind::OpenAdaptive,
        PagePolicyKind::CloseAdaptive,
        PagePolicyKind::Rbpp,
        PagePolicyKind::Abpp,
        PagePolicyKind::Timer,
    ] {
        let mut cfg = small(Workload::MediaStreaming, 5);
        cfg.mc.page_policy = policy;
        assert_equivalent(cfg, &policy.to_string());
    }
}

/// The horizon must respect the power subsystem's clockwork: idle-timer
/// power-down entries, deepening transitions, self-refresh, wake-on-demand
/// and wake-for-refresh are all time- or event-driven, and the energy
/// accounting (state residency in closed form) must come out bit-identical.
/// Exercised on the idle-heavy stream where ranks actually reach the deep
/// states, and on a denser stream for the wake-on-demand churn.
#[test]
fn every_power_policy_is_bit_identical() {
    for policy in PowerPolicyKind::all() {
        let mut cfg = small(Workload::WebSearch, 5);
        cfg.workload = cfg.workload.with_intensity(0.02);
        cfg.mc.power_policy = policy;
        let stats = assert_equivalent(cfg, &format!("idle/{policy}"));
        if policy != PowerPolicyKind::None {
            assert!(
                stats.power_down_fraction > 0.0,
                "{policy}: idle-heavy run never powered down"
            );
        }

        let mut dense = small(Workload::TpchQ6, 5);
        dense.mc.power_policy = policy;
        assert_equivalent(dense, &format!("dense/{policy}"));
    }
}

/// Power management must stay bit-identical under every scheduler (their
/// private clockwork interleaves with wake fences) and with the
/// time-dependent timer page policy in the mix.
#[test]
fn power_down_is_bit_identical_across_schedulers() {
    for scheduler in SchedulerKind::paper_set() {
        let mut cfg = small(Workload::WebSearch, 3);
        cfg.workload = cfg.workload.with_intensity(0.05);
        cfg.mc.scheduler = scheduler;
        cfg.mc.power_policy = PowerPolicyKind::IdleTimer;
        assert_equivalent(cfg, &format!("power/{}", scheduler.label()));
    }
    let mut cfg = small(Workload::MediaStreaming, 7);
    cfg.mc.page_policy = PagePolicyKind::Timer;
    cfg.mc.power_policy = PowerPolicyKind::PowerAware;
    assert_equivalent(cfg, "power/timer-page-policy");
}

/// A latency-critical + batch tenant mix: every `*_per_tenant` statistic
/// (instructions, completions, latency sums, bandwidth shares, queue
/// occupancies — `SimStats` equality covers them all) must be bit-identical
/// with the fast-forward on and off, under every scheduler and QoS policy.
/// The QoS arbiter preempts the command slot and rolls its partition epochs
/// in catch-up style, so this is where an overshooting horizon would show.
#[test]
fn tenant_mixes_and_qos_policies_are_bit_identical() {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    for scheduler in SchedulerKind::paper_set() {
        for qos in QosPolicyKind::all() {
            let mut cfg = SystemConfig::mixed(mix);
            cfg.warmup_cpu_cycles = 10_000;
            cfg.measure_cpu_cycles = 60_000;
            cfg.seed = 5;
            cfg.mc.scheduler = scheduler;
            cfg.mc.qos.policy = qos;
            let stats = assert_equivalent(cfg, &format!("{}/{qos}", scheduler.label()));
            assert_eq!(stats.tenants, 2);
            assert!(
                stats.instructions_per_tenant.iter().all(|&n| n > 0),
                "{}/{qos}: every tenant must make progress",
                scheduler.label()
            );
        }
    }
    // A three-tenant mix including the DMA-driven Web Frontend, whose
    // per-tenant injector credit must also survive bulk accrual.
    let with_dma = MixSpec::new(TenantSpec::latency_critical(Workload::WebFrontend, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 4))
        .and(TenantSpec::batch(Workload::TpcC1, 4));
    for qos in QosPolicyKind::all() {
        let mut cfg = SystemConfig::mixed(with_dma);
        cfg.warmup_cpu_cycles = 10_000;
        cfg.measure_cpu_cycles = 60_000;
        cfg.mc.qos.policy = qos;
        assert_equivalent(cfg, &format!("dma-mix/{qos}"));
    }
    // A sharded tenant mix: the threaded event path under QoS accounting.
    let mut sharded_mix = SystemConfig::mixed(mix);
    sharded_mix.warmup_cpu_cycles = 10_000;
    sharded_mix.measure_cpu_cycles = 60_000;
    sharded_mix.num_channels = 2;
    assert_equivalent(sharded_mix, "mix/2 shards");
}

/// Sharded backends and multi-channel controllers fast-forward identically.
#[test]
fn sharded_and_multichannel_backends_are_bit_identical() {
    let mut sharded = small(Workload::TpchQ6, 11);
    sharded.num_channels = 2;
    assert_equivalent(sharded, "2 shards");

    let mut multichannel = small(Workload::TpchQ6, 11);
    multichannel.mc.dram.channels = 2;
    assert_equivalent(multichannel, "2 channels");
}

/// The worker pool must be invisible: identical `SimStats` for 1, 2 and 4
/// worker threads across seeds on a four-shard backend, where every DRAM
/// tick fans due shards out to the pool and joins them at the clock-crossing
/// barrier.
#[test]
fn thread_count_never_changes_results() {
    for seed in [1u64, 13] {
        let mut cfg = small(Workload::TpchQ6, seed);
        cfg.num_channels = 4;
        cfg.event_driven = true;
        let mut baseline: Option<SimStats> = None;
        for threads in [1usize, 2, 4] {
            cfg.threads = threads;
            let stats = run_system(cfg.clone()).expect("valid config");
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => assert_eq!(
                    &stats, b,
                    "seed {seed}: {threads} worker threads changed the results"
                ),
            }
        }
    }
}

/// The reliability subsystem rides the same clockwork: with fault
/// injection, patrol scrub, bounded demand retries and poison-and-continue
/// all active, every kernel (and the threaded pool, on the sharded variant)
/// must still produce bit-identical statistics. Scrub emission and retry
/// release are timed events, so an overshooting `next_ready` bound in the
/// fault layer shows up here as a diverging counter.
#[test]
fn fault_injection_and_scrub_are_bit_identical() {
    let fault = |seed: u64| {
        let mut fc = FaultConfig::baseline();
        fc.seed = seed;
        fc.transient_rate_fp = FaultConfig::rate_per_million_reads(20_000);
        fc.uncorrectable_permille = 100;
        fc.scrub_interval = 300;
        fc.stuck_rows_per_rank = 2;
        fc.retire_threshold = 2;
        fc.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
        fc
    };
    for scheduler in SchedulerKind::paper_set() {
        let mut cfg = small(Workload::TpchQ6, 3);
        cfg.mc.scheduler = scheduler;
        cfg.mc.fault_model = Some(fault(3));
        let stats = assert_equivalent(cfg, &format!("fault/{}", scheduler.label()));
        assert!(
            stats.faults_injected > 0,
            "{}: fault model never fired",
            scheduler.label()
        );
        assert!(stats.scrub_reads_issued > 0);
    }
    // Sharded + power-managed variant: per-shard fault seeds, scrub across
    // two controllers and residency-scaled fault rates under the threaded
    // event path (`assert_equivalent` adds 2- and 4-thread runs here).
    let mut sharded = small(Workload::WebSearch, 7);
    sharded.num_channels = 2;
    sharded.mc.power_policy = PowerPolicyKind::IdleTimer;
    sharded.mc.fault_model = Some(fault(7));
    let stats = assert_equivalent(sharded, "fault/2 shards/idle-timer");
    assert!(stats.faults_injected > 0);
}

/// Request conservation holds at arbitrary observation points mid-run, even
/// when those points land inside fast-forwarded regions.
#[test]
fn conservation_holds_under_fast_forward() {
    use cloudmc::sim::System;
    let cfg = small(Workload::WebSearch, 2);
    let mut system = System::new(cfg).unwrap();
    for _ in 0..14 {
        system.run_cycles(5_000);
        let sent = system.memory_reads_sent() + system.memory_writes_sent();
        let completed = system.controller_stats().completed();
        assert_eq!(sent, completed + system.requests_in_flight());
    }
}
