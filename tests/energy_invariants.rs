//! Invariants of the energy subsystem at full-system level:
//!
//! 1. **Fast-forward transparency** — `SimStats` energy totals (and every
//!    other field) are bit-identical with the event-horizon fast-forward on
//!    and off, across all 5 schedulers x all 7 page policies with power
//!    management active.
//! 2. **Conservation** — power-state residency cycles sum to the elapsed
//!    rank-cycles of the measurement window.
//! 3. **Monotone accrual** — energy read at successive observation points
//!    never decreases and is never negative.
//! 4. **Savings** — enabling power-down on an idle-heavy workload cuts
//!    background energy relative to the no-power-management baseline.

use cloudmc::dram::EnergyModel;
use cloudmc::memctrl::{PagePolicyKind, PowerPolicyKind, SchedulerKind};
use cloudmc::sim::{run_system, System, SystemConfig};
use cloudmc::workloads::Workload;

fn idle_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(Workload::WebSearch);
    cfg.workload = cfg.workload.with_intensity(0.02);
    cfg.warmup_cpu_cycles = 5_000;
    cfg.measure_cpu_cycles = 30_000;
    cfg.seed = seed;
    cfg
}

/// Acceptance criterion: energy totals bit-identical between fast-forward on
/// and off for every scheduler and every page policy (power-down enabled so
/// the power-state machinery is actually in the loop).
#[test]
fn energy_is_bit_identical_across_all_schedulers_and_page_policies() {
    let all_pages = [
        PagePolicyKind::Open,
        PagePolicyKind::Close,
        PagePolicyKind::OpenAdaptive,
        PagePolicyKind::CloseAdaptive,
        PagePolicyKind::Rbpp,
        PagePolicyKind::Abpp,
        PagePolicyKind::Timer,
    ];
    for scheduler in SchedulerKind::paper_set() {
        for page in all_pages {
            let mut cfg = idle_config(9);
            cfg.mc.scheduler = scheduler;
            cfg.mc.page_policy = page;
            cfg.mc.power_policy = PowerPolicyKind::IdleTimer;
            cfg.fast_forward = true;
            let fast = run_system(cfg.clone()).unwrap();
            cfg.fast_forward = false;
            let naive = run_system(cfg).unwrap();
            assert_eq!(
                fast.dram_energy_mj.to_bits(),
                naive.dram_energy_mj.to_bits(),
                "{}/{page}: energy diverged under fast-forward",
                scheduler.label()
            );
            assert_eq!(
                fast,
                naive,
                "{}/{page}: stats diverged under fast-forward",
                scheduler.label()
            );
            assert!(fast.dram_energy_mj > 0.0);
        }
    }
}

#[test]
fn residency_cycles_sum_to_elapsed_rank_cycles() {
    for power in PowerPolicyKind::all() {
        let mut cfg = idle_config(3);
        cfg.mc.power_policy = power;
        let ranks = cfg.mc.dram.ranks_per_channel as u64 * cfg.mc.dram.channels as u64;
        let mut system = System::new(cfg).unwrap();
        system.run_cycles(40_000);
        let dram_cycles = SystemConfig::cpu_to_dram_cycles(40_000);
        let device = system.backend().device_totals_at(dram_cycles);
        assert_eq!(
            device.state_residency_cycles(),
            dram_cycles * ranks,
            "{power}: residency must cover every rank-cycle exactly once"
        );
        if power == PowerPolicyKind::None {
            assert_eq!(device.powered_down_cycles(), 0);
        } else {
            assert!(
                device.powered_down_cycles() > 0,
                "{power}: idle-heavy run never powered down"
            );
        }
    }
}

#[test]
fn energy_accrues_monotonically_and_non_negative() {
    let mut cfg = idle_config(11);
    cfg.mc.power_policy = PowerPolicyKind::IdleTimer;
    let model = EnergyModel::new(cfg.energy);
    let timing = cfg.mc.dram.timing;
    let mut system = System::new(cfg).unwrap();
    let mut last = 0.0f64;
    for step in 1..=12u64 {
        system.run_cycles(4_000);
        let dram_now = SystemConfig::cpu_to_dram_cycles(step * 4_000);
        let device = system.backend().device_totals_at(dram_now);
        let energy = model.breakdown_from_residency(&device, &timing).total_pj();
        assert!(energy >= 0.0);
        assert!(
            energy >= last,
            "energy shrank between observations ({energy} < {last})"
        );
        last = energy;
    }
    assert!(last > 0.0, "a running system must consume energy");
}

#[test]
fn power_down_saves_background_energy_on_idle_workload() {
    let mut base = idle_config(1);
    base.mc.power_policy = PowerPolicyKind::None;
    let off = run_system(base).unwrap();
    for power in [
        PowerPolicyKind::Immediate,
        PowerPolicyKind::IdleTimer,
        PowerPolicyKind::PowerAware,
    ] {
        let mut cfg = idle_config(1);
        cfg.mc.power_policy = power;
        let on = run_system(cfg).unwrap();
        assert!(
            on.dram_background_energy_mj < off.dram_background_energy_mj,
            "{power}: background {} must undercut baseline {}",
            on.dram_background_energy_mj,
            off.dram_background_energy_mj
        );
        assert!(on.power_down_fraction > 0.0);
        assert!(on.power_down_entries > 0);
    }
}
