//! Invariants of the multi-tenant QoS subsystem.
//!
//! * **Per-tenant request conservation** — at any observation point, every
//!   tenant's requests sent equal its completions plus its requests still in
//!   flight (queued, in DRAM, or parked in retry buckets). QoS reordering
//!   may delay a tenant, never lose or misattribute it.
//! * **Determinism** — identical seeds give bit-identical per-tenant stats;
//!   different seeds actually change the streams.
//! * **Protection** — the priority boost must reduce the latency-critical
//!   tenant's read latency on a contended mix, and the batch tenant pays,
//!   keeping total completions conserved.

use cloudmc::memctrl::{QosPolicyKind, MAX_TENANTS};
use cloudmc::sim::{run_system, SimStats, System, SystemConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn lc_batch_mix() -> MixSpec {
    MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8))
}

fn small_mixed(qos: QosPolicyKind, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::mixed(lc_batch_mix());
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg.mc.qos.policy = qos;
    cfg
}

/// Per-tenant conservation at arbitrary mid-run observation points, with the
/// QoS arbiter actively reordering service.
#[test]
fn per_tenant_requests_are_conserved_mid_run() {
    for qos in QosPolicyKind::all() {
        let mut system = System::new(small_mixed(qos, 2)).unwrap();
        for _ in 0..12 {
            system.run_cycles(5_000);
            let sent = system.memory_sent_per_tenant();
            let in_flight = system.requests_in_flight_per_tenant();
            let stats = system.controller_stats();
            for t in 0..MAX_TENANTS {
                let completed =
                    stats.reads_completed_per_tenant[t] + stats.writes_completed_per_tenant[t];
                assert_eq!(
                    sent[t],
                    completed + in_flight[t],
                    "{qos}: tenant {t} lost requests (sent {} vs completed {} + {} in flight)",
                    sent[t],
                    completed,
                    in_flight[t]
                );
            }
            // The per-tenant breakdown must also partition the totals.
            assert_eq!(
                sent.iter().sum::<u64>(),
                system.memory_reads_sent() + system.memory_writes_sent()
            );
        }
    }
}

/// Identical seeds are bit-identical per tenant; different seeds differ.
#[test]
fn per_tenant_stats_are_deterministic_across_seeds() {
    for qos in [QosPolicyKind::None, QosPolicyKind::PriorityBoost] {
        let a = run_system(small_mixed(qos, 7)).unwrap();
        let b = run_system(small_mixed(qos, 7)).unwrap();
        assert_eq!(a, b, "{qos}: same seed must be bit-identical");
        let c = run_system(small_mixed(qos, 8)).unwrap();
        assert_ne!(
            a.instructions_per_tenant, c.instructions_per_tenant,
            "{qos}: different seeds must differ"
        );
    }
}

/// The boost protects the latency-critical tenant on a contended mix: its
/// average read latency drops versus no QoS, while conservation still holds
/// (satellite check that protection is redistribution, not loss).
#[test]
fn priority_boost_reduces_latency_critical_read_latency() {
    let run = |qos: QosPolicyKind| -> SimStats { run_system(small_mixed(qos, 3)).unwrap() };
    let none = run(QosPolicyKind::None);
    let boost = run(QosPolicyKind::PriorityBoost);
    assert!(
        boost.avg_read_latency_per_tenant[0] < none.avg_read_latency_per_tenant[0],
        "boost must cut the LC tenant's latency: {} vs {}",
        boost.avg_read_latency_per_tenant[0],
        none.avg_read_latency_per_tenant[0]
    );
    // Both tenants keep completing work under either policy.
    for stats in [&none, &boost] {
        assert!(stats.reads_completed_per_tenant.iter().all(|&r| r > 0));
    }
}
