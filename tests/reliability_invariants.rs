//! Invariants of the DRAM reliability subsystem at the full-system level:
//! conservation of injected faults, seed determinism, zero cost when
//! disabled, fail-stop as a typed error (never a panic), poison-and-continue
//! accounting, retirement, and real scrub traffic.

use cloudmc::memctrl::{FaultConfig, PowerPolicyKind, SchedulerKind, UncorrectablePolicy};
use cloudmc::sim::{run_system, SimError, SimStats, Simulator, SystemConfig};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

fn small(workload: Workload, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg
}

/// A fault model noisy enough that every path (correction, retry,
/// uncorrectable, poison, scrub, retirement) sees traffic in a short run.
fn noisy_fault(seed: u64) -> FaultConfig {
    let mut fc = FaultConfig::baseline();
    fc.seed = seed;
    fc.transient_rate_fp = FaultConfig::rate_per_million_reads(20_000); // 2%
    fc.uncorrectable_permille = 100;
    fc.scrub_interval = 300;
    fc.stuck_rows_per_rank = 2;
    fc.retire_threshold = 2;
    fc.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
    fc
}

/// The conservation ledger balances at the end of any run, and the window
/// counters are consistent with it.
#[test]
fn fault_ledger_conserves_every_injected_fault() {
    for seed in [1u64, 7] {
        let mut cfg = small(Workload::TpchQ6, seed);
        cfg.mc.fault_model = Some(noisy_fault(seed));
        let stats = run_system(cfg).expect("poison-and-continue run completes");
        assert!(stats.faults_injected > 0, "seed {seed}: nothing injected");
        assert_eq!(
            stats.faults_injected,
            stats.faults_corrected + stats.faults_uncorrectable + stats.faults_latent,
            "seed {seed}: ledger out of balance"
        );
        // Planted rows (2 stuck per rank) start latent; whatever the run
        // discovered moved out of latent, never below zero (u64 underflow
        // would wrap loudly here).
        assert!(stats.faults_latent <= stats.faults_injected);
    }
}

/// Fault-enabled runs are seed-deterministic: the same configuration gives
/// byte-identical statistics on every repetition, and a different fault seed
/// gives a genuinely different run.
#[test]
fn fault_injection_is_seed_deterministic() {
    let make = |fault_seed: u64| {
        let mut cfg = small(Workload::TpchQ6, 3);
        cfg.mc.fault_model = Some(noisy_fault(fault_seed));
        run_system(cfg).expect("run completes")
    };
    let a = make(11);
    let b = make(11);
    assert_eq!(a, b, "same fault seed must reproduce bit-identically");
    let c = make(12);
    assert_ne!(a, c, "a different fault seed must change the run");
}

/// With `fault_model: None` the subsystem is invisible: every reliability
/// counter is zero and the statistics are bit-identical across the naive,
/// horizon and event kernels, thread counts and schedulers — the same
/// contract the kernels themselves are held to.
#[test]
fn disabled_fault_model_is_invisible_and_kernel_invariant() {
    for scheduler in [SchedulerKind::FrFcfs, SchedulerKind::FcfsBanks] {
        let mut cfg = small(Workload::WebSearch, 5);
        cfg.mc.scheduler = scheduler;
        cfg.num_channels = 2;
        assert!(cfg.mc.fault_model.is_none());

        cfg.fast_forward = false;
        let naive = run_system(cfg.clone()).expect("valid config");
        cfg.fast_forward = true;
        cfg.event_driven = false;
        let horizon = run_system(cfg.clone()).expect("valid config");
        assert_eq!(horizon, naive, "{scheduler:?}: horizon diverged");
        cfg.event_driven = true;
        for threads in [1usize, 2] {
            cfg.threads = threads;
            let event = run_system(cfg.clone()).expect("valid config");
            assert_eq!(event, naive, "{scheduler:?}/{threads} threads diverged");
        }

        assert_eq!(naive.ecc_corrected, 0);
        assert_eq!(naive.ecc_detected_uncorrectable, 0);
        assert_eq!(naive.ecc_miscorrects, 0);
        assert_eq!(naive.demand_retries, 0);
        assert_eq!(naive.scrub_reads_issued, 0);
        assert_eq!(naive.scrub_reads_completed, 0);
        assert_eq!(naive.rows_retired, 0);
        assert_eq!(naive.lines_poisoned, 0);
        assert_eq!(naive.poisoned_reads, 0);
        assert_eq!(naive.faults_injected, 0);
        assert_eq!(naive.faults_latent, 0);
        assert!(naive.rows_retired_per_rank.iter().all(|&n| n == 0));
        assert_eq!(naive.retired_capacity_bytes, 0);
    }
}

/// Under the fail-stop policy an uncorrectable error surfaces as
/// `SimError::Uncorrectable` from `try_run` — a typed error naming the
/// failing coordinates, never a panic — and `run_system` renders it as a
/// string for legacy callers.
#[test]
fn fail_stop_surfaces_a_typed_error_never_a_panic() {
    let mut fc = noisy_fault(1);
    fc.transient_rate_fp = 1 << 32; // certainty
    fc.uncorrectable_permille = 1000; // every fault uncorrectable
    fc.miscorrect_permille = 0;
    fc.on_uncorrectable = UncorrectablePolicy::FailStop;
    let mut cfg = small(Workload::TpchQ6, 1);
    cfg.mc.fault_model = Some(fc);

    let err = Simulator::new(cfg.clone())
        .expect("valid config")
        .try_run()
        .expect_err("fail-stop must error");
    match &err {
        SimError::Uncorrectable(msg) => {
            assert!(msg.contains("uncorrectable memory error"), "{msg}");
            assert!(msg.contains("rank"), "{msg}");
            assert!(msg.contains("row"), "{msg}");
        }
        other => panic!("expected Uncorrectable, got {other:?}"),
    }
    let message = run_system(cfg).expect_err("fail-stop must error via run_system too");
    assert!(message.contains("fail-stop"), "{message}");
    assert!(message.contains("uncorrectable memory error"), "{message}");
}

/// Under poison-and-continue the same error stream completes the run with
/// full accounting: poisoned lines, detected uncorrectables, and (with a
/// one-strike threshold) retired rows with their capacity loss.
#[test]
fn poison_and_continue_completes_with_accounting() {
    let mut fc = noisy_fault(1);
    fc.transient_rate_fp = FaultConfig::rate_per_million_reads(50_000); // 5%
    fc.uncorrectable_permille = 300;
    fc.retire_threshold = 1;
    fc.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
    let mut cfg = small(Workload::TpchQ6, 1);
    cfg.mc.fault_model = Some(fc);
    let stats = run_system(cfg.clone()).expect("poison-and-continue completes");
    assert!(stats.user_instructions > 0, "the pod must keep committing");
    assert!(stats.ecc_detected_uncorrectable > 0);
    assert!(stats.lines_poisoned > 0);
    assert!(stats.rows_retired > 0, "one-strike retirement never fired");
    assert_eq!(
        stats.rows_retired_per_rank.iter().sum::<u64>() * cfg.mc.dram.row_bytes,
        stats.retired_capacity_bytes
    );
    assert!(stats.ecc_corrected > 0);
    assert!(stats.demand_retries > 0);
}

/// Patrol scrubbing emits real read traffic through the controller queues
/// (visible in device read counts) and its rate follows the configured
/// interval; fault-enabled runs stay bit-identical across kernels, threads
/// and power policies while it runs.
#[test]
fn scrub_traffic_is_real_and_fault_runs_stay_kernel_invariant() {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    for power in [PowerPolicyKind::None, PowerPolicyKind::IdleTimer] {
        let mut cfg = SystemConfig::mixed(mix);
        cfg.warmup_cpu_cycles = 10_000;
        cfg.measure_cpu_cycles = 60_000;
        cfg.seed = 5;
        cfg.num_channels = 2;
        cfg.mc.power_policy = power;
        cfg.mc.fault_model = Some(noisy_fault(5));

        cfg.fast_forward = false;
        let naive = run_system(cfg.clone()).expect("valid config");
        cfg.fast_forward = true;
        cfg.event_driven = false;
        let horizon = run_system(cfg.clone()).expect("valid config");
        assert_eq!(horizon, naive, "{power}: horizon diverged under faults");
        cfg.event_driven = true;
        for threads in [1usize, 2] {
            cfg.threads = threads;
            let event = run_system(cfg.clone()).expect("valid config");
            assert_eq!(
                event, naive,
                "{power}: event kernel ({threads} threads) diverged under faults"
            );
        }

        assert!(naive.scrub_reads_issued > 0, "{power}: scrubber idle");
        assert!(naive.scrub_reads_completed > 0);
        assert!(
            naive.scrub_reads_completed <= naive.scrub_reads_issued,
            "{power}: completed more scrubs than issued"
        );
        assert!(naive.faults_injected > 0);
    }
}

/// A sanity cross-check that the measurement window only counts its own
/// events: doubling the measurement window roughly doubles scrub issue
/// (never shrinks it), since the counters are deltas, not absolutes.
#[test]
fn scrub_counters_are_window_deltas() {
    let mut fc = FaultConfig::baseline();
    fc.scrub_interval = 200;
    let mut short = small(Workload::WebSearch, 9);
    short.mc.fault_model = Some(fc);
    let mut long = short.clone();
    long.measure_cpu_cycles = short.measure_cpu_cycles * 2;
    let short_stats = run_system(short).expect("run completes");
    let long_stats = run_system(long).expect("run completes");
    assert!(short_stats.scrub_reads_issued > 0);
    assert!(
        long_stats.scrub_reads_issued > short_stats.scrub_reads_issued,
        "longer window must see more scrubs ({} vs {})",
        long_stats.scrub_reads_issued,
        short_stats.scrub_reads_issued
    );
}

/// `SimStats` carries the reliability keys in its JSON rendering, appended
/// after the tenancy keys so existing `BENCH_*.json` consumers keep parsing.
#[test]
fn reliability_keys_serialize_additively() {
    let mut cfg = small(Workload::TpchQ6, 1);
    cfg.mc.fault_model = Some(noisy_fault(1));
    let stats: SimStats = run_system(cfg).expect("run completes");
    let json = stats.to_json();
    let qos = json.find("\"qos_policy\"").expect("tenancy block present");
    let ecc = json.find("\"ecc_corrected\"").expect("reliability block");
    assert!(ecc > qos, "reliability keys must come after tenancy keys");
    assert!(json.contains(&format!("\"faults_injected\":{}", stats.faults_injected)));
    assert!(json.contains("\"retired_capacity_bytes\""));
}
