//! The record→replay equivalence guarantee: recording a synthetic run
//! (`SystemConfig::trace_record`) and replaying the resulting trace
//! (`WorkloadSource::Trace`) must reproduce *bit-identical* `SimStats` —
//! every counter, every latency sum, every per-tenant vector, every float —
//! with the event-horizon fast-forward on and off.
//!
//! This is the contract that makes traces a sound experiment medium: any
//! divergence between the generated op stream and its text round trip, any
//! replay-side reordering, or any horizon bug specific to trace-fed cores
//! shows up here as a diverging field.

use std::path::PathBuf;

use cloudmc::sim::{run_system, SimStats, SystemConfig, WorkloadSource};
use cloudmc::workloads::{MixSpec, TenantSpec, Workload};

/// A collision-free scratch path for one test's trace file.
fn temp_trace(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cloudmc_{name}_{}.trace", std::process::id()))
}

fn small(workload: Workload, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg
}

fn small_mix(seed: u64) -> SystemConfig {
    let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
        .and(TenantSpec::batch(Workload::TpchQ6, 8));
    let mut cfg = SystemConfig::mixed(mix);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 60_000;
    cfg.seed = seed;
    cfg
}

/// Records `cfg`, then replays the trace with the fast-forward on and off,
/// demanding byte-identical statistics each time.
fn assert_record_replay_equivalent(cfg: &SystemConfig, name: &str) -> SimStats {
    let path = temp_trace(name);
    let mut record_cfg = cfg.clone();
    record_cfg.trace_record = Some(path.clone());
    let recorded = run_system(record_cfg).expect("record run");
    for fast_forward in [true, false] {
        let mut replay_cfg = cfg.clone();
        replay_cfg.source = WorkloadSource::Trace(path.clone());
        replay_cfg.fast_forward = fast_forward;
        let replayed = run_system(replay_cfg).expect("replay run");
        assert_eq!(
            recorded, replayed,
            "{name}: replay (fast_forward={fast_forward}) diverged from the recording"
        );
        assert_eq!(
            format!("{recorded:?}"),
            format!("{replayed:?}"),
            "{name}: debug renderings must be byte-identical"
        );
    }
    std::fs::remove_file(&path).ok();
    recorded
}

/// Acceptance criterion: two solo workloads x two seeds, plus the DMA-driven
/// Web Frontend whose injector traffic is regenerated (not traced) and must
/// line up cycle for cycle.
#[test]
fn solo_workloads_record_replay_bit_identical() {
    for workload in [Workload::WebSearch, Workload::TpchQ6] {
        for seed in [1u64, 7] {
            let stats = assert_record_replay_equivalent(
                &small(workload, seed),
                &format!("{workload:?}_s{seed}"),
            );
            assert!(stats.user_instructions > 0);
            assert!(stats.reads_completed > 0);
        }
    }
    assert_record_replay_equivalent(&small(Workload::WebFrontend, 3), "WebFrontend_s3");
}

/// Acceptance criterion: a latency-critical + batch tenant mix replays with
/// every per-tenant statistic intact, across two seeds.
#[test]
fn multi_tenant_mix_record_replay_bit_identical() {
    for seed in [5u64, 9] {
        let stats = assert_record_replay_equivalent(&small_mix(seed), &format!("mix_s{seed}"));
        assert_eq!(stats.tenants, 2);
        assert!(stats.instructions_per_tenant.iter().all(|&n| n > 0));
        assert!(stats.reads_completed_per_tenant.iter().all(|&r| r > 0));
    }
}

/// Capture is observation only: recording must not perturb the run, and the
/// captured file must not depend on whether the kernel fast-forwarded.
#[test]
fn recording_is_pure_observation_and_fast_forward_invariant() {
    let cfg = small(Workload::WebSearch, 11);
    let plain = run_system(cfg.clone()).unwrap();

    let path_fast = temp_trace("record_ff_on");
    let mut fast = cfg.clone();
    fast.trace_record = Some(path_fast.clone());
    let recorded_fast = run_system(fast).unwrap();
    assert_eq!(plain, recorded_fast, "recording must not perturb the run");

    let path_naive = temp_trace("record_ff_off");
    let mut naive = cfg.clone();
    naive.trace_record = Some(path_naive.clone());
    naive.fast_forward = false;
    let recorded_naive = run_system(naive).unwrap();
    assert_eq!(plain, recorded_naive);

    let bytes_fast = std::fs::read(&path_fast).unwrap();
    let bytes_naive = std::fs::read(&path_naive).unwrap();
    assert!(!bytes_fast.is_empty());
    assert_eq!(
        bytes_fast, bytes_naive,
        "captured traces must be byte-identical with fast-forward on and off"
    );
    std::fs::remove_file(&path_fast).ok();
    std::fs::remove_file(&path_naive).ok();
}

/// Re-recording while replaying reproduces the trace byte for byte: the
/// replay consumes ops in exactly the order the recording captured them.
#[test]
fn rerecording_a_replay_reproduces_the_trace_bytes() {
    let cfg = small(Workload::TpchQ6, 13);
    let original = temp_trace("rerecord_src");
    let mut record_cfg = cfg.clone();
    record_cfg.trace_record = Some(original.clone());
    let recorded = run_system(record_cfg).unwrap();

    let copy = temp_trace("rerecord_dst");
    let mut rere = cfg.clone();
    rere.source = WorkloadSource::Trace(original.clone());
    rere.trace_record = Some(copy.clone());
    let replayed = run_system(rere).unwrap();
    assert_eq!(recorded, replayed);
    assert_eq!(
        std::fs::read(&original).unwrap(),
        std::fs::read(&copy).unwrap(),
        "a re-recorded replay must reproduce the trace byte for byte"
    );
    std::fs::remove_file(&original).ok();
    std::fs::remove_file(&copy).ok();
}

/// Replaying past the end of the recording parks the cores on the
/// exhaustion filler: the run completes (and fast-forwards) instead of
/// starving, and everything committed up to the recorded horizon is kept.
#[test]
fn replay_tolerates_running_longer_than_the_recording() {
    let cfg = small(Workload::WebSearch, 17);
    let path = temp_trace("overrun");
    let mut record_cfg = cfg.clone();
    record_cfg.trace_record = Some(path.clone());
    let recorded = run_system(record_cfg).unwrap();

    let mut longer = cfg.clone();
    longer.source = WorkloadSource::Trace(path.clone());
    longer.measure_cpu_cycles = cfg.measure_cpu_cycles + 50_000;
    let replayed = run_system(longer).unwrap();
    assert!(replayed.user_instructions >= recorded.user_instructions);
    assert_eq!(replayed.cpu_cycles, cfg.measure_cpu_cycles + 50_000);
    std::fs::remove_file(&path).ok();
}

/// A trace whose core indices exceed the bound topology fails with a clear
/// error naming the line and the bound — surfaced as an `Err` from
/// `run_system`, not an out-of-bounds panic.
#[test]
fn out_of_range_core_in_trace_fails_with_clear_message() {
    let path = temp_trace("bad_core");
    std::fs::write(&path, "0 C 5\n99 L 0x4f00 1\n").unwrap();
    let mut cfg = small(Workload::WebSearch, 1);
    cfg.source = WorkloadSource::Trace(path.clone());
    let message = run_system(cfg).expect_err("replay of a mis-bound trace must fail");
    assert!(message.contains("core 99"), "{message}");
    assert!(message.contains("16 cores"), "{message}");
    assert!(message.contains("line 2"), "{message}");
    std::fs::remove_file(&path).ok();
}

/// A malformed record mid-trace likewise surfaces as an `Err` naming the
/// offending line, and so does recording over the replay source — even via
/// an aliased spelling of the same path that the lexical config check
/// cannot catch.
#[test]
fn malformed_trace_and_aliased_record_path_fail_as_errors() {
    let path = temp_trace("malformed_mid");
    std::fs::write(&path, "0 C 5\n0 L zz 0\n").unwrap();
    let mut cfg = small(Workload::WebSearch, 1);
    cfg.source = WorkloadSource::Trace(path.clone());
    let message = run_system(cfg).expect_err("malformed trace must fail");
    assert!(message.contains("line 2"), "{message}");
    assert!(message.contains("bad address"), "{message}");

    // A symlinked spelling of the same file compares unequal lexically
    // (passing config validation) and is only caught by canonicalization.
    #[cfg(unix)]
    {
        let link = temp_trace("malformed_mid_link");
        std::fs::remove_file(&link).ok();
        std::os::unix::fs::symlink(&path, &link).unwrap();
        let mut aliased = small(Workload::WebSearch, 1);
        aliased.source = WorkloadSource::Trace(path.clone());
        aliased.trace_record = Some(link.clone());
        let message = run_system(aliased).expect_err("recording over the replay source must fail");
        assert!(message.contains("aliases"), "{message}");
        // The replay input survived the attempt.
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        std::fs::remove_file(&link).ok();
    }
    std::fs::remove_file(&path).ok();
}

/// A trace cut off mid-record (e.g. a capture killed before `finish` wrote
/// the trailing overlappable flag) fails with a line-numbered truncation
/// error instead of silently replaying a guessed flag value.
#[test]
fn truncated_trace_fails_with_line_numbered_error() {
    let path = temp_trace("truncated_mid");
    std::fs::write(&path, "0 C 5\n0 L 4f00\n").unwrap();
    let mut cfg = small(Workload::WebSearch, 1);
    cfg.source = WorkloadSource::Trace(path.clone());
    let message = run_system(cfg).expect_err("truncated trace must fail");
    assert!(message.contains("line 2"), "{message}");
    assert!(message.contains("truncated record"), "{message}");
    std::fs::remove_file(&path).ok();
}

/// The checked-in golden mini-trace stays in lock-step with the generators:
/// re-recording its pinned configuration reproduces the file byte for byte,
/// and replaying it matches the synthetic run bit for bit. If a deliberate
/// generator change lands, regenerate the file with
/// `cargo run --release -p cloudmc-bench --bin repro -- trace --golden-regen`.
#[test]
fn golden_trace_matches_the_generators() {
    let golden = cloudmc_bench::golden_trace_path();
    let cfg = cloudmc_bench::golden_config();
    let synthetic = run_system(cfg.clone()).unwrap();

    let rerecorded = temp_trace("golden_rerecord");
    let mut record_cfg = cfg.clone();
    record_cfg.trace_record = Some(rerecorded.clone());
    let recorded_stats = run_system(record_cfg).unwrap();
    assert_eq!(synthetic, recorded_stats);
    assert_eq!(
        std::fs::read(&golden).expect("golden trace checked in at tests/data/"),
        std::fs::read(&rerecorded).unwrap(),
        "generators drifted from tests/data/golden_mix.trace; regenerate it if the change is intended"
    );
    std::fs::remove_file(&rerecorded).ok();

    let mut replay_cfg = cfg.clone();
    replay_cfg.source = WorkloadSource::Trace(golden);
    let replayed = run_system(replay_cfg).unwrap();
    assert_eq!(synthetic, replayed);
}
