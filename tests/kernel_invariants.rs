//! Invariants of the kernel/frontend/backend decomposition: determinism of a
//! fixed seed and conservation of requests across the sharded backend.

use cloudmc::sim::{run_system, System, SystemConfig};
use cloudmc::workloads::Workload;

fn small(workload: Workload) -> SystemConfig {
    let mut cfg = SystemConfig::baseline(workload);
    cfg.warmup_cpu_cycles = 10_000;
    cfg.measure_cpu_cycles = 50_000;
    cfg
}

/// The same configuration and seed must produce *byte-identical* statistics:
/// every counter, every float, every per-core vector.
#[test]
fn identical_seeds_produce_byte_identical_stats() {
    for workload in [
        Workload::DataServing,
        Workload::WebFrontend,
        Workload::TpchQ6,
    ] {
        let a = run_system(small(workload)).unwrap();
        let b = run_system(small(workload)).unwrap();
        assert_eq!(a, b, "stats structs must match field for field");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "debug renderings must be byte-identical"
        );
        assert_eq!(a.to_json(), b.to_json(), "JSON must be byte-identical");
    }
}

/// Determinism holds for the sharded backend too.
#[test]
fn sharded_runs_are_deterministic() {
    let mut cfg = small(Workload::TpchQ6);
    cfg.num_channels = 4;
    let a = run_system(cfg.clone()).unwrap();
    let b = run_system(cfg).unwrap();
    assert_eq!(a, b);
}

/// Every request the frontend sends is either completed by the backend or
/// still in flight (controller queues, DRAM, or retry buckets) — nothing is
/// lost or double-counted, at any observation point, for any shard count.
#[test]
fn requests_are_conserved_across_shard_counts() {
    for num_channels in [1usize, 2, 4] {
        let mut cfg = small(Workload::TpchQ6);
        cfg.num_channels = num_channels;
        let mut system = System::new(cfg).unwrap();
        let mut total_completed_seen = 0u64;
        for chunk in 0..12 {
            system.run_cycles(5_000);
            let sent = system.memory_reads_sent() + system.memory_writes_sent();
            let completed = system.controller_stats().completed();
            let in_flight = system.requests_in_flight();
            assert_eq!(
                sent,
                completed + in_flight,
                "{num_channels} shards, chunk {chunk}: {sent} sent vs {completed} completed + {in_flight} in flight"
            );
            assert!(
                completed >= total_completed_seen,
                "completions are monotonic"
            );
            total_completed_seen = completed;
        }
        assert!(
            total_completed_seen > 100,
            "{num_channels} shards: the bandwidth-bound workload must complete real work"
        );
    }
}

/// With the default single shard the refactored system matches the seed
/// system's observable behaviour on the reference workload.
#[test]
fn single_shard_matches_seed_behaviour() {
    let stats = run_system(small(Workload::DataServing)).unwrap();
    assert_eq!(stats.channels, 1);
    assert_eq!(stats.cores, 16);
    assert_eq!(stats.cpu_cycles, 50_000);
    // Same calibrated bands the seed's tier-1 tests pinned.
    assert!(stats.user_ipc() > 1.0 && stats.user_ipc() < 16.0);
    assert!(stats.avg_read_latency_dram > 25.0);
    assert!(stats.bandwidth_utilization > 0.02 && stats.bandwidth_utilization < 1.0);
}
