//! Statistical per-core instruction/access stream generator.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_cpu::{CoreOp, MemOp, OpKind};

use crate::mix::{MixSpec, TenantId};
use crate::spec::{Workload, WorkloadSpec};

/// Block size assumed by the generators (matches the cache/DRAM column size).
pub const BLOCK_BYTES: u64 = 64;
/// DRAM row size assumed when generating row-burst base addresses.
pub const ROW_BYTES: u64 = 8 * 1024;

/// Physical-address layout used by the generators.
///
/// The regions are disjoint so that per-core private data, shared data and
/// code never alias by accident; everything fits comfortably inside the
/// 32 GiB baseline DRAM capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    shared_base: u64,
    shared_size: u64,
    code_base: u64,
    code_stride: u64,
    private_base: u64,
    private_stride: u64,
    hot_stride: u64,
}

impl Layout {
    const DEFAULT: Self = Self {
        shared_base: 0x0400_0000,    // 64 MiB
        shared_size: 0x1000_0000,    // 256 MiB shared region
        code_base: 0x2000_0000,      // 512 MiB
        code_stride: 0x0040_0000,    // 4 MiB per core of code space
        private_base: 0x4000_0000,   // 1 GiB
        private_stride: 0x1000_0000, // 256 MiB per core
        hot_stride: 0x0000_4000,     // 16 KiB hot region per core
    };
}

/// Generates the instruction stream of one core of one workload.
///
/// The stream is a statistical model of the workload's behaviour as
/// characterized by the paper: mostly compute instructions, L1-resident hot
/// accesses, instruction fetches over a code footprint, and off-chip data
/// accesses whose rate, row locality, write fraction and memory-level
/// parallelism come from the [`WorkloadSpec`].
///
/// # Examples
///
/// ```
/// use cloudmc_workloads::{CoreStream, Workload};
///
/// let mut stream = CoreStream::new(Workload::WebSearch.spec(), 0, 42);
/// let ops: Vec<_> = (0..100).map(|_| stream.next_op()).collect();
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct CoreStream {
    spec: WorkloadSpec,
    /// Core index *within the owning tenant* (drives the per-core intensity
    /// skew, which is a property of the workload, not of core placement).
    core: usize,
    /// Global core slot in the pod; drives all address-layout decisions so
    /// that the tenants of a mix never alias each other's memory.
    layout_core: usize,
    /// Byte offset of this core's code region inside the global code area
    /// (cores are packed back to back even across tenants with different
    /// code footprints).
    code_offset: u64,
    rng: StdRng,
    layout: Layout,
    /// Remaining block addresses of the current row burst.
    burst: VecDeque<u64>,
    /// Sequential instruction-fetch cursor (block offset within the code
    /// region); instruction fetch walks the code mostly sequentially with
    /// occasional jumps, like straight-line server code with calls/branches.
    ifetch_cursor: u64,
    /// Whether the stream is currently in a high-intensity phase.
    phase_hot: bool,
    /// Instructions until the next off-chip data event.
    until_data: u64,
    /// Instructions until the next instruction-fetch event.
    until_ifetch: u64,
    /// Instructions until the next hot (L1-resident) access.
    until_hot: u64,
    /// Counters for calibration tests.
    instructions_planned: u64,
    data_events: u64,
    data_accesses: u64,
}

impl CoreStream {
    /// Creates the stream for `core` of the given workload spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate or `core` is out of range.
    #[must_use]
    pub fn new(spec: WorkloadSpec, core: usize, seed: u64) -> Self {
        let code_offset = spec.code_footprint_bytes * core as u64;
        Self::placed(spec, core, core, code_offset, seed)
    }

    /// Creates the stream for local `core` of one tenant of a mix, placed at
    /// global core slot `layout_core` with its code region at `code_offset`
    /// bytes into the code area. [`CoreStream::new`] is the single-tenant
    /// case where both indices coincide.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate or `core` is out of range.
    #[must_use]
    pub fn placed(
        spec: WorkloadSpec,
        core: usize,
        layout_core: usize,
        code_offset: u64,
        seed: u64,
    ) -> Self {
        // simlint: allow(panic) documented constructor contract: spec must validate
        spec.validate().expect("invalid workload spec");
        assert!(
            core < spec.cores,
            "core {core} out of range ({} cores)",
            spec.cores
        );
        let mut stream = Self {
            spec,
            core,
            layout_core,
            code_offset,
            rng: StdRng::seed_from_u64(
                seed ^ (layout_core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC10D,
            ),
            layout: Layout::DEFAULT,
            burst: VecDeque::new(),
            ifetch_cursor: 0,
            phase_hot: false,
            until_data: 1,
            until_ifetch: 1,
            until_hot: 1,
            instructions_planned: 0,
            data_events: 0,
            data_accesses: 0,
        };
        stream.until_data = stream.sample_interval(stream.data_interval());
        stream.until_ifetch = stream.sample_interval(stream.ifetch_interval());
        stream.until_hot = stream.sample_interval(stream.hot_interval());
        stream
    }

    /// The workload this stream belongs to.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.spec.workload
    }

    /// The core index this stream drives.
    #[must_use]
    pub fn core(&self) -> usize {
        self.core
    }

    /// The code (instruction) region of this core as `(base, size_bytes)`.
    ///
    /// Exposed so the simulator can functionally pre-warm the caches with the
    /// instruction working set, mirroring the paper's long warm-up phase.
    #[must_use]
    pub fn code_region(&self) -> (u64, u64) {
        (
            self.layout.code_base + self.code_offset,
            self.spec.code_footprint_bytes,
        )
    }

    /// The hot (L1-resident) data region of this core as `(base, size_bytes)`.
    #[must_use]
    pub fn hot_region(&self) -> (u64, u64) {
        (
            self.layout.private_base
                + self.layout_core as u64 * self.layout.private_stride
                + self.layout.private_stride
                - self.layout.hot_stride,
            self.layout.hot_stride,
        )
    }

    /// Off-chip data accesses generated so far.
    #[must_use]
    pub fn data_accesses(&self) -> u64 {
        self.data_accesses
    }

    /// Instructions represented by the ops generated so far (compute bursts
    /// count their full width).
    #[must_use]
    pub fn instructions_planned(&self) -> u64 {
        self.instructions_planned
    }

    /// Fraction of instructions spent in the high-intensity phase.
    const HOT_PHASE_FRACTION: f64 = 0.25;
    /// Mean length of a high-intensity phase in instructions.
    const HOT_PHASE_MEAN_INSTR: f64 = 6_000.0;

    /// Intensity multiplier of the current phase. The time-weighted mean over
    /// hot and quiet phases is 1.0, so the long-run MPKI matches the spec.
    fn phase_multiplier(&self) -> f64 {
        let b = self.spec.burstiness;
        if b <= 0.0 {
            return 1.0;
        }
        let hot = 1.0 + 3.0 * b;
        if self.phase_hot {
            hot
        } else {
            ((1.0 - Self::HOT_PHASE_FRACTION * hot) / (1.0 - Self::HOT_PHASE_FRACTION)).max(0.05)
        }
    }

    /// Whether the stream should currently be in its high-intensity phase.
    ///
    /// The phase schedule is a deterministic function of progress (committed
    /// instructions), so the cores of one workload spike together — load
    /// spikes in server systems are driven by the offered request load and
    /// hit all cores at once. This is what creates the transient memory
    /// contention under which the scheduling algorithms differ.
    fn scheduled_phase(&self) -> bool {
        let period = Self::HOT_PHASE_MEAN_INSTR / Self::HOT_PHASE_FRACTION;
        let position = self.instructions_planned as f64 % period;
        position < Self::HOT_PHASE_MEAN_INSTR
    }

    /// Mean instructions between off-chip data *events* (a burst counts as
    /// one event) in the current phase.
    fn data_interval(&self) -> f64 {
        let accesses_per_event =
            self.spec.row_burst_prob * self.spec.row_burst_len + (1.0 - self.spec.row_burst_prob);
        let mpki =
            (self.spec.data_mpki * self.spec.intensity_factor(self.core) * self.phase_multiplier())
                .max(1e-3);
        1000.0 * accesses_per_event / mpki
    }

    fn ifetch_interval(&self) -> f64 {
        if self.spec.ifetch_mpki <= 0.0 {
            f64::INFINITY
        } else {
            1000.0 / self.spec.ifetch_mpki
        }
    }

    fn hot_interval(&self) -> f64 {
        if self.spec.hot_access_rate <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.spec.hot_access_rate
        }
    }

    /// Accounts for executed instructions in the phase machine; on a phase
    /// transition the data-event countdown is re-drawn under the new
    /// intensity.
    fn consume_instructions(&mut self, _n: u64) {
        if self.spec.burstiness <= 0.0 {
            return;
        }
        let scheduled = self.scheduled_phase();
        if scheduled != self.phase_hot {
            self.phase_hot = scheduled;
            self.until_data = self.sample_interval(self.data_interval());
        }
    }

    /// Samples an exponentially distributed interval with the given mean,
    /// clamped to at least one instruction.
    fn sample_interval(&mut self, mean: f64) -> u64 {
        if !mean.is_finite() {
            return u64::MAX / 4;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-mean * u.ln()).round().max(1.0) as u64
    }

    fn private_region(&self) -> (u64, u64) {
        let base = self.layout.private_base + self.layout_core as u64 * self.layout.private_stride;
        (
            base,
            self.spec.footprint_bytes.min(self.layout.private_stride),
        )
    }

    fn random_block_in(&mut self, base: u64, size: u64) -> u64 {
        let blocks = (size / BLOCK_BYTES).max(1);
        base + self.rng.gen_range(0..blocks) * BLOCK_BYTES
    }

    fn data_address_base(&mut self) -> (u64, u64) {
        if self.rng.gen_bool(self.spec.shared_fraction) {
            (self.layout.shared_base, self.layout.shared_size)
        } else {
            self.private_region()
        }
    }

    /// Starts an off-chip data event: either a single access or a sequential
    /// row burst. Returns the first access; the rest are queued.
    fn start_data_event(&mut self) -> MemOp {
        self.data_events += 1;
        let (base, size) = self.data_address_base();
        let first = if self.rng.gen_bool(self.spec.row_burst_prob) {
            // Geometric burst length with the configured mean, at least 2.
            let mean = (self.spec.row_burst_len - 1.0).max(1.0);
            let p = 1.0 / mean;
            let mut len = 2u64;
            while len < 64 && !self.rng.gen_bool(p) {
                len += 1;
            }
            // Base aligned to the start of a DRAM row so the burst stays
            // within one row under the single-channel mapping.
            let rows = (size / ROW_BYTES).max(1);
            let row_base = base + self.rng.gen_range(0..rows) * ROW_BYTES;
            let max_blocks = ROW_BYTES / BLOCK_BYTES;
            let len = len.min(max_blocks);
            for i in 1..len {
                self.burst.push_back(row_base + i * BLOCK_BYTES);
            }
            row_base
        } else {
            self.random_block_in(base, size)
        };
        self.data_op(first)
    }

    fn data_op(&mut self, addr: u64) -> MemOp {
        self.data_accesses += 1;
        let is_store = self.rng.gen_bool(self.spec.store_fraction);
        let overlappable = !is_store && self.rng.gen_bool(self.spec.mlp_fraction);
        MemOp {
            kind: if is_store {
                OpKind::Store
            } else {
                OpKind::Load
            },
            addr,
            overlappable,
        }
    }

    fn ifetch_op(&mut self) -> MemOp {
        // Code regions of the different cores are packed back to back so that
        // they spread over all L2 sets instead of aliasing onto the same ones
        // (the per-core stride would otherwise be a multiple of the set span).
        let base = self.layout.code_base + self.code_offset;
        let blocks = (self.spec.code_footprint_bytes / BLOCK_BYTES).max(1);
        // Cyclic sequential walk through the code with very occasional jumps
        // (calls, branches): the instruction working set is touched within a
        // few thousand instructions and then lives in the shared L2, which is
        // exactly the behaviour the paper reports (long fetch stalls served
        // by the LLC, not by memory).
        if self.rng.gen_bool(1.0 / 512.0) {
            self.ifetch_cursor = self.rng.gen_range(0..blocks);
        } else {
            self.ifetch_cursor = (self.ifetch_cursor + 1) % blocks;
        }
        MemOp {
            kind: OpKind::Ifetch,
            addr: base + self.ifetch_cursor * BLOCK_BYTES,
            overlappable: false,
        }
    }

    fn hot_op(&mut self) -> MemOp {
        let base = self.layout.private_base
            + self.layout_core as u64 * self.layout.private_stride
            + self.layout.private_stride
            - self.layout.hot_stride;
        let addr = self.random_block_in(base, self.layout.hot_stride);
        let is_store = self.rng.gen_bool(0.3);
        MemOp {
            kind: if is_store {
                OpKind::Store
            } else {
                OpKind::Load
            },
            addr,
            overlappable: true,
        }
    }

    /// Serializes the stream's mutable state — RNG, pending burst, phase
    /// machine and event countdowns (checkpoint support). The spec, core
    /// placement and layout are config-derived and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.usize(self.burst.len());
        for &addr in &self.burst {
            w.u64(addr);
        }
        w.u64(self.ifetch_cursor);
        w.bool(self.phase_hot);
        w.u64(self.until_data);
        w.u64(self.until_ifetch);
        w.u64(self.until_hot);
        w.u64(self.instructions_planned);
        w.u64(self.data_events);
        w.u64(self.data_accesses);
    }

    /// Restores the stream's mutable state from a checkpoint. The stream must
    /// have been built with the same spec and placement as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an
    /// impossible burst length.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng.set_state(state);
        let burst_len = r.bounded_len(8)?;
        // A row burst never exceeds one DRAM row's worth of blocks.
        if burst_len as u64 > ROW_BYTES / BLOCK_BYTES {
            return Err(r.bad_value(format!("burst length {burst_len} exceeds one row")));
        }
        self.burst.clear();
        for _ in 0..burst_len {
            self.burst.push_back(r.u64()?);
        }
        self.ifetch_cursor = r.u64()?;
        self.phase_hot = r.bool()?;
        self.until_data = r.u64()?;
        self.until_ifetch = r.u64()?;
        self.until_hot = r.u64()?;
        self.instructions_planned = r.u64()?;
        self.data_events = r.u64()?;
        self.data_accesses = r.u64()?;
        Ok(())
    }

    /// Re-seeds the stream's RNG mid-run (per-replicate divergence when a
    /// sweep forks measured cells off a shared warm checkpoint). Placement,
    /// phase machine and counters are untouched — only future random draws
    /// change.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(
            seed ^ (self.layout_core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC10D,
        );
    }

    /// Produces the next instruction-stream slot.
    pub fn next_op(&mut self) -> CoreOp {
        // Burst continuation: back-to-back accesses within the open row.
        if let Some(addr) = self.burst.pop_front() {
            self.instructions_planned += 1;
            self.consume_instructions(1);
            let op = self.data_op(addr);
            return CoreOp::Mem(op);
        }
        let next_event = self.until_data.min(self.until_ifetch).min(self.until_hot);
        if next_event > 1 {
            // Emit the compute gap up to (but not including) the next event.
            let gap = (next_event - 1).min(u64::from(u32::MAX)) as u32;
            self.until_data -= u64::from(gap);
            self.until_ifetch = self.until_ifetch.saturating_sub(u64::from(gap));
            self.until_hot = self.until_hot.saturating_sub(u64::from(gap));
            self.instructions_planned += u64::from(gap);
            self.consume_instructions(u64::from(gap));
            return CoreOp::Compute(gap);
        }
        self.instructions_planned += 1;
        self.consume_instructions(1);
        if self.until_data <= 1 {
            self.until_data = self.sample_interval(self.data_interval());
            self.until_ifetch = self.until_ifetch.saturating_sub(1).max(1);
            self.until_hot = self.until_hot.saturating_sub(1).max(1);
            let op = self.start_data_event();
            CoreOp::Mem(op)
        } else if self.until_ifetch <= 1 {
            self.until_ifetch = self.sample_interval(self.ifetch_interval());
            self.until_data = self.until_data.saturating_sub(1).max(1);
            self.until_hot = self.until_hot.saturating_sub(1).max(1);
            let op = self.ifetch_op();
            CoreOp::Mem(op)
        } else {
            self.until_hot = self.sample_interval(self.hot_interval());
            self.until_data = self.until_data.saturating_sub(1).max(1);
            self.until_ifetch = self.until_ifetch.saturating_sub(1).max(1);
            let op = self.hot_op();
            CoreOp::Mem(op)
        }
    }
}

/// The set of per-core streams making up one run — one stream per core over
/// all tenants of a [`MixSpec`] — plus the per-tenant DMA injection rates.
#[derive(Debug, Clone)]
pub struct WorkloadStreams {
    mix: MixSpec,
    streams: Vec<CoreStream>,
}

impl WorkloadStreams {
    /// Builds one stream per core of `workload`, deterministically seeded.
    #[must_use]
    pub fn new(workload: Workload, seed: u64) -> Self {
        Self::from_spec(workload.spec(), seed)
    }

    /// Builds streams from an explicit (possibly customized) single-tenant
    /// spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate.
    #[must_use]
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        Self::from_mix(MixSpec::solo(spec), seed)
    }

    /// Builds the streams of every tenant of `mix`: tenants own contiguous
    /// global core slots, and each core's *private*, hot and code regions
    /// are placed by its global slot so tenants never alias each other's
    /// private memory. The shared region (OS structures, shared heaps) and
    /// the DMA buffer window are deliberately shared across tenants, as on a
    /// real consolidated node.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not validate.
    #[must_use]
    pub fn from_mix(mix: MixSpec, seed: u64) -> Self {
        // simlint: allow(panic) documented constructor contract: mix must validate
        mix.validate().expect("invalid workload mix");
        let mut streams = Vec::with_capacity(mix.total_cores());
        let mut layout_core = 0usize;
        let mut code_offset = 0u64;
        for tenant in mix.tenants() {
            for core in 0..tenant.workload.cores {
                streams.push(CoreStream::placed(
                    tenant.workload,
                    core,
                    layout_core,
                    code_offset,
                    seed,
                ));
                layout_core += 1;
                code_offset += tenant.workload.code_footprint_bytes;
            }
        }
        Self { mix, streams }
    }

    /// The mix driving these streams.
    #[must_use]
    pub fn mix(&self) -> &MixSpec {
        &self.mix
    }

    /// The spec of the first tenant (the only tenant for single-tenant runs).
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.mix.tenant(0).workload
    }

    /// The tenant owning global core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn tenant_of_core(&self, core: usize) -> TenantId {
        self.mix.tenant_of_core(core)
    }

    /// Number of cores (= number of streams).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// Mutable access to the stream of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stream_mut(&mut self, core: usize) -> &mut CoreStream {
        &mut self.streams[core]
    }

    /// Shared access to the stream of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn stream(&self, core: usize) -> &CoreStream {
        &self.streams[core]
    }

    /// DMA/IO requests to inject per kilo CPU cycles, summed over tenants.
    #[must_use]
    pub fn dma_per_kcycle(&self) -> f64 {
        self.mix.tenants().map(|t| t.workload.dma_per_kcycle).sum()
    }

    /// Serializes every core stream's mutable state (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("workload-streams");
        for stream in &self.streams {
            stream.save_state(w);
        }
    }

    /// Restores every core stream's mutable state from a checkpoint. The
    /// streams must have been built from the same mix as the saved ones.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or
    /// impossible values.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("workload-streams")?;
        for stream in &mut self.streams {
            stream.load_state(r)?;
        }
        Ok(())
    }

    /// Re-seeds every core stream's RNG mid-run (per-replicate divergence
    /// when a sweep forks measured cells off a shared warm checkpoint).
    pub fn reseed(&mut self, seed: u64) {
        for stream in &mut self.streams {
            stream.reseed(seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Workload;

    fn drive(stream: &mut CoreStream, instructions: u64) -> (u64, u64, u64) {
        // Returns (instructions, data accesses, store accesses).
        let mut instr = 0u64;
        let mut data = 0u64;
        let mut stores = 0u64;
        while instr < instructions {
            match stream.next_op() {
                CoreOp::Compute(n) => instr += u64::from(n),
                CoreOp::Mem(op) => {
                    instr += 1;
                    let off_chip = op.addr >= 0x0400_0000 && op.kind != OpKind::Ifetch
                        // hot region sits at the top of the private stride
                        && (op.addr & 0x0FFF_FFFF) < 0x0FFF_C000;
                    if off_chip {
                        data += 1;
                        if op.kind == OpKind::Store {
                            stores += 1;
                        }
                    }
                }
            }
        }
        (instr, data, stores)
    }

    #[test]
    fn generated_mpki_tracks_spec() {
        for w in [Workload::WebSearch, Workload::DataServing, Workload::TpchQ6] {
            let spec = w.spec();
            let mut stream = CoreStream::new(spec, 0, 7);
            let (instr, data, _) = drive(&mut stream, 400_000);
            let mpki = data as f64 * 1000.0 / instr as f64;
            let target = spec.data_mpki * spec.intensity_factor(0);
            assert!(
                (mpki - target).abs() / target < 0.25,
                "{w}: generated MPKI {mpki:.2}, target {target:.2}"
            );
        }
    }

    #[test]
    fn store_fraction_roughly_matches_spec() {
        let spec = Workload::TpcC1.spec();
        let mut stream = CoreStream::new(spec, 0, 11);
        let (_, data, stores) = drive(&mut stream, 600_000);
        let frac = stores as f64 / data as f64;
        assert!(
            (frac - spec.store_fraction).abs() < 0.08,
            "store fraction {frac:.2} vs spec {}",
            spec.store_fraction
        );
    }

    #[test]
    fn same_seed_is_deterministic_and_cores_differ() {
        let spec = Workload::MediaStreaming.spec();
        let mut a = CoreStream::new(spec, 0, 99);
        let mut b = CoreStream::new(spec, 0, 99);
        let mut c = CoreStream::new(spec, 1, 99);
        let seq_a: Vec<_> = (0..200).map(|_| a.next_op()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.next_op()).collect();
        let seq_c: Vec<_> = (0..200).map(|_| c.next_op()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn bursts_produce_sequential_row_addresses() {
        let mut spec = Workload::MediaStreaming.spec();
        spec.row_burst_prob = 1.0; // force bursts
        let mut stream = CoreStream::new(spec, 0, 3);
        let mut last: Option<u64> = None;
        let mut sequential_pairs = 0;
        let mut mem_ops = 0;
        for _ in 0..25_000 {
            if let CoreOp::Mem(op) = stream.next_op() {
                // Only consider off-chip data accesses (skip ifetches and the
                // small L1-resident hot region at the top of the private
                // stride) — those are the accesses bursts are made of.
                let is_hot = op.addr >= 0x4FFF_C000 && op.addr < 0x5000_0000;
                if op.kind != OpKind::Ifetch && op.addr >= 0x0400_0000 && !is_hot {
                    mem_ops += 1;
                    if let Some(prev) = last {
                        if op.addr == prev + BLOCK_BYTES {
                            sequential_pairs += 1;
                        }
                    }
                    last = Some(op.addr);
                }
            } else {
                last = None;
            }
        }
        assert!(mem_ops > 100);
        assert!(
            sequential_pairs as f64 / mem_ops as f64 > 0.3,
            "expected many sequential pairs, got {sequential_pairs}/{mem_ops}"
        );
    }

    #[test]
    fn cores_use_disjoint_private_regions() {
        let spec = Workload::DataServing.spec();
        let mut s0 = CoreStream::new(spec, 0, 5);
        let mut s1 = CoreStream::new(spec, 1, 5);
        let collect = |s: &mut CoreStream| {
            let mut addrs = Vec::new();
            for _ in 0..3_000 {
                if let CoreOp::Mem(op) = s.next_op() {
                    if op.addr >= 0x4000_0000 {
                        addrs.push(op.addr);
                    }
                }
            }
            addrs
        };
        let a0 = collect(&mut s0);
        let a1 = collect(&mut s1);
        assert!(!a0.is_empty() && !a1.is_empty());
        let max0 = a0.iter().max().unwrap();
        let min1 = a1.iter().min().unwrap();
        assert!(
            max0 < min1,
            "core 0 addresses must stay below core 1's region"
        );
    }

    #[test]
    fn workload_streams_build_for_every_workload() {
        for w in Workload::all() {
            let mut streams = WorkloadStreams::new(w, 1);
            assert_eq!(streams.cores(), w.spec().cores);
            let op = streams.stream_mut(0).next_op();
            match op {
                CoreOp::Compute(n) => assert!(n >= 1),
                CoreOp::Mem(_) => {}
            }
            assert!((streams.dma_per_kcycle() - w.spec().dma_per_kcycle).abs() < 1e-12);
            assert_eq!(streams.spec().workload, w);
        }
    }

    #[test]
    fn mix_tenants_use_disjoint_address_regions() {
        use crate::mix::{MixSpec, TenantSpec};
        let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 2))
            .and(TenantSpec::batch(Workload::TpchQ6, 2));
        let streams = WorkloadStreams::from_mix(mix, 9);
        assert_eq!(streams.cores(), 4);
        assert_eq!(streams.tenant_of_core(0), 0);
        assert_eq!(streams.tenant_of_core(3), 1);
        // Code regions are packed back to back across tenants.
        let mut next_code = None;
        for core in 0..4 {
            let (base, size) = streams.stream(core).code_region();
            if let Some(expected) = next_code {
                assert_eq!(base, expected, "core {core} code region must follow");
            }
            next_code = Some(base + size);
        }
        // Private regions are placed by global slot: strictly increasing and
        // disjoint across the tenant boundary.
        let hot_bases: Vec<u64> = (0..4).map(|c| streams.stream(c).hot_region().0).collect();
        for pair in hot_bases.windows(2) {
            assert!(pair[0] < pair[1], "hot regions must not alias: {pair:?}");
        }
        // Same workload in a mix at a different slot produces a different
        // stream than standalone core 0, but the same spec statistics.
        assert_eq!(streams.stream(2).workload(), Workload::TpchQ6);
        assert_eq!(streams.stream(2).core(), 0);
    }

    #[test]
    fn mlp_fraction_marks_loads_overlappable() {
        let mut spec = Workload::TpchQ6.spec();
        spec.mlp_fraction = 1.0;
        spec.store_fraction = 0.0;
        let mut stream = CoreStream::new(spec, 0, 13);
        let mut loads = 0;
        let mut overlappable = 0;
        for _ in 0..20_000 {
            if let CoreOp::Mem(op) = stream.next_op() {
                if op.kind == OpKind::Load && op.addr >= 0x4000_0000 {
                    loads += 1;
                    if op.overlappable {
                        overlappable += 1;
                    }
                }
            }
        }
        assert!(loads > 50);
        assert_eq!(loads, overlappable);
    }
}
