//! Multi-tenant workload mixes.
//!
//! The paper's scale-out workloads never run alone on a consolidated cloud
//! node: a latency-critical service is co-located with batch analytics, and
//! the memory controller is exactly where they collide. A [`MixSpec`] binds
//! up to [`MAX_TENANTS`] heterogeneous [`WorkloadSpec`]s to contiguous core
//! groups of one simulated pod, tagging each with a [`TenantId`] and a
//! latency-criticality flag. The tag is minted here, carried through the
//! cores, caches and miss requests, and consumed by the memory controller's
//! QoS policies and the per-tenant statistics.

use crate::spec::{Workload, WorkloadSpec};

/// Identifier of one tenant of a mix (index into the mix's tenant list).
///
/// Single-tenant runs use tenant `0` everywhere.
pub type TenantId = usize;

/// Maximum number of tenants a mix may bind.
///
/// Fixed so that per-tenant accounting can live in flat arrays on the
/// simulator's hot path. `cloudmc-memctrl` pins the same bound for its
/// per-tenant counters; the simulator asserts the two stay equal.
pub const MAX_TENANTS: usize = 4;

/// One tenant of a mix: a workload model, its core allocation, and whether
/// the tenant is latency-critical (a user-facing service) or batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The workload model; `workload.cores` is this tenant's core count.
    pub workload: WorkloadSpec,
    /// Whether the tenant is latency-critical. QoS policies may privilege
    /// latency-critical tenants; batch tenants absorb the slack.
    pub latency_critical: bool,
}

impl TenantSpec {
    /// A latency-critical tenant running `workload` on `cores` cores.
    #[must_use]
    pub fn latency_critical(workload: Workload, cores: usize) -> Self {
        let mut spec = workload.spec();
        spec.cores = cores;
        Self {
            workload: spec,
            latency_critical: true,
        }
    }

    /// A batch (throughput-oriented) tenant running `workload` on `cores`
    /// cores.
    #[must_use]
    pub fn batch(workload: Workload, cores: usize) -> Self {
        let mut spec = workload.spec();
        spec.cores = cores;
        Self {
            workload: spec,
            latency_critical: false,
        }
    }

    /// Number of cores allocated to this tenant.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.workload.cores
    }
}

/// A multi-tenant workload mix: up to [`MAX_TENANTS`] tenants bound to
/// contiguous core groups (tenant 0 owns the lowest core indices).
///
/// # Examples
///
/// ```
/// use cloudmc_workloads::{MixSpec, TenantSpec, Workload};
///
/// let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
///     .and(TenantSpec::batch(Workload::TpchQ6, 8));
/// assert_eq!(mix.tenant_count(), 2);
/// assert_eq!(mix.total_cores(), 16);
/// assert_eq!(mix.tenant_of_core(3), 0);
/// assert_eq!(mix.tenant_of_core(12), 1);
/// assert_eq!(mix.label(), "WS+TPCH-Q6");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    tenants: [Option<TenantSpec>; MAX_TENANTS],
}

impl MixSpec {
    /// A mix with a single tenant.
    #[must_use]
    pub fn new(first: TenantSpec) -> Self {
        Self {
            tenants: [Some(first), None, None, None],
        }
    }

    /// A single-tenant mix wrapping a plain workload spec (not latency-
    /// critical); the degenerate case every pre-tenancy run reduces to.
    #[must_use]
    pub fn solo(workload: WorkloadSpec) -> Self {
        Self::new(TenantSpec {
            workload,
            latency_critical: false,
        })
    }

    /// Appends another tenant (claiming the next core group).
    ///
    /// # Panics
    ///
    /// Panics if the mix already holds [`MAX_TENANTS`] tenants.
    #[must_use]
    pub fn and(mut self, tenant: TenantSpec) -> Self {
        let slot = self
            .tenants
            .iter()
            .position(Option::is_none)
            // simlint: allow(panic) documented builder contract: capacity is MAX_TENANTS
            .unwrap_or_else(|| panic!("a mix holds at most {MAX_TENANTS} tenants"));
        self.tenants[slot] = Some(tenant);
        self
    }

    /// Number of tenants in the mix (at least 1).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.iter().flatten().count()
    }

    /// The spec of tenant `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn tenant(&self, t: TenantId) -> &TenantSpec {
        // simlint: allow(panic) documented accessor contract: t must be in range
        self.tenants[t].as_ref().expect("tenant index out of range")
    }

    /// Iterates over the tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.iter().flatten()
    }

    /// Total cores over all tenants.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.tenants().map(TenantSpec::cores).sum()
    }

    /// The contiguous core range owned by tenant `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn core_range(&self, t: TenantId) -> std::ops::Range<usize> {
        let lo: usize = self.tenants().take(t).map(TenantSpec::cores).sum();
        lo..lo + self.tenant(t).cores()
    }

    /// The tenant owning global core index `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is beyond the mix's total core count.
    #[must_use]
    pub fn tenant_of_core(&self, core: usize) -> TenantId {
        let mut lo = 0;
        for (t, tenant) in self.tenants().enumerate() {
            lo += tenant.cores();
            if core < lo {
                return t;
            }
        }
        // simlint: allow(panic) documented accessor contract: core must be in range
        panic!("core {core} beyond the mix's {lo} cores");
    }

    /// Whether tenant `t` is latency-critical.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn is_latency_critical(&self, t: TenantId) -> bool {
        self.tenant(t).latency_critical
    }

    /// Workload acronym of tenant `t` (the per-tenant label used in stats).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn tenant_label(&self, t: TenantId) -> &'static str {
        self.tenant(t).workload.workload.acronym()
    }

    /// Human-readable mix label, e.g. `WS+TPCH-Q6` (the acronym alone for a
    /// single tenant).
    #[must_use]
    pub fn label(&self) -> String {
        let labels: Vec<&str> = self
            .tenants()
            .map(|t| t.workload.workload.acronym())
            .collect();
        labels.join("+")
    }

    /// Validates the mix: every tenant's workload spec must validate and the
    /// core allocation must be sane.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency, including the
    /// offending value.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant_count() == 0 {
            return Err("a mix must bind at least one tenant".to_owned());
        }
        for (t, tenant) in self.tenants().enumerate() {
            tenant
                .workload
                .validate()
                .map_err(|e| format!("tenant {t} ({}): {e}", self.tenant_label(t)))?;
        }
        let total = self.total_cores();
        if total > 64 {
            return Err(format!(
                "mix binds {total} cores in total, which is unreasonably large (max 64)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_mix() -> MixSpec {
        MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
            .and(TenantSpec::batch(Workload::TpchQ6, 8))
    }

    #[test]
    fn solo_mix_mirrors_the_plain_spec() {
        let spec = Workload::DataServing.spec();
        let mix = MixSpec::solo(spec);
        assert_eq!(mix.tenant_count(), 1);
        assert_eq!(mix.total_cores(), spec.cores);
        assert_eq!(mix.label(), "DS");
        assert!(!mix.is_latency_critical(0));
        assert_eq!(mix.core_range(0), 0..spec.cores);
        mix.validate().unwrap();
    }

    #[test]
    fn core_groups_are_contiguous_and_exhaustive() {
        let mix = two_tenant_mix().and(TenantSpec::batch(Workload::TpcC1, 4));
        assert_eq!(mix.tenant_count(), 3);
        assert_eq!(mix.total_cores(), 20);
        assert_eq!(mix.core_range(0), 0..8);
        assert_eq!(mix.core_range(1), 8..16);
        assert_eq!(mix.core_range(2), 16..20);
        for core in 0..20 {
            let t = mix.tenant_of_core(core);
            assert!(mix.core_range(t).contains(&core));
        }
    }

    #[test]
    fn latency_criticality_and_labels() {
        let mix = two_tenant_mix();
        assert!(mix.is_latency_critical(0));
        assert!(!mix.is_latency_critical(1));
        assert_eq!(mix.tenant_label(0), "WS");
        assert_eq!(mix.tenant_label(1), "TPCH-Q6");
        assert_eq!(mix.label(), "WS+TPCH-Q6");
    }

    #[test]
    fn validate_reports_offending_tenant() {
        let mut bad = Workload::WebSearch.spec();
        bad.cores = 4;
        bad.row_burst_prob = 2.0;
        let mix = MixSpec::new(TenantSpec::batch(Workload::TpchQ6, 8)).and(TenantSpec {
            workload: bad,
            latency_critical: true,
        });
        let err = mix.validate().unwrap_err();
        assert!(err.contains("tenant 1"), "{err}");
        assert!(err.contains("WS"), "{err}");
        assert!(err.contains('2'), "{err}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn more_than_max_tenants_panics() {
        let mut mix = MixSpec::new(TenantSpec::batch(Workload::WebSearch, 2));
        for _ in 0..MAX_TENANTS {
            mix = mix.and(TenantSpec::batch(Workload::TpchQ6, 2));
        }
    }

    #[test]
    fn oversubscribed_mix_fails_validation() {
        let mix = MixSpec::new(TenantSpec::batch(Workload::WebSearch, 40))
            .and(TenantSpec::batch(Workload::TpchQ6, 40));
        let err = mix.validate().unwrap_err();
        assert!(err.contains("80"), "{err}");
    }
}
