//! Workload identities and their statistical specifications.
//!
//! The paper evaluates the six CloudSuite scale-out workloads plus three
//! transactional and three decision-support workloads (Table 1). We cannot
//! run the original applications on a full-system simulator here, so each
//! workload is described by a [`WorkloadSpec`] — the statistical properties
//! of its off-chip access stream as characterized by the paper (L2 MPKI from
//! Fig. 4, row-buffer reuse from Fig. 2/8, memory-level parallelism and
//! per-core balance from the Section 4 discussion) — and synthesized by
//! [`crate::generator::CoreStream`].

/// The three workload categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Scale-out (CloudSuite) workloads, `SCOW`.
    ScaleOut,
    /// Traditional transactional server workloads, `TRSW`.
    Transactional,
    /// Decision-support workloads, `DSPW`.
    DecisionSupport,
}

impl Category {
    /// Acronym used in the paper's figures.
    #[must_use]
    pub fn acronym(&self) -> &'static str {
        match self {
            Self::ScaleOut => "SCO",
            Self::Transactional => "TRS",
            Self::DecisionSupport => "DSP",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.acronym())
    }
}

/// The twelve workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Workload {
    /// Data Serving (Cassandra NoSQL store).
    DataServing,
    /// MapReduce (Hadoop text analytics).
    MapReduce,
    /// SAT Solver (Cloud9 symbolic execution backend).
    SatSolver,
    /// Web Frontend (Olio social-events PHP stack).
    WebFrontend,
    /// Web Search (Nutch index serving).
    WebSearch,
    /// Media Streaming (Darwin streaming server).
    MediaStreaming,
    /// SPECweb99 web serving.
    SpecWeb99,
    /// TPC-C on commercial DBMS vendor A.
    TpcC1,
    /// TPC-C on commercial DBMS vendor B.
    TpcC2,
    /// TPC-H query 2 (join-intensive).
    TpchQ2,
    /// TPC-H query 6 (select-intensive scan).
    TpchQ6,
    /// TPC-H query 17 (select-join).
    TpchQ17,
}

impl Workload {
    /// All workloads in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Self; 12] {
        [
            Self::DataServing,
            Self::MapReduce,
            Self::SatSolver,
            Self::WebFrontend,
            Self::WebSearch,
            Self::MediaStreaming,
            Self::SpecWeb99,
            Self::TpcC1,
            Self::TpcC2,
            Self::TpchQ2,
            Self::TpchQ6,
            Self::TpchQ17,
        ]
    }

    /// The six scale-out workloads.
    #[must_use]
    pub fn scale_out() -> [Self; 6] {
        [
            Self::DataServing,
            Self::MapReduce,
            Self::SatSolver,
            Self::WebFrontend,
            Self::WebSearch,
            Self::MediaStreaming,
        ]
    }

    /// Workload category (Table 1).
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            Self::DataServing
            | Self::MapReduce
            | Self::SatSolver
            | Self::WebFrontend
            | Self::WebSearch
            | Self::MediaStreaming => Category::ScaleOut,
            Self::SpecWeb99 | Self::TpcC1 | Self::TpcC2 => Category::Transactional,
            Self::TpchQ2 | Self::TpchQ6 | Self::TpchQ17 => Category::DecisionSupport,
        }
    }

    /// Acronym used in the paper's figures.
    #[must_use]
    pub fn acronym(&self) -> &'static str {
        match self {
            Self::DataServing => "DS",
            Self::MapReduce => "MR",
            Self::SatSolver => "SS",
            Self::WebFrontend => "WF",
            Self::WebSearch => "WS",
            Self::MediaStreaming => "MS",
            Self::SpecWeb99 => "WSPEC99",
            Self::TpcC1 => "TPC-C1",
            Self::TpcC2 => "TPC-C2",
            Self::TpchQ2 => "TPCH-Q2",
            Self::TpchQ6 => "TPCH-Q6",
            Self::TpchQ17 => "TPCH-Q17",
        }
    }

    /// The calibrated statistical specification of this workload.
    #[must_use]
    pub fn spec(&self) -> WorkloadSpec {
        WorkloadSpec::preset(*self)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.acronym())
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Self::all()
            .into_iter()
            .find(|w| w.acronym().eq_ignore_ascii_case(&upper))
            .ok_or_else(|| format!("unknown workload `{s}`"))
    }
}

/// Statistical description of one workload's per-core access stream.
///
/// All rates are per committed user instruction unless noted otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which workload this spec describes.
    pub workload: Workload,
    /// Number of cores the benchmark uses (Web Frontend uses 8, rest 16).
    pub cores: usize,
    /// Off-chip data accesses per kilo-instruction (the L2 data MPKI target).
    pub data_mpki: f64,
    /// Off-chip instruction-fetch misses per kilo-instruction.
    pub ifetch_mpki: f64,
    /// Probability that an off-chip access event opens a multi-access row
    /// burst rather than touching a row exactly once.
    pub row_burst_prob: f64,
    /// Mean number of sequential blocks touched by a row burst.
    pub row_burst_len: f64,
    /// Fraction of off-chip data accesses that are stores (they return as
    /// dirty write-backs later).
    pub store_fraction: f64,
    /// Fraction of off-chip loads the core may overlap (memory-level
    /// parallelism knob).
    pub mlp_fraction: f64,
    /// Temporal burstiness of the off-chip access stream in `[0, 1)`:
    /// 0 = stationary Poisson-like arrivals; larger values alternate between
    /// high-intensity phases (request processing spikes, GC, compaction) and
    /// quiet phases while preserving the average rate. Server workloads are
    /// distinctly bursty, which is what creates transient queueing at the
    /// memory controller even though average utilization stays moderate.
    pub burstiness: f64,
    /// Per-core intensity skew in [0, 1): 0 = perfectly balanced cores,
    /// larger values concentrate traffic on a subset of cores.
    pub core_imbalance: f64,
    /// Fraction of off-chip accesses that target a region shared by all cores
    /// (OS structures, shared heaps).
    pub shared_fraction: f64,
    /// DMA/IO requests injected per kilo CPU cycles (Web Frontend traffic).
    pub dma_per_kcycle: f64,
    /// Private off-chip footprint per core in bytes.
    pub footprint_bytes: u64,
    /// Instruction (code) footprint in bytes, per core.
    pub code_footprint_bytes: u64,
    /// L1-resident hot data accesses per instruction (keeps the L1s busy).
    pub hot_access_rate: f64,
}

impl WorkloadSpec {
    /// The calibrated preset for `workload`.
    ///
    /// Values are calibrated against the characteristics the paper reports
    /// for the baseline configuration: L2 MPKI (Fig. 4), row-buffer hit rate
    /// under open-adaptive FR-FCFS (Fig. 2), the fraction of single-access
    /// row activations (Fig. 8), bandwidth utilization (Fig. 7) and the
    /// qualitative MLP / per-core-balance discussion of Section 4.
    #[must_use]
    pub fn preset(workload: Workload) -> Self {
        use Workload::{
            DataServing, MapReduce, MediaStreaming, SatSolver, SpecWeb99, TpcC1, TpcC2, TpchQ17,
            TpchQ2, TpchQ6, WebFrontend, WebSearch,
        };
        let base = Self {
            workload,
            cores: 16,
            data_mpki: 5.0,
            ifetch_mpki: 30.0,
            row_burst_prob: 0.15,
            row_burst_len: 4.0,
            store_fraction: 0.30,
            mlp_fraction: 0.25,
            burstiness: 0.6,
            core_imbalance: 0.2,
            shared_fraction: 0.15,
            dma_per_kcycle: 0.0,
            footprint_bytes: 96 * 1024 * 1024,
            code_footprint_bytes: 64 * 1024,
            hot_access_rate: 0.12,
        };
        match workload {
            DataServing => Self {
                data_mpki: 3.2,
                ifetch_mpki: 60.0,
                row_burst_prob: 0.20,
                row_burst_len: 5.0,
                mlp_fraction: 0.10,
                core_imbalance: 0.2,
                burstiness: 0.65,
                ..base
            },
            MapReduce => Self {
                data_mpki: 2.2,
                ifetch_mpki: 45.0,
                row_burst_prob: 0.20,
                row_burst_len: 5.5,
                store_fraction: 0.35,
                mlp_fraction: 0.08,
                core_imbalance: 0.55,
                burstiness: 0.75,
                ..base
            },
            SatSolver => Self {
                data_mpki: 2.0,
                ifetch_mpki: 33.0,
                row_burst_prob: 0.16,
                row_burst_len: 4.0,
                store_fraction: 0.22,
                mlp_fraction: 0.10,
                core_imbalance: 0.3,
                burstiness: 0.55,
                ..base
            },
            WebFrontend => Self {
                cores: 8,
                data_mpki: 2.6,
                ifetch_mpki: 70.0,
                row_burst_prob: 0.22,
                row_burst_len: 8.0,
                mlp_fraction: 0.05,
                core_imbalance: 0.5,
                dma_per_kcycle: 3.0,
                burstiness: 0.70,
                ..base
            },
            WebSearch => Self {
                data_mpki: 1.3,
                ifetch_mpki: 50.0,
                row_burst_prob: 0.19,
                row_burst_len: 4.5,
                store_fraction: 0.2,
                mlp_fraction: 0.08,
                burstiness: 0.55,
                ..base
            },
            MediaStreaming => Self {
                data_mpki: 4.5,
                ifetch_mpki: 38.0,
                row_burst_prob: 0.24,
                row_burst_len: 9.0,
                store_fraction: 0.25,
                mlp_fraction: 0.15,
                burstiness: 0.60,
                ..base
            },
            SpecWeb99 => Self {
                data_mpki: 3.8,
                ifetch_mpki: 58.0,
                row_burst_prob: 0.21,
                row_burst_len: 5.0,
                mlp_fraction: 0.12,
                core_imbalance: 0.45,
                burstiness: 0.70,
                ..base
            },
            TpcC1 => Self {
                data_mpki: 5.0,
                ifetch_mpki: 55.0,
                row_burst_prob: 0.18,
                row_burst_len: 4.5,
                store_fraction: 0.38,
                mlp_fraction: 0.15,
                core_imbalance: 0.3,
                burstiness: 0.60,
                ..base
            },
            TpcC2 => Self {
                data_mpki: 4.6,
                ifetch_mpki: 55.0,
                row_burst_prob: 0.19,
                row_burst_len: 4.5,
                store_fraction: 0.38,
                mlp_fraction: 0.15,
                core_imbalance: 0.3,
                burstiness: 0.60,
                ..base
            },
            TpchQ2 => Self {
                data_mpki: 9.0,
                ifetch_mpki: 20.0,
                row_burst_prob: 0.14,
                row_burst_len: 4.0,
                store_fraction: 0.2,
                mlp_fraction: 0.30,
                core_imbalance: 0.15,
                footprint_bytes: 192 * 1024 * 1024,
                burstiness: 0.30,
                ..base
            },
            TpchQ6 => Self {
                data_mpki: 14.0,
                ifetch_mpki: 12.0,
                row_burst_prob: 0.15,
                row_burst_len: 4.5,
                store_fraction: 0.12,
                mlp_fraction: 0.30,
                core_imbalance: 0.1,
                footprint_bytes: 256 * 1024 * 1024,
                burstiness: 0.25,
                ..base
            },
            TpchQ17 => Self {
                data_mpki: 11.5,
                ifetch_mpki: 16.0,
                row_burst_prob: 0.14,
                row_burst_len: 4.0,
                store_fraction: 0.22,
                mlp_fraction: 0.30,
                core_imbalance: 0.15,
                footprint_bytes: 192 * 1024 * 1024,
                burstiness: 0.30,
                ..base
            },
        }
    }

    /// Total off-chip MPKI (data plus instruction fetches).
    #[must_use]
    pub fn total_mpki(&self) -> f64 {
        self.data_mpki + self.ifetch_mpki
    }

    /// A copy of this spec with every traffic rate scaled by `factor`:
    /// off-chip data and instruction-fetch MPKI, DMA injection, the
    /// L1-resident hot-access rate, and (for factors below one) the phase
    /// burstiness. The address-stream *shape* (row locality, store fraction,
    /// MLP, footprints) is untouched.
    ///
    /// Low factors model the idle-heavy phases cloud services spend most of
    /// their time in — long compute stretches between sparse memory events —
    /// which is exactly where the simulation kernel's event-horizon
    /// fast-forward earns its keep (arrival gaps grow as `1/factor`). Used by
    /// the intensity sweeps and the fast-forward benchmarks.
    #[must_use]
    pub fn with_intensity(mut self, factor: f64) -> Self {
        let factor = factor.max(0.0);
        self.data_mpki *= factor;
        self.ifetch_mpki *= factor;
        self.dma_per_kcycle *= factor;
        self.hot_access_rate *= factor;
        if factor < 1.0 {
            self.burstiness *= factor;
        }
        self
    }

    /// Expected fraction of row activations that serve exactly one access
    /// under an idealized open policy (used for calibration checks).
    #[must_use]
    pub fn expected_single_access_fraction(&self) -> f64 {
        1.0 - self.row_burst_prob
    }

    /// Per-core intensity multiplier implementing [`Self::core_imbalance`].
    ///
    /// Cores are split into four groups with intensities spread around 1.0;
    /// the mean over all cores stays 1.0 so the aggregate MPKI is preserved.
    #[must_use]
    pub fn intensity_factor(&self, core: usize) -> f64 {
        let group = (core % 4) as f64; // 0..=3
        1.0 + self.core_imbalance * (group - 1.5) / 1.5
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        fn prob(name: &str, v: f64) -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} ({v}) must be within [0, 1]"));
            }
            Ok(())
        }
        if self.cores == 0 {
            return Err(format!("cores ({}) must be non-zero", self.cores));
        }
        if self.data_mpki < 0.0 {
            return Err(format!(
                "data_mpki ({}) must be non-negative",
                self.data_mpki
            ));
        }
        if self.ifetch_mpki < 0.0 {
            return Err(format!(
                "ifetch_mpki ({}) must be non-negative",
                self.ifetch_mpki
            ));
        }
        prob("row_burst_prob", self.row_burst_prob)?;
        prob("store_fraction", self.store_fraction)?;
        prob("mlp_fraction", self.mlp_fraction)?;
        prob("shared_fraction", self.shared_fraction)?;
        if !(0.0..1.0).contains(&self.burstiness) {
            return Err(format!(
                "burstiness ({}) must be within [0, 1)",
                self.burstiness
            ));
        }
        if !(0.0..1.0).contains(&self.core_imbalance) {
            return Err(format!(
                "core_imbalance ({}) must be within [0, 1)",
                self.core_imbalance
            ));
        }
        if self.row_burst_len < 1.0 {
            return Err(format!(
                "row_burst_len ({}) must be at least 1",
                self.row_burst_len
            ));
        }
        if self.footprint_bytes < 1024 * 1024 {
            return Err(format!(
                "footprint_bytes ({}) must be at least 1 MiB",
                self.footprint_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_intensity_scales_rates_and_stays_valid() {
        let base = Workload::WebSearch.spec();
        let idle = base.with_intensity(0.01);
        idle.validate().unwrap();
        assert!((idle.data_mpki - base.data_mpki * 0.01).abs() < 1e-12);
        assert!((idle.ifetch_mpki - base.ifetch_mpki * 0.01).abs() < 1e-12);
        assert!((idle.hot_access_rate - base.hot_access_rate * 0.01).abs() < 1e-12);
        // Shape knobs are untouched.
        assert_eq!(idle.row_burst_prob, base.row_burst_prob);
        assert_eq!(idle.store_fraction, base.store_fraction);
        assert_eq!(idle.footprint_bytes, base.footprint_bytes);
        // Scaling up is allowed too and burstiness stays in range.
        let hot = base.with_intensity(2.0);
        hot.validate().unwrap();
        assert_eq!(hot.burstiness, base.burstiness);
    }

    /// The zero-rate boundary: `with_intensity(0.0)` must validate cleanly —
    /// every rate collapses to zero (burstiness included, keeping it inside
    /// its half-open range) and the generators tolerate the never-emitting
    /// stream (`tests/end_to_end.rs` pins the full-system half).
    #[test]
    fn with_intensity_zero_validates_cleanly() {
        for w in [Workload::WebSearch, Workload::WebFrontend, Workload::TpchQ6] {
            let zero = w.spec().with_intensity(0.0);
            zero.validate()
                .unwrap_or_else(|e| panic!("{w}: zero-rate spec must validate: {e}"));
            assert_eq!(zero.data_mpki, 0.0);
            assert_eq!(zero.ifetch_mpki, 0.0);
            assert_eq!(zero.dma_per_kcycle, 0.0);
            assert_eq!(zero.hot_access_rate, 0.0);
            assert_eq!(zero.burstiness, 0.0);
            // A stream built from it keeps producing (compute) ops.
            let mut stream = crate::generator::CoreStream::new(zero, 0, 1);
            for _ in 0..50 {
                match stream.next_op() {
                    cloudmc_cpu::CoreOp::Compute(n) => assert!(n >= 1),
                    cloudmc_cpu::CoreOp::Mem(_) => {}
                }
            }
        }
        // Negative factors clamp to zero rather than producing invalid specs.
        let clamped = Workload::WebSearch.spec().with_intensity(-1.0);
        clamped.validate().unwrap();
        assert_eq!(clamped.data_mpki, 0.0);
    }

    #[test]
    fn twelve_workloads_with_correct_categories() {
        assert_eq!(Workload::all().len(), 12);
        let scow = Workload::all()
            .iter()
            .filter(|w| w.category() == Category::ScaleOut)
            .count();
        let trsw = Workload::all()
            .iter()
            .filter(|w| w.category() == Category::Transactional)
            .count();
        let dspw = Workload::all()
            .iter()
            .filter(|w| w.category() == Category::DecisionSupport)
            .count();
        assert_eq!((scow, trsw, dspw), (6, 3, 3));
        assert_eq!(Workload::scale_out().len(), 6);
    }

    #[test]
    fn all_presets_validate() {
        for w in Workload::all() {
            let spec = w.spec();
            spec.validate().unwrap_or_else(|e| panic!("{w}: {e}"));
            assert_eq!(spec.workload, w);
        }
    }

    #[test]
    fn acronyms_round_trip_through_parsing() {
        for w in Workload::all() {
            let parsed: Workload = w.acronym().parse().unwrap();
            assert_eq!(parsed, w);
        }
        assert!("NOPE".parse::<Workload>().is_err());
    }

    #[test]
    fn category_mpki_ordering_matches_figure_4() {
        // DSPW > TRSW > SCOW in average L2 MPKI.
        let avg = |cat: Category| {
            let specs: Vec<f64> = Workload::all()
                .iter()
                .filter(|w| w.category() == cat)
                .map(|w| w.spec().data_mpki)
                .collect();
            specs.iter().sum::<f64>() / specs.len() as f64
        };
        let scow = avg(Category::ScaleOut);
        let trsw = avg(Category::Transactional);
        let dspw = avg(Category::DecisionSupport);
        assert!(scow < trsw, "SCOW {scow} should be below TRSW {trsw}");
        assert!(trsw < dspw, "TRSW {trsw} should be below DSPW {dspw}");
        assert!((2.5..6.5).contains(&scow));
        assert!((10.0..20.0).contains(&dspw));
    }

    #[test]
    fn single_access_fraction_is_in_papers_range() {
        for w in Workload::all() {
            let f = w.spec().expected_single_access_fraction();
            assert!(
                (0.75..=0.92).contains(&f),
                "{w}: single-access fraction {f} outside 75%-92%"
            );
        }
    }

    #[test]
    fn web_frontend_uses_eight_cores_and_dma() {
        let wf = Workload::WebFrontend.spec();
        assert_eq!(wf.cores, 8);
        assert!(wf.dma_per_kcycle > 0.0);
        assert!(Workload::DataServing.spec().dma_per_kcycle.abs() < f64::EPSILON);
    }

    #[test]
    fn intensity_factors_average_to_one() {
        let spec = Workload::MapReduce.spec();
        let avg: f64 = (0..16).map(|c| spec.intensity_factor(c)).sum::<f64>() / 16.0;
        assert!((avg - 1.0).abs() < 1e-9);
        // Imbalanced workloads actually spread the intensities.
        assert!(spec.intensity_factor(3) > spec.intensity_factor(0));
    }

    #[test]
    fn validate_catches_bad_values() {
        let mut s = Workload::DataServing.spec();
        s.row_burst_prob = 1.5;
        assert!(s.validate().is_err());
        s = Workload::DataServing.spec();
        s.core_imbalance = 1.0;
        assert!(s.validate().is_err());
        s = Workload::DataServing.spec();
        s.row_burst_len = 0.5;
        assert!(s.validate().is_err());
        s = Workload::DataServing.spec();
        s.footprint_bytes = 1024;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_messages_include_the_offending_value() {
        let check = |mutate: fn(&mut WorkloadSpec), needle: &str| {
            let mut s = Workload::DataServing.spec();
            mutate(&mut s);
            let err = s.validate().unwrap_err();
            assert!(err.contains(needle), "`{err}` should contain `{needle}`");
        };
        check(|s| s.data_mpki = -3.5, "-3.5");
        check(|s| s.ifetch_mpki = -1.0, "-1");
        check(|s| s.row_burst_prob = 1.5, "1.5");
        check(|s| s.row_burst_len = 0.25, "0.25");
        check(|s| s.burstiness = 1.0, "1");
        check(|s| s.core_imbalance = 7.0, "7");
        check(|s| s.footprint_bytes = 2048, "2048");
    }
}
