//! # cloudmc-workloads
//!
//! Synthetic workload models for the `cloudmc` memory controller study.
//!
//! The paper evaluates CloudSuite scale-out workloads, SPECweb99/TPC-C
//! transactional workloads and TPC-H decision-support queries running on a
//! full-system simulator. Those applications (and their commercial database
//! engines) cannot be redistributed, so this crate provides statistical
//! generators calibrated to the access-stream characteristics the paper
//! reports: off-chip miss rates, row-buffer reuse, read/write mix,
//! memory-level parallelism, per-core imbalance and DMA traffic.
//!
//! ```
//! use cloudmc_workloads::{Workload, WorkloadStreams};
//!
//! let mut streams = WorkloadStreams::new(Workload::DataServing, 42);
//! assert_eq!(streams.cores(), 16);
//! let _first_op = streams.stream_mut(0).next_op();
//! ```

#![forbid(unsafe_code)]

pub mod generator;
pub mod mix;
pub mod spec;
pub mod trace;

pub use generator::{CoreStream, WorkloadStreams, BLOCK_BYTES, ROW_BYTES};
pub use mix::{MixSpec, TenantId, TenantSpec, MAX_TENANTS};
pub use spec::{Category, Workload, WorkloadSpec};
pub use trace::{TraceReader, TraceRecord, TraceStream, TraceWriter, WorkloadSource};
