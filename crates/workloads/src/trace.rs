//! Recording and replaying instruction streams.
//!
//! Traces make experiments exactly reproducible across machines and make it
//! possible to feed externally captured access streams (e.g. from a real
//! profiler) into the simulator. The subsystem is wired end to end:
//!
//! * **Capture** — `SystemConfig::trace_record` (in `cloudmc-sim`) taps every
//!   op a core consumes at the frontend and streams it through a
//!   [`TraceWriter`], so any synthetic or mixed-tenant run can be recorded.
//! * **Replay** — [`WorkloadSource::Trace`] swaps the synthetic generators
//!   for a [`TraceStream`], which feeds the recorded (or externally captured)
//!   per-core op streams back into the same cores, with full tenancy and
//!   event-horizon fast-forward support. Replaying a recorded run reproduces
//!   the original statistics bit for bit (enforced by
//!   `tests/trace_replay_equivalence.rs`).
//!
//! The format is a simple line-oriented text format, one record per line:
//!
//! ```text
//! <core> C <count>               # compute burst of <count> instructions
//! <core> L|S|I <addr> [<0|1>]    # load/store/ifetch, overlappable flag
//! ```
//!
//! Addresses are hexadecimal, with or without a `0x`/`0X` prefix. Blank
//! lines and lines starting with `#` are ignored; CRLF line endings are
//! accepted. Parse errors name the 1-based line number of the offending
//! line.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use cloudmc_cpu::{CoreOp, MemOp, OpKind};

/// Where a run's per-core instruction streams come from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WorkloadSource {
    /// The synthetic statistical generators calibrated to the paper (the
    /// default).
    #[default]
    Synthetic,
    /// Replay of a trace file previously captured with
    /// `SystemConfig::trace_record` (or produced by an external tool in the
    /// same format). The run's tenancy/core layout still comes from the
    /// workload mix, which must match the recorded one for the replay to be
    /// meaningful.
    Trace(PathBuf),
}

/// One trace record: which core executed which instruction-stream slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Core index.
    pub core: usize,
    /// The instruction-stream slot.
    pub op: CoreOp,
}

/// Writes trace records to any [`Write`] sink.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> Self {
        Self { sink, records: 0 }
    }

    /// Number of records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn write(&mut self, record: &TraceRecord) -> io::Result<()> {
        match record.op {
            CoreOp::Compute(n) => writeln!(self.sink, "{} C {}", record.core, n)?,
            CoreOp::Mem(op) => {
                let kind = match op.kind {
                    OpKind::Load => 'L',
                    OpKind::Store => 'S',
                    OpKind::Ifetch => 'I',
                };
                writeln!(
                    self.sink,
                    "{} {} {:x} {}",
                    record.core,
                    kind,
                    op.addr,
                    u8::from(op.overlappable)
                )?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Finishes writing: flushes the sink, then returns it.
    ///
    /// Dropping the writer without calling `finish` leaves tail records in
    /// any buffered sink (e.g. a [`std::io::BufWriter`]) to be flushed by
    /// `Drop`, which silently swallows write errors — always `finish` a
    /// trace you intend to keep.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads trace records from any [`BufRead`] source.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    source: R,
    line: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Creates a reader over `source`.
    pub fn new(source: R) -> Self {
        Self { source, line: 0 }
    }

    /// 1-based line number of the last line consumed (0 before any read).
    #[must_use]
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Reads the next record, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures or malformed lines (the error
    /// message includes the 1-based line number).
    pub fn read(&mut self) -> io::Result<Option<TraceRecord>> {
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.source.read_line(&mut buf)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            let trimmed = buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return self.parse(trimmed).map(Some);
        }
    }

    fn parse(&self, line: &str) -> io::Result<TraceRecord> {
        let err = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {msg}: `{line}`", self.line),
            )
        };
        let mut parts = line.split_whitespace();
        let core: usize = parts
            .next()
            .ok_or_else(|| err("missing core"))?
            .parse()
            .map_err(|_| err("bad core index"))?;
        let kind = parts.next().ok_or_else(|| err("missing kind"))?;
        let op = match kind {
            "C" => {
                let n: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing compute count"))?
                    .parse()
                    .map_err(|_| err("bad compute count"))?;
                CoreOp::Compute(n)
            }
            "L" | "S" | "I" => {
                let digits = parts.next().ok_or_else(|| err("missing address"))?;
                // Externally captured traces commonly carry a 0x prefix.
                let digits = digits
                    .strip_prefix("0x")
                    .or_else(|| digits.strip_prefix("0X"))
                    .unwrap_or(digits);
                let addr = u64::from_str_radix(digits, 16).map_err(|_| err("bad address"))?;
                // The writer always emits the flag, so a memory record that
                // ends before it is a trace cut off mid-record (e.g. a
                // capture killed before `finish`) — report it instead of
                // silently replaying a guessed value.
                let overlappable = match parts.next() {
                    Some("1") => true,
                    Some("0") => false,
                    Some(_) => return Err(err("bad overlappable flag")),
                    None => return Err(err("truncated record: missing overlappable flag")),
                };
                let kind = match kind {
                    "L" => OpKind::Load,
                    "S" => OpKind::Store,
                    _ => OpKind::Ifetch,
                };
                CoreOp::Mem(MemOp {
                    kind,
                    addr,
                    overlappable,
                })
            }
            _ => return Err(err("unknown record kind")),
        };
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        Ok(TraceRecord { core, op })
    }

    /// Collects all remaining records.
    ///
    /// Convenient for tests and small traces; replay uses the streaming
    /// [`TraceStream`] instead, which holds only undelivered records in
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates the first read error.
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(record) = self.read()? {
            out.push(record);
        }
        Ok(out)
    }
}

/// A streaming per-core op supply over a trace — the replay-side counterpart
/// of [`crate::CoreStream`].
///
/// The stream is bound to a core count at attach time: every record's core
/// index is validated against that bound as it is read, so a trace captured
/// on (or hand-written for) a different topology fails with a clear error
/// instead of an out-of-bounds panic deep in the frontend.
///
/// Records are read from the source strictly in file order and buffered per
/// core only until the owning core consumes them, so memory stays bounded by
/// the consumption skew between cores (zero for traces captured by the
/// simulator itself, whose record order *is* the consumption order) — the
/// whole trace is never resident.
///
/// Once the trace is exhausted, every further request is answered with
/// [`TraceStream::EXHAUSTED_FILLER`], an effectively infinite compute burst
/// that parks the core without ever touching memory; replays that run longer
/// than the recording simply idle.
pub struct TraceStream {
    reader: Option<TraceReader<Box<dyn BufRead + Send>>>,
    /// Records read but not yet consumed, per core.
    pending: Vec<VecDeque<CoreOp>>,
    records_read: u64,
}

impl TraceStream {
    /// The op supplied for every request past the end of the trace: a
    /// compute burst long enough to out-last any realistic run, so a drained
    /// core idles (and fast-forwards) instead of starving the frontend.
    pub const EXHAUSTED_FILLER: CoreOp = CoreOp::Compute(u32::MAX);

    /// Attaches a trace `source` to a topology of `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new<R: BufRead + Send + 'static>(source: R, cores: usize) -> Self {
        assert!(cores > 0, "a trace stream needs at least one core");
        Self {
            reader: Some(TraceReader::new(Box::new(source) as Box<dyn BufRead + Send>)),
            pending: (0..cores).map(|_| VecDeque::new()).collect(),
            records_read: 0,
        }
    }

    /// Opens the trace file at `path` for a topology of `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, with the path named in the message.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn open(path: &Path, cores: usize) -> io::Result<Self> {
        let file = File::open(path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot open trace `{}`: {e}", path.display()),
            )
        })?;
        Ok(Self::new(BufReader::new(file), cores))
    }

    /// Number of cores the stream is bound to.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.pending.len()
    }

    /// Records read off the trace so far.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Whether the underlying trace has been read to its end.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.reader.is_none()
    }

    /// Supplies the next op of `core`, reading ahead through the trace (and
    /// buffering other cores' records) as needed. Returns
    /// [`TraceStream::EXHAUSTED_FILLER`] once `core`'s records are used up
    /// and the trace has ended.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors from the trace, and an
    /// [`io::ErrorKind::InvalidData`] error naming the offending line if a
    /// record's core index is outside the bound core count. Any error
    /// poisons the stream: buffered records are discarded and every
    /// subsequent request (from any core) gets the exhaustion filler, so a
    /// broken trace can never be half-consumed.
    ///
    /// # Panics
    ///
    /// Panics if `core` itself is outside the bound core count (a caller
    /// bug, not a trace defect).
    pub fn next_op(&mut self, core: usize) -> io::Result<CoreOp> {
        assert!(
            core < self.pending.len(),
            "core {core} outside the stream's {} bound cores",
            self.pending.len()
        );
        if let Some(op) = self.pending[core].pop_front() {
            return Ok(op);
        }
        loop {
            let Some(reader) = self.reader.as_mut() else {
                return Ok(Self::EXHAUSTED_FILLER);
            };
            match reader.read() {
                Err(e) => {
                    self.poison();
                    return Err(e);
                }
                Ok(None) => {
                    self.reader = None;
                    return Ok(Self::EXHAUSTED_FILLER);
                }
                Ok(Some(record)) => {
                    if record.core >= self.pending.len() {
                        let line = reader.line();
                        let cores = self.pending.len();
                        self.poison();
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "trace line {line}: core {} out of range ({cores} cores bound)",
                                record.core,
                            ),
                        ));
                    }
                    self.records_read += 1;
                    if record.core == core {
                        return Ok(record.op);
                    }
                    self.pending[record.core].push_back(record.op);
                }
            }
        }
    }

    /// Drops the reader and all buffered records: every further request is
    /// answered with the exhaustion filler.
    fn poison(&mut self) {
        self.reader = None;
        for queue in &mut self.pending {
            queue.clear();
        }
    }
}

impl fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceStream")
            .field("cores", &self.pending.len())
            .field("records_read", &self.records_read)
            .field("exhausted", &self.is_exhausted())
            .field(
                "pending",
                &self.pending.iter().map(VecDeque::len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CoreStream, WorkloadStreams};
    use crate::mix::{MixSpec, TenantSpec};
    use crate::spec::Workload;

    #[test]
    fn round_trip_preserves_records() {
        let mut stream = CoreStream::new(Workload::TpcC1.spec(), 0, 17);
        let records: Vec<TraceRecord> = (0..500)
            .map(|_| TraceRecord {
                core: 0,
                op: stream.next_op(),
            })
            .collect();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.records(), 500);
        let bytes = writer.finish().unwrap();
        let mut reader = TraceReader::new(bytes.as_slice());
        let back = reader.read_all().unwrap();
        assert_eq!(back, records);
    }

    /// Every workload's generated stream survives the text round trip
    /// losslessly, as does a 4-tenant mix interleaving all of its cores.
    #[test]
    fn round_trip_property_across_workloads_and_mixes() {
        for w in Workload::all() {
            let mut stream = CoreStream::new(w.spec(), 0, 23);
            let records: Vec<TraceRecord> = (0..400)
                .map(|_| TraceRecord {
                    core: 0,
                    op: stream.next_op(),
                })
                .collect();
            let mut writer = TraceWriter::new(Vec::new());
            for r in &records {
                writer.write(r).unwrap();
            }
            let bytes = writer.finish().unwrap();
            let back = TraceReader::new(bytes.as_slice()).read_all().unwrap();
            assert_eq!(back, records, "{w}: trace round trip must be lossless");
        }
        // A 4-tenant mix: interleave ops from every core round-robin, the
        // way the frontend consumes them.
        let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 2))
            .and(TenantSpec::batch(Workload::TpchQ6, 2))
            .and(TenantSpec::batch(Workload::TpcC1, 2))
            .and(TenantSpec::batch(Workload::MapReduce, 2));
        let mut streams = WorkloadStreams::from_mix(mix, 31);
        let cores = streams.cores();
        let mut records = Vec::new();
        for round in 0..200 {
            for core in 0..cores {
                let _ = round;
                records.push(TraceRecord {
                    core,
                    op: streams.stream_mut(core).next_op(),
                });
            }
        }
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.write(r).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let back = TraceReader::new(bytes.as_slice()).read_all().unwrap();
        assert_eq!(back, records, "4-tenant mix trace must round trip");
        // And the streaming replay path hands every core its own sequence
        // in order.
        let mut replay = TraceStream::new(std::io::Cursor::new(bytes), cores);
        for round in 0..200 {
            for core in 0..cores {
                let expected = records[round * cores + core].op;
                assert_eq!(replay.next_op(core).unwrap(), expected);
            }
        }
        assert_eq!(replay.records_read(), records.len() as u64);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n0 C 10\n1 L 4f00 1\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let records = reader.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, CoreOp::Compute(10));
        assert_eq!(
            records[1].op,
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr: 0x4f00,
                overlappable: true
            })
        );
        assert_eq!(records[1].core, 1);
        assert_eq!(reader.line(), 4);
    }

    #[test]
    fn crlf_lines_and_prefixed_addresses_parse() {
        let text = "# captured externally\r\n0 L 0x4f00 1\r\n1 S 0XABC0 0\r\n\r\n2 C 7\r\n";
        let records = TraceReader::new(text.as_bytes()).read_all().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0].op,
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr: 0x4f00,
                overlappable: true
            })
        );
        assert_eq!(
            records[1].op,
            CoreOp::Mem(MemOp {
                kind: OpKind::Store,
                addr: 0xabc0,
                overlappable: false
            })
        );
        assert_eq!(records[2].op, CoreOp::Compute(7));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let cases = [
            "0 X 1234 0",     // bad kind
            "0 L zz 0",       // bad address
            "0 L 0x 0",       // prefix with no digits
            "0 C",            // missing compute count
            "0 C ten",        // bad compute count
            "notanumber C 5", // bad core index
            "0 L 10 2",       // bad overlappable flag
            "0 L 10",         // truncated mid-record: flag missing
            "0 S abc0",       // truncated store, same
            "0 L 10 1 extra", // trailing fields
            "0",              // missing kind
        ];
        for case in cases {
            let mut reader = TraceReader::new(case.as_bytes());
            let e = reader.read().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "case `{case}`");
            assert!(e.to_string().contains("line 1"), "case `{case}`: {e}");
        }
    }

    /// Errors after skipped blank/comment/CRLF lines still name the actual
    /// 1-based file line of the offending record.
    #[test]
    fn line_numbers_count_skipped_lines() {
        let text = "# header\n\n0 C 5\r\n# more\n0 L zz 0\n";
        let mut reader = TraceReader::new(text.as_bytes());
        assert!(reader.read().unwrap().is_some()); // line 3
        let e = reader.read().unwrap_err();
        assert!(e.to_string().contains("line 5"), "{e}");
    }

    #[test]
    fn store_and_ifetch_kinds_round_trip() {
        let records = vec![
            TraceRecord {
                core: 3,
                op: CoreOp::Mem(MemOp {
                    kind: OpKind::Store,
                    addr: 0xabc0,
                    overlappable: false,
                }),
            },
            TraceRecord {
                core: 4,
                op: CoreOp::Mem(MemOp {
                    kind: OpKind::Ifetch,
                    addr: 0x2000_0040,
                    overlappable: false,
                }),
            },
        ];
        let mut w = TraceWriter::new(Vec::new());
        for r in &records {
            w.write(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = TraceReader::new(bytes.as_slice()).read_all().unwrap();
        assert_eq!(back, records);
    }

    /// Regression: `finish` must flush buffered sinks so tail records are
    /// never left to `Drop` (which swallows errors).
    #[test]
    fn finish_flushes_buffered_sinks() {
        use std::io::BufWriter;
        // A sink that counts the bytes actually delivered to it.
        #[derive(Debug, Default)]
        struct Counting(Vec<u8>);
        impl Write for Counting {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // A buffer far larger than the records, so nothing reaches the
        // underlying sink until a flush happens.
        let mut writer = TraceWriter::new(BufWriter::with_capacity(1 << 20, Counting::default()));
        for i in 0..100u64 {
            writer
                .write(&TraceRecord {
                    core: 0,
                    op: CoreOp::Compute(i as u32 + 1),
                })
                .unwrap();
        }
        let sink = writer.finish().unwrap();
        let inner = sink.into_inner().unwrap().0;
        let text = String::from_utf8(inner).unwrap();
        assert_eq!(
            text.lines().count(),
            100,
            "all tail records must be flushed"
        );
    }

    /// Regression: flush errors surface through `finish` instead of being
    /// swallowed.
    #[test]
    fn finish_propagates_flush_errors() {
        #[derive(Debug)]
        struct FailingFlush;
        impl Write for FailingFlush {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let mut writer = TraceWriter::new(FailingFlush);
        writer
            .write(&TraceRecord {
                core: 0,
                op: CoreOp::Compute(1),
            })
            .unwrap();
        let e = writer.finish().unwrap_err();
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn trace_stream_validates_core_bound_and_reports_line() {
        let text = "0 C 5\n7 L 4f00 1\n";
        let mut stream = TraceStream::new(text.as_bytes(), 4);
        assert_eq!(stream.next_op(0).unwrap(), CoreOp::Compute(5));
        let e = stream.next_op(0).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("core 7"), "{msg}");
        assert!(msg.contains("4 cores"), "{msg}");
    }

    /// An error poisons the stream: buffered records are discarded and every
    /// later request — any core — gets the exhaustion filler, never `Err`
    /// again and never a half-consumed record.
    #[test]
    fn trace_stream_errors_poison_the_stream() {
        let text = "1 C 2\n0 L zz 0\n1 C 3\n";
        let mut stream = TraceStream::new(text.as_bytes(), 2);
        // Core 0's first request buffers core 1's record, then hits the
        // malformed line.
        assert!(stream.next_op(0).is_err());
        assert!(stream.is_exhausted());
        assert_eq!(stream.next_op(0).unwrap(), TraceStream::EXHAUSTED_FILLER);
        assert_eq!(
            stream.next_op(1).unwrap(),
            TraceStream::EXHAUSTED_FILLER,
            "buffered records must not survive a poisoning error"
        );
    }

    #[test]
    fn trace_stream_buffers_out_of_order_cores_and_fills_after_eof() {
        let text = "1 C 2\n1 C 3\n0 C 4\n";
        let mut stream = TraceStream::new(text.as_bytes(), 2);
        // Core 0 asks first: core 1's records are buffered while scanning.
        assert_eq!(stream.next_op(0).unwrap(), CoreOp::Compute(4));
        assert_eq!(stream.next_op(1).unwrap(), CoreOp::Compute(2));
        assert_eq!(stream.next_op(1).unwrap(), CoreOp::Compute(3));
        assert_eq!(stream.records_read(), 3);
        // Trace drained: both cores idle on the filler burst.
        assert_eq!(stream.next_op(1).unwrap(), TraceStream::EXHAUSTED_FILLER);
        assert!(stream.is_exhausted());
        assert_eq!(stream.next_op(0).unwrap(), TraceStream::EXHAUSTED_FILLER);
    }

    #[test]
    fn workload_source_defaults_to_synthetic() {
        assert_eq!(WorkloadSource::default(), WorkloadSource::Synthetic);
        let trace = WorkloadSource::Trace(PathBuf::from("/tmp/x.trace"));
        assert_ne!(trace, WorkloadSource::Synthetic);
    }
}
