//! Recording and replaying instruction streams.
//!
//! Traces make experiments exactly reproducible across machines and make it
//! possible to feed externally captured access streams (e.g. from a real
//! profiler) into the simulator. The format is a simple line-oriented text
//! format, one record per line:
//!
//! ```text
//! <core> C <count>            # compute burst
//! <core> L|S|I <hex addr> <0|1>  # load/store/ifetch, overlappable flag
//! ```

use std::io::{self, BufRead, Write};

use cloudmc_cpu::{CoreOp, MemOp, OpKind};

/// One trace record: which core executed which instruction-stream slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Core index.
    pub core: usize,
    /// The instruction-stream slot.
    pub op: CoreOp,
}

/// Writes trace records to any [`Write`] sink.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> Self {
        Self { sink, records: 0 }
    }

    /// Number of records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn write(&mut self, record: &TraceRecord) -> io::Result<()> {
        match record.op {
            CoreOp::Compute(n) => writeln!(self.sink, "{} C {}", record.core, n)?,
            CoreOp::Mem(op) => {
                let kind = match op.kind {
                    OpKind::Load => 'L',
                    OpKind::Store => 'S',
                    OpKind::Ifetch => 'I',
                };
                writeln!(
                    self.sink,
                    "{} {} {:x} {}",
                    record.core,
                    kind,
                    op.addr,
                    u8::from(op.overlappable)
                )?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Finishes writing and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads trace records from any [`BufRead`] source.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    source: R,
    line: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Creates a reader over `source`.
    pub fn new(source: R) -> Self {
        Self { source, line: 0 }
    }

    /// Reads the next record, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures or malformed lines (the error
    /// message includes the 1-based line number).
    pub fn read(&mut self) -> io::Result<Option<TraceRecord>> {
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.source.read_line(&mut buf)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            let trimmed = buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return self.parse(trimmed).map(Some);
        }
    }

    fn parse(&self, line: &str) -> io::Result<TraceRecord> {
        let err = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {msg}: `{line}`", self.line),
            )
        };
        let mut parts = line.split_whitespace();
        let core: usize = parts
            .next()
            .ok_or_else(|| err("missing core"))?
            .parse()
            .map_err(|_| err("bad core index"))?;
        let kind = parts.next().ok_or_else(|| err("missing kind"))?;
        let op = match kind {
            "C" => {
                let n: u32 = parts
                    .next()
                    .ok_or_else(|| err("missing compute count"))?
                    .parse()
                    .map_err(|_| err("bad compute count"))?;
                CoreOp::Compute(n)
            }
            "L" | "S" | "I" => {
                let addr =
                    u64::from_str_radix(parts.next().ok_or_else(|| err("missing address"))?, 16)
                        .map_err(|_| err("bad address"))?;
                let overlappable = match parts.next() {
                    Some("1") => true,
                    Some("0") | None => false,
                    Some(_) => return Err(err("bad overlappable flag")),
                };
                let kind = match kind {
                    "L" => OpKind::Load,
                    "S" => OpKind::Store,
                    _ => OpKind::Ifetch,
                };
                CoreOp::Mem(MemOp {
                    kind,
                    addr,
                    overlappable,
                })
            }
            _ => return Err(err("unknown record kind")),
        };
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        Ok(TraceRecord { core, op })
    }

    /// Collects all remaining records.
    ///
    /// # Errors
    ///
    /// Propagates the first read error.
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(record) = self.read()? {
            out.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CoreStream;
    use crate::spec::Workload;

    #[test]
    fn round_trip_preserves_records() {
        let mut stream = CoreStream::new(Workload::TpcC1.spec(), 0, 17);
        let records: Vec<TraceRecord> = (0..500)
            .map(|_| TraceRecord {
                core: 0,
                op: stream.next_op(),
            })
            .collect();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.records(), 500);
        let bytes = writer.finish().unwrap();
        let mut reader = TraceReader::new(bytes.as_slice());
        let back = reader.read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n0 C 10\n1 L 4f00 1\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let records = reader.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, CoreOp::Compute(10));
        assert_eq!(
            records[1].op,
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr: 0x4f00,
                overlappable: true
            })
        );
        assert_eq!(records[1].core, 1);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let cases = [
            "0 X 1234 0",
            "0 L zz 0",
            "0 C",
            "notanumber C 5",
            "0 L 10 2",
            "0 L 10 1 extra",
        ];
        for case in cases {
            let mut reader = TraceReader::new(case.as_bytes());
            let e = reader.read().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "case `{case}`");
            assert!(e.to_string().contains("line 1"), "case `{case}`: {e}");
        }
    }

    #[test]
    fn store_and_ifetch_kinds_round_trip() {
        let records = vec![
            TraceRecord {
                core: 3,
                op: CoreOp::Mem(MemOp {
                    kind: OpKind::Store,
                    addr: 0xabc0,
                    overlappable: false,
                }),
            },
            TraceRecord {
                core: 4,
                op: CoreOp::Mem(MemOp {
                    kind: OpKind::Ifetch,
                    addr: 0x2000_0040,
                    overlappable: false,
                }),
            },
        ];
        let mut w = TraceWriter::new(Vec::new());
        for r in &records {
            w.write(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = TraceReader::new(bytes.as_slice()).read_all().unwrap();
        assert_eq!(back, records);
    }
}
