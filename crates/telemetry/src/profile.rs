//! Kernel self-profiler: where host time goes inside a simulation kernel.

/// A kernel phase the profiler attributes host time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPhase {
    /// CPU-core frontend work: instruction-stream ticks, lazy-frontend
    /// advances, and fill delivery.
    Frontend,
    /// Memory-controller backend work: DRAM-clock ticks across all shards
    /// (includes the clock-crossing barrier, reported separately too).
    Backend,
    /// Event-queue / horizon maintenance: computing the next event bound
    /// and applying bulk jumps.
    EventQueue,
    /// Time the backend spent waiting on the sharded worker-pool
    /// clock-crossing barrier (a subset of [`Backend`](Self::Backend)
    /// time; zero in single-threaded runs).
    Barrier,
}

/// Accumulating side of the kernel self-profiler.
///
/// The simulator owns one of these (when `TelemetryConfig::profile_kernel`
/// is set) and feeds it wall-clock nanoseconds per phase plus simulated
/// cycle counts; [`finish`](Self::finish) freezes it into a
/// [`KernelProfile`] report. Wall-clock numbers are host measurements and
/// therefore *not* deterministic — only the simulated-cycle fields are
/// comparable across runs.
#[derive(Clone, Debug, Default)]
pub struct KernelProfiler {
    frontend_nanos: u64,
    backend_nanos: u64,
    event_queue_nanos: u64,
    barrier_nanos: u64,
    total_nanos: u64,
    stepped_cpu_cycles: u64,
    jumped_cpu_cycles: u64,
}

impl KernelProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` of host time to `phase`.
    pub fn record(&mut self, phase: KernelPhase, nanos: u64) {
        match phase {
            KernelPhase::Frontend => self.frontend_nanos += nanos,
            KernelPhase::Backend => self.backend_nanos += nanos,
            KernelPhase::EventQueue => self.event_queue_nanos += nanos,
            KernelPhase::Barrier => self.barrier_nanos += nanos,
        }
    }

    /// Adds `nanos` of host time to the run total (covers phase time plus
    /// unattributed glue).
    pub fn record_total(&mut self, nanos: u64) {
        self.total_nanos += nanos;
    }

    /// Accounts CPU cycles simulated by stepping individual cycles.
    pub fn record_stepped_cycles(&mut self, cycles: u64) {
        self.stepped_cpu_cycles += cycles;
    }

    /// Accounts CPU cycles skipped in bulk by a horizon or event-queue jump.
    pub fn record_jumped_cycles(&mut self, cycles: u64) {
        self.jumped_cpu_cycles += cycles;
    }

    /// Freezes the accumulated accounting into a report.
    ///
    /// `cpu_cycles` and `dram_cycles` are the run's final simulated clock
    /// readings; `barrier_nanos` measured outside this profiler (e.g. by
    /// the backend worker pool) can be folded in beforehand via
    /// [`record`](Self::record).
    #[must_use]
    pub fn finish(&self, cpu_cycles: u64, dram_cycles: u64) -> KernelProfile {
        KernelProfile {
            frontend_nanos: self.frontend_nanos,
            backend_nanos: self.backend_nanos,
            event_queue_nanos: self.event_queue_nanos,
            barrier_nanos: self.barrier_nanos,
            total_nanos: self.total_nanos,
            stepped_cpu_cycles: self.stepped_cpu_cycles,
            jumped_cpu_cycles: self.jumped_cpu_cycles,
            cpu_cycles,
            dram_cycles,
        }
    }
}

/// Finished kernel-profile report: host nanoseconds per phase and the
/// simulated-cycle totals they covered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Host time in the CPU frontend phase.
    pub frontend_nanos: u64,
    /// Host time in the memory-controller backend phase.
    pub backend_nanos: u64,
    /// Host time computing event bounds and applying jumps.
    pub event_queue_nanos: u64,
    /// Host time waiting on the worker-pool clock-crossing barrier (subset
    /// of `backend_nanos`).
    pub barrier_nanos: u64,
    /// Host time for the whole run loop (phases plus glue).
    pub total_nanos: u64,
    /// CPU cycles simulated by stepping individual cycles.
    pub stepped_cpu_cycles: u64,
    /// CPU cycles advanced in bulk by horizon/event jumps.
    pub jumped_cpu_cycles: u64,
    /// Final simulated CPU-clock reading.
    pub cpu_cycles: u64,
    /// Final simulated DRAM-clock reading.
    pub dram_cycles: u64,
}

impl KernelProfile {
    /// Fraction of total host time spent in `phase` (0 when no time was
    /// recorded).
    #[must_use]
    pub fn fraction(&self, phase: KernelPhase) -> f64 {
        if self.total_nanos == 0 {
            return 0.0;
        }
        let nanos = match phase {
            KernelPhase::Frontend => self.frontend_nanos,
            KernelPhase::Backend => self.backend_nanos,
            KernelPhase::EventQueue => self.event_queue_nanos,
            KernelPhase::Barrier => self.barrier_nanos,
        };
        nanos as f64 / self.total_nanos as f64
    }

    /// Simulated CPU cycles per host microsecond (0 when no time was
    /// recorded).
    #[must_use]
    pub fn cycles_per_host_micro(&self) -> f64 {
        if self.total_nanos == 0 {
            return 0.0;
        }
        self.cpu_cycles as f64 * 1000.0 / self.total_nanos as f64
    }

    /// Encodes the profile as a JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"frontend_nanos\":{},\"backend_nanos\":{},",
                "\"event_queue_nanos\":{},\"barrier_nanos\":{},",
                "\"total_nanos\":{},\"stepped_cpu_cycles\":{},",
                "\"jumped_cpu_cycles\":{},\"cpu_cycles\":{},",
                "\"dram_cycles\":{}}}"
            ),
            self.frontend_nanos,
            self.backend_nanos,
            self.event_queue_nanos,
            self.barrier_nanos,
            self.total_nanos,
            self.stepped_cpu_cycles,
            self.jumped_cpu_cycles,
            self.cpu_cycles,
            self.dram_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_freeze() {
        let mut p = KernelProfiler::new();
        p.record(KernelPhase::Frontend, 100);
        p.record(KernelPhase::Frontend, 50);
        p.record(KernelPhase::Backend, 200);
        p.record(KernelPhase::EventQueue, 25);
        p.record(KernelPhase::Barrier, 10);
        p.record_total(400);
        p.record_stepped_cycles(800);
        p.record_jumped_cycles(200);
        let profile = p.finish(1000, 400);
        assert_eq!(profile.frontend_nanos, 150);
        assert_eq!(profile.backend_nanos, 200);
        assert_eq!(profile.event_queue_nanos, 25);
        assert_eq!(profile.barrier_nanos, 10);
        assert_eq!(profile.stepped_cpu_cycles + profile.jumped_cpu_cycles, 1000);
        assert_eq!(profile.cpu_cycles, 1000);
        assert_eq!(profile.dram_cycles, 400);
        assert!((profile.fraction(KernelPhase::Backend) - 0.5).abs() < 1e-12);
        assert!((profile.cycles_per_host_micro() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_reports_zero_fractions() {
        let profile = KernelProfiler::new().finish(0, 0);
        assert_eq!(profile.fraction(KernelPhase::Frontend), 0.0);
        assert_eq!(profile.cycles_per_host_micro(), 0.0);
    }

    #[test]
    fn json_has_stable_keys() {
        let json = KernelProfiler::new().finish(5, 2).to_json();
        for key in [
            "frontend_nanos",
            "backend_nanos",
            "event_queue_nanos",
            "barrier_nanos",
            "total_nanos",
            "stepped_cpu_cycles",
            "jumped_cpu_cycles",
            "cpu_cycles",
            "dram_cycles",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
    }
}
