//! Mergeable log2-bucket latency histograms.

/// Number of buckets in a [`LatencyHistogram`].
///
/// Bucket 0 holds the exact value 0; bucket `k >= 1` holds the half-open
/// power-of-two range `[2^(k-1), 2^k - 1]`, so bucket 64 tops out at
/// `u64::MAX` and every `u64` maps to exactly one bucket.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of `u64` samples (DRAM-cycle
/// latencies in practice).
///
/// The histogram is *mergeable*: [`merge`](Self::merge) is associative and
/// commutative, so per-channel histograms can be combined across shards in
/// any grouping and still produce identical aggregates — the property the
/// simulator's deterministic shard-order merges rely on. It is also
/// *subtractable*: [`delta`](Self::delta) recovers the histogram of a
/// measurement window from two cumulative observations.
///
/// All storage is fixed-size (no allocation), so histograms can live on the
/// simulator tick path without violating the telemetry-off no-allocation
/// invariant.
///
/// # Examples
///
/// ```
/// use cloudmc_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 40, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(400));
/// assert!(h.percentile(0.5).unwrap() <= h.percentile(0.99).unwrap());
/// assert_eq!(LatencyHistogram::new().percentile(0.5), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Index of the bucket `value` falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `(low, high)` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HIST_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HIST_BUCKETS, "bucket index {index} out of range");
        if index == 0 {
            (0, 0)
        } else if index == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (index - 1), (1 << index) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`.
    ///
    /// Associative and commutative: merging the same set of histograms in
    /// any grouping or order yields identical results.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Histogram of the samples recorded after `baseline` was observed.
    ///
    /// `baseline` must be an earlier observation of the same cumulative
    /// histogram (bucket counts element-wise `<=` ours); the subtraction
    /// saturates defensively otherwise. The exact maximum of a window is
    /// not recoverable from two cumulative maxima, so the delta's `max` is
    /// the tightest bound available: the smaller of the cumulative maximum
    /// and the upper edge of the highest bucket the window touched (a
    /// bucket-resolution bound, within 2x of the true window maximum).
    #[must_use]
    pub fn delta(&self, baseline: &Self) -> Self {
        let mut out = Self::new();
        let mut highest = None;
        for (i, slot) in out.counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(baseline.counts[i]);
            if *slot > 0 {
                highest = Some(i);
            }
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.sum = self.sum.saturating_sub(baseline.sum);
        out.max = match highest {
            Some(bucket) => self.max.min(Self::bucket_bounds(bucket).1),
            None => 0,
        };
        out
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample, or `None` for an empty histogram.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, or `None` for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated value at quantile `p` (`0.0 < p <= 1.0`), or `None` for an
    /// empty histogram or an out-of-range `p`.
    ///
    /// The estimate walks cumulative bucket counts to the bucket containing
    /// the rank `ceil(p * count)` sample and interpolates linearly (and
    /// deterministically) within the bucket's value range, biased toward the
    /// bucket's lower edge. Accuracy is bounded by the log2 bucket width.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 || !(p > 0.0 && p <= 1.0) {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cumulative + c >= rank {
                let position = rank - cumulative; // 1..=c
                let (lo, hi) = Self::bucket_bounds(i);
                let hi = hi.min(self.max); // never report above the exact max
                if hi <= lo {
                    return Some(lo as f64);
                }
                let span = (hi - lo) as f64;
                return Some(lo as f64 + span * ((position - 1) as f64 / c as f64));
            }
            cumulative += c;
        }
        // Unreachable: rank <= count and bucket counts sum to count.
        Some(self.max as f64)
    }

    /// Convenience: median ([`percentile`](Self::percentile) at 0.50).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// Convenience: 95th percentile.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.percentile(0.95)
    }

    /// Convenience: 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// Raw bucket counts, for serialization and inspection.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Rebuilds a histogram from serialized parts.
    ///
    /// Intended for deserialization of a histogram previously captured via
    /// [`bucket_counts`](Self::bucket_counts)/[`count`](Self::count)/
    /// [`sum`](Self::sum) and the raw maximum (`max().unwrap_or(0)`).
    /// Returns `None` when the parts are inconsistent (`count` does not
    /// equal the bucket total), so corrupted images surface as typed errors
    /// instead of silently skewed percentiles.
    #[must_use]
    pub fn from_parts(counts: [u64; HIST_BUCKETS], count: u64, sum: u64, max: u64) -> Option<Self> {
        let total: u64 = counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
        if total != count {
            return None;
        }
        Some(Self {
            counts,
            count,
            sum,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_values(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        for k in 1..64usize {
            let pow = 1u64 << k;
            // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
            assert_eq!(LatencyHistogram::bucket_index(pow), k + 1, "2^{k}");
            assert_eq!(LatencyHistogram::bucket_index(pow - 1), k, "2^{k}-1");
            let (lo, hi) = LatencyHistogram::bucket_bounds(k + 1);
            assert_eq!(lo, pow);
            if k + 1 < 64 {
                assert_eq!(hi, (pow << 1) - 1);
            }
        }
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(LatencyHistogram::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn boundary_values_round_trip_through_record() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, (1 << 13) - 1, 1 << 13, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[13], 1);
        assert_eq!(h.bucket_counts()[14], 1);
        assert_eq!(h.bucket_counts()[64], 1);
    }

    #[test]
    fn merge_is_commutative() {
        let a = from_values(&[1, 5, 9, 1000]);
        let b = from_values(&[0, 2, 2, 7, u64::MAX]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let a = from_values(&[3, 3, 70]);
        let b = from_values(&[0, 255, 256]);
        let c = from_values(&[1 << 40, 12]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_matches_recording_everything_in_one_histogram() {
        let a = from_values(&[4, 8, 15]);
        let b = from_values(&[16, 23, 42]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, from_values(&[4, 8, 15, 16, 23, 42]));
    }

    #[test]
    fn empty_histogram_returns_typed_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn out_of_range_quantile_is_none() {
        let h = from_values(&[1, 2, 3]);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.5), None);
        assert_eq!(h.percentile(-0.1), None);
        assert!(h.percentile(1.0).is_some());
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded_by_max() {
        let h = from_values(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 10_000]);
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max().unwrap() as f64);
    }

    #[test]
    fn single_value_histogram_reports_that_value() {
        let h = from_values(&[7, 7, 7, 7]);
        // All samples in one bucket [4,7]; interpolation stays within it and
        // the max clamp keeps estimates at or below the exact maximum.
        assert!(h.p50().unwrap() >= 4.0 && h.p50().unwrap() <= 7.0);
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.mean(), Some(7.0));
    }

    #[test]
    fn delta_recovers_window_and_bounds_max() {
        let mut h = from_values(&[5, 9]);
        let baseline = h.clone();
        h.record(100);
        h.record(3);
        let window = h.delta(&baseline);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 103);
        // 100 lives in bucket [64,127]; the cumulative max is also 100, so
        // the bound is exact here.
        assert_eq!(window.max(), Some(100));
        // An empty window has an empty delta.
        let empty = h.delta(&h);
        assert!(empty.is_empty());
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn delta_max_is_bucket_resolution_bound() {
        let mut h = from_values(&[1000]);
        let baseline = h.clone();
        h.record(70); // bucket [64,127], below the cumulative max 1000
        let window = h.delta(&baseline);
        assert_eq!(window.count(), 1);
        // True window max is 70; bound is the bucket's upper edge.
        assert_eq!(window.max(), Some(127));
    }

    #[test]
    fn from_parts_rejects_inconsistent_count() {
        let h = from_values(&[1, 2, 3]);
        let rebuilt = LatencyHistogram::from_parts(*h.bucket_counts(), h.count(), h.sum(), 3);
        assert_eq!(rebuilt, Some(h.clone()));
        assert_eq!(
            LatencyHistogram::from_parts(*h.bucket_counts(), h.count() + 1, h.sum(), 3),
            None
        );
    }
}
