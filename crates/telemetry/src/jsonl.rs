//! Minimal hand-rolled JSON-lines helpers (the workspace has no serde).
//!
//! Writers emit objects with a fixed key order; the readers here only need
//! to handle that same flat shape (scalars, strings, and arrays of numbers),
//! which keeps the dashboard example dependency-free.

/// Returns the raw text of `key`'s value inside a flat JSON object line.
pub(crate) fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('[') {
        let end = stripped.find(']')?;
        return Some(&stripped[..end]);
    }
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

/// Parses `key` as a `u64`.
pub(crate) fn field_u64(line: &str, key: &str) -> Option<u64> {
    raw_field(line, key)?.parse().ok()
}

/// Parses `key` as an `f64`.
pub(crate) fn field_f64(line: &str, key: &str) -> Option<f64> {
    raw_field(line, key)?.parse().ok()
}

/// Parses `key` as an array of `f64`s (empty array allowed).
pub(crate) fn field_f64_array(line: &str, key: &str) -> Option<Vec<f64>> {
    let raw = raw_field(line, key)?;
    if raw.trim().is_empty() {
        return Some(Vec::new());
    }
    raw.split(',').map(|s| s.trim().parse().ok()).collect()
}

/// Parses `key` as a quoted string.
pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// Formats an `f64` array as a JSON array literal.
pub(crate) fn f64_array(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_fields_parse_back() {
        let line = r#"{"cycle":42,"ipc":0.5,"share":[0.25,0.75],"kind":"read","tail":7}"#;
        assert_eq!(field_u64(line, "cycle"), Some(42));
        assert_eq!(field_f64(line, "ipc"), Some(0.5));
        assert_eq!(field_f64_array(line, "share"), Some(vec![0.25, 0.75]));
        assert_eq!(field_str(line, "kind"), Some("read"));
        assert_eq!(field_u64(line, "tail"), Some(7));
        assert_eq!(field_u64(line, "missing"), None);
    }

    #[test]
    fn empty_array_and_roundtrip() {
        assert_eq!(f64_array(&[]), "[]");
        assert_eq!(f64_array(&[1.5, 2.0]), "[1.5,2]");
        let line = r#"{"share":[]}"#;
        assert_eq!(field_f64_array(line, "share"), Some(vec![]));
    }
}
