//! Sampled request-lifecycle spans.

use crate::jsonl;

/// Direction of a traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanAccess {
    /// A demand or DMA read.
    Read,
    /// A write-back or DMA write.
    Write,
}

impl SpanAccess {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Read => "read",
            Self::Write => "write",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "read" => Some(Self::Read),
            "write" => Some(Self::Write),
            _ => None,
        }
    }
}

/// Row-buffer outcome of the service that completed a traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was idle; only an ACTIVATE was needed.
    Miss,
    /// A different row was open; PRECHARGE then ACTIVATE were needed.
    Conflict,
}

impl SpanOutcome {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Conflict => "conflict",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "hit" => Some(Self::Hit),
            "miss" => Some(Self::Miss),
            "conflict" => Some(Self::Conflict),
            _ => None,
        }
    }
}

/// One sampled request lifecycle: enqueue → first issue of the completing
/// service → row outcome → completion, with tenant/channel/retry tags.
///
/// All cycle fields are DRAM cycles. `issue` is the cycle the column command
/// of the *completing* service issued; for a request that needed ECC retries
/// it belongs to the final (successful) attempt, with the attempt count in
/// [`retries`](Self::retries).
///
/// Serialized as one compact JSON object per line via
/// [`to_jsonl`](Self::to_jsonl).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Simulation-unique request id (ids are minted in arrival order).
    pub id: u64,
    /// Read or write.
    pub access: SpanAccess,
    /// Requesting core (or DMA pseudo-core).
    pub core: usize,
    /// Tenant the request is attributed to.
    pub tenant: usize,
    /// Global channel index (across all controller shards).
    pub channel: usize,
    /// Cycle the request entered the controller queues.
    pub enqueue: u64,
    /// Cycle the completing service's column command issued.
    pub issue: u64,
    /// Cycle the data transfer finished.
    pub completion: u64,
    /// Row-buffer outcome of the completing service.
    pub outcome: SpanOutcome,
    /// ECC retry attempts before the completing service (0 for clean reads
    /// and all writes).
    pub retries: u32,
}

impl SpanRecord {
    /// End-to-end latency in DRAM cycles (enqueue to completion).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completion.saturating_sub(self.enqueue)
    }

    /// Cycles spent queued before the completing service issued.
    #[must_use]
    pub fn queue_delay(&self) -> u64 {
        self.issue.saturating_sub(self.enqueue)
    }

    /// Encodes the span as one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            concat!(
                "{{\"id\":{},\"kind\":\"{}\",\"core\":{},\"tenant\":{},",
                "\"channel\":{},\"enqueue\":{},\"issue\":{},\"completion\":{},",
                "\"outcome\":\"{}\",\"retries\":{}}}"
            ),
            self.id,
            self.access.as_str(),
            self.core,
            self.tenant,
            self.channel,
            self.enqueue,
            self.issue,
            self.completion,
            self.outcome.as_str(),
            self.retries,
        )
    }

    /// Parses a line produced by [`to_jsonl`](Self::to_jsonl); `None` when
    /// any field is missing or malformed.
    #[must_use]
    pub fn from_jsonl(line: &str) -> Option<Self> {
        Some(Self {
            id: jsonl::field_u64(line, "id")?,
            access: SpanAccess::from_str(jsonl::field_str(line, "kind")?)?,
            core: jsonl::field_u64(line, "core")? as usize,
            tenant: jsonl::field_u64(line, "tenant")? as usize,
            channel: jsonl::field_u64(line, "channel")? as usize,
            enqueue: jsonl::field_u64(line, "enqueue")?,
            issue: jsonl::field_u64(line, "issue")?,
            completion: jsonl::field_u64(line, "completion")?,
            outcome: SpanOutcome::from_str(jsonl::field_str(line, "outcome")?)?,
            retries: jsonl::field_u64(line, "retries")? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> SpanRecord {
        SpanRecord {
            id: 4096,
            access: SpanAccess::Read,
            core: 3,
            tenant: 1,
            channel: 5,
            enqueue: 1000,
            issue: 1022,
            completion: 1037,
            outcome: SpanOutcome::Conflict,
            retries: 2,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let s = span();
        assert_eq!(SpanRecord::from_jsonl(&s.to_jsonl()), Some(s));
    }

    #[test]
    fn derived_delays() {
        let s = span();
        assert_eq!(s.latency(), 37);
        assert_eq!(s.queue_delay(), 22);
    }

    #[test]
    fn bad_outcome_or_kind_is_none() {
        let line = span().to_jsonl().replace("conflict", "explosion");
        assert_eq!(SpanRecord::from_jsonl(&line), None);
        let line = span().to_jsonl().replace("\"read\"", "\"scan\"");
        assert_eq!(SpanRecord::from_jsonl(&line), None);
    }
}
