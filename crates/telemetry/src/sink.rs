//! File sinks for telemetry output.
//!
//! The simulation crates never touch the filesystem (`simlint` rule
//! `io-access`): anything that turns telemetry records into files lives
//! here, behind a typed `io::Result`.

use std::io::Write as _;
use std::path::Path;

/// Writes one JSON-lines file: each item becomes one line. The file is
/// created (or truncated) atomically with respect to partial content — the
/// whole body is buffered before the single write.
///
/// # Errors
///
/// Propagates the underlying I/O error on create/write failure.
pub fn write_jsonl_file<I, S>(path: &Path, lines: I) -> std::io::Result<()>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut body = String::new();
    for line in lines {
        body.push_str(line.as_ref());
        body.push('\n');
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_written_one_per_record() {
        let dir = std::env::temp_dir().join("cloudmc_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        write_jsonl_file(&path, ["{\"a\":1}", "{\"a\":2}"]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        std::fs::remove_file(&path).ok();
    }
}
