//! Observability primitives for the `cloudmc` simulator.
//!
//! This crate is a dependency leaf (std only) providing the data types the
//! rest of the workspace threads telemetry through:
//!
//! - [`LatencyHistogram`] — mergeable log2-bucket histograms used for
//!   read-latency tails (p50/p95/p99/max) per channel and per tenant.
//! - [`TelemetryConfig`] — knob block embedded in the simulator's
//!   `SystemConfig` selecting which telemetry layers are active.
//! - [`TelemetrySample`] — one windowed-delta sample of an interval
//!   time-series, serialized as compact JSON-lines.
//! - [`SpanRecord`] — one sampled request-lifecycle span
//!   (enqueue → first issue → row outcome → completion).
//! - [`KernelProfiler`] / [`KernelProfile`] — wall-clock and simulated-cycle
//!   accounting per kernel phase.
//!
//! Everything here is deterministic: histograms merge associatively and
//! commutatively, samples and spans carry only values derived from simulator
//! counters, and all JSON encoding is hand-rolled with stable key order so
//! byte-for-byte comparison across kernels and thread counts is meaningful.

#![forbid(unsafe_code)]

mod config;
mod hist;
mod jsonl;
mod profile;
mod series;
mod sink;
mod span;

pub use config::TelemetryConfig;
pub use hist::{LatencyHistogram, HIST_BUCKETS};
pub use profile::{KernelPhase, KernelProfile, KernelProfiler};
pub use series::TelemetrySample;
pub use sink::write_jsonl_file;
pub use span::{SpanAccess, SpanOutcome, SpanRecord};
