//! Interval time-series samples.

use crate::jsonl;

/// One windowed-delta sample of the interval time-series.
///
/// Every field except [`cycle`](Self::cycle) describes the window *ending*
/// at `cycle` (deltas or window averages, never cumulative totals), so a
/// series plots directly as a trajectory. Samples are taken at every
/// multiple of the configured interval, on exact CPU-cycle boundaries under
/// all three simulation kernels and any thread count, which makes two
/// series from equivalent runs comparable element by element.
///
/// Serialized as one compact JSON object per line via
/// [`to_jsonl`](Self::to_jsonl); parsed back with
/// [`from_jsonl`](Self::from_jsonl).
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// CPU cycle at the end of the window (a multiple of the interval).
    pub cycle: u64,
    /// Committed user instructions per CPU cycle over the window.
    pub ipc: f64,
    /// Demand reads completed in the window.
    pub reads_completed: u64,
    /// Writes completed in the window.
    pub writes_completed: u64,
    /// Mean demand-read latency over the window, in DRAM cycles (0 when no
    /// reads completed).
    pub avg_read_latency: f64,
    /// Row-buffer hit fraction of requests serviced in the window.
    pub row_hit_rate: f64,
    /// Mean read-queue occupancy over the window (all channels).
    pub avg_read_queue: f64,
    /// Fraction of the window's completed requests belonging to each tenant
    /// (empty in single-tenant runs; sums to 1 when any request completed).
    pub bandwidth_share: Vec<f64>,
    /// Fraction of rank-cycles spent powered down in the window.
    pub power_down_fraction: f64,
    /// Reliability events (corrected + uncorrectable + retries) in the
    /// window.
    pub reliability_events: u64,
}

impl TelemetrySample {
    /// Encodes the sample as one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            concat!(
                "{{\"cycle\":{},\"ipc\":{},\"reads_completed\":{},",
                "\"writes_completed\":{},\"avg_read_latency\":{},",
                "\"row_hit_rate\":{},\"avg_read_queue\":{},",
                "\"bandwidth_share\":{},\"power_down_fraction\":{},",
                "\"reliability_events\":{}}}"
            ),
            self.cycle,
            self.ipc,
            self.reads_completed,
            self.writes_completed,
            self.avg_read_latency,
            self.row_hit_rate,
            self.avg_read_queue,
            jsonl::f64_array(&self.bandwidth_share),
            self.power_down_fraction,
            self.reliability_events,
        )
    }

    /// Parses a line produced by [`to_jsonl`](Self::to_jsonl); `None` when
    /// any field is missing or malformed.
    #[must_use]
    pub fn from_jsonl(line: &str) -> Option<Self> {
        Some(Self {
            cycle: jsonl::field_u64(line, "cycle")?,
            ipc: jsonl::field_f64(line, "ipc")?,
            reads_completed: jsonl::field_u64(line, "reads_completed")?,
            writes_completed: jsonl::field_u64(line, "writes_completed")?,
            avg_read_latency: jsonl::field_f64(line, "avg_read_latency")?,
            row_hit_rate: jsonl::field_f64(line, "row_hit_rate")?,
            avg_read_queue: jsonl::field_f64(line, "avg_read_queue")?,
            bandwidth_share: jsonl::field_f64_array(line, "bandwidth_share")?,
            power_down_fraction: jsonl::field_f64(line, "power_down_fraction")?,
            reliability_events: jsonl::field_u64(line, "reliability_events")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySample {
        TelemetrySample {
            cycle: 50_000,
            ipc: 0.875,
            reads_completed: 1234,
            writes_completed: 56,
            avg_read_latency: 41.25,
            row_hit_rate: 0.625,
            avg_read_queue: 3.5,
            bandwidth_share: vec![0.5, 0.25, 0.25],
            power_down_fraction: 0.125,
            reliability_events: 2,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let s = sample();
        let line = s.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert_eq!(TelemetrySample::from_jsonl(&line), Some(s));
    }

    #[test]
    fn single_tenant_empty_share_round_trips() {
        let s = TelemetrySample {
            bandwidth_share: Vec::new(),
            ..sample()
        };
        assert_eq!(TelemetrySample::from_jsonl(&s.to_jsonl()), Some(s));
    }

    #[test]
    fn malformed_line_is_none() {
        assert_eq!(TelemetrySample::from_jsonl("{\"cycle\":1}"), None);
        assert_eq!(TelemetrySample::from_jsonl("not json"), None);
    }
}
