//! Telemetry configuration block.

use std::path::PathBuf;

/// Which telemetry layers a simulation runs with.
///
/// Embedded in the simulator's `SystemConfig` as the `telemetry` field; the
/// default is everything off, which the simulator guarantees costs nothing
/// on the tick path and leaves `SimStats` bit-identical.
///
/// # Examples
///
/// ```
/// use cloudmc_telemetry::TelemetryConfig;
///
/// let cfg = TelemetryConfig {
///     sample_interval: 10_000,
///     span_sample_every: 64,
///     ..TelemetryConfig::default()
/// };
/// assert!(cfg.is_active());
/// assert!(TelemetryConfig::default().validate().is_ok());
/// assert!(!TelemetryConfig::default().is_active());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Interval-time-series sample period in CPU cycles; `0` disables the
    /// time series. Samples are taken at every multiple of the interval
    /// (warmup included), on exact cycles under every kernel.
    pub sample_interval: u64,
    /// Optional JSON-lines file the time series is written to when the run
    /// finishes (one [`TelemetrySample`](crate::TelemetrySample) per line).
    pub series_path: Option<PathBuf>,
    /// Span-trace sampling period in request ids; `0` disables tracing.
    /// A request is traced when `id % span_sample_every == 0`, which is
    /// deterministic across kernels and thread counts because ids are
    /// minted in arrival order.
    pub span_sample_every: u64,
    /// Optional JSON-lines file sampled spans are written to when the run
    /// finishes (one [`SpanRecord`](crate::SpanRecord) per line).
    pub span_path: Option<PathBuf>,
    /// Enables the kernel self-profiler (wall-clock and simulated-cycle
    /// accounting per kernel phase).
    pub profile_kernel: bool,
}

impl TelemetryConfig {
    /// Everything off (the default).
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// `true` when the interval time-series is enabled.
    #[must_use]
    pub fn series_enabled(&self) -> bool {
        self.sample_interval > 0
    }

    /// `true` when span tracing is enabled.
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.span_sample_every > 0
    }

    /// `true` when any telemetry layer is active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.series_enabled() || self.spans_enabled() || self.profile_kernel
    }

    /// Checks internal consistency, returning a human-readable reason on
    /// failure (an output path without its producing layer enabled).
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.series_path.is_some() && !self.series_enabled() {
            return Err(
                "telemetry series_path set but sample_interval is 0 (time series disabled)".into(),
            );
        }
        if self.span_path.is_some() && !self.spans_enabled() {
            return Err(
                "telemetry span_path set but span_sample_every is 0 (span tracing disabled)".into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off_and_valid() {
        let cfg = TelemetryConfig::off();
        assert!(!cfg.is_active());
        assert!(!cfg.series_enabled());
        assert!(!cfg.spans_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn orphan_output_paths_fail_validation() {
        let cfg = TelemetryConfig {
            series_path: Some("series.jsonl".into()),
            ..TelemetryConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("series_path"));
        let cfg = TelemetryConfig {
            span_path: Some("spans.jsonl".into()),
            ..TelemetryConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("span_path"));
    }

    #[test]
    fn each_layer_activates_independently() {
        for cfg in [
            TelemetryConfig {
                sample_interval: 1,
                ..TelemetryConfig::default()
            },
            TelemetryConfig {
                span_sample_every: 1,
                ..TelemetryConfig::default()
            },
            TelemetryConfig {
                profile_kernel: true,
                ..TelemetryConfig::default()
            },
        ] {
            assert!(cfg.is_active(), "{cfg:?}");
            assert!(cfg.validate().is_ok());
        }
    }
}
