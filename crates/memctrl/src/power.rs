//! DRAM power-management policies.
//!
//! The power policy decides when a quiescent rank drops CKE and how deep it
//! goes (fast-exit power-down, slow-exit power-down, self-refresh). It is the
//! counterpart of the page policy one level up: the page policy manages the
//! row buffer of a bank, the power policy manages the clock-enable pin of a
//! whole rank. The controller consults it only on cycles where nothing else
//! issued, and wakes powered-down ranks itself when demand arrives
//! (a request is enqueued) or a refresh comes due.
//!
//! Like [`PagePolicy::propose_precharge`](crate::page::PagePolicy), proposals
//! must be pure functions of the [`PolicyView`]: the simulation kernel
//! consults them when computing the event horizon it may fast-forward to, so
//! a hidden mutation would make skipped idle cycles observable. Policies
//! whose proposals flip with the passage of time must report the flip cycle
//! through [`PowerPolicy::next_wake`].

use cloudmc_dram::{DramCycles, PowerDownMode, PowerState};

use crate::page::PolicyView;

/// An action proposed by a power policy for one otherwise-idle cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerAction {
    /// Drop CKE of `rank`, entering (or deepening into) `mode`.
    PowerDown {
        /// Rank to power down.
        rank: usize,
        /// Target low-power state.
        mode: PowerDownMode,
    },
    /// Close the open row of (`rank`, `bank`) so the rank can reach
    /// power-down (proposed only by the power-aware policy, and only for
    /// rows the page policy has chosen to leave open).
    Precharge {
        /// Rank of the bank to close.
        rank: usize,
        /// Bank whose open row should be precharged.
        bank: usize,
    },
}

/// A rank power-management policy.
pub trait PowerPolicy: std::fmt::Debug + Send {
    /// Short human-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Proposes one power action, or `None` to leave every rank as it is.
    ///
    /// Takes `&self`: proposals must be pure functions of the view (see the
    /// module docs). A returned [`PowerAction::PowerDown`] must already be
    /// legal (`DramChannel::can_enter_power_down` holds at `view.now`).
    fn propose(&self, view: &PolicyView<'_>) -> Option<PowerAction>;

    /// Earliest future cycle at which [`PowerPolicy::propose`] could start
    /// returning `Some`, assuming the device state and pending queues stay
    /// exactly as in `view`. `None` means "never under a frozen state".
    /// Consulted only when `propose` currently returns `None`; conservative
    /// (earlier) answers are always safe, later ones break the fast-forward.
    fn next_wake(&self, _view: &PolicyView<'_>) -> Option<DramCycles> {
        None
    }

    /// Called when demand activity touches `rank`: a command issues to it or
    /// a request targeting it is enqueued. Refresh does not count — idle
    /// timers measure time since the last *demand*, so periodic refresh
    /// cannot keep a rank from ever reaching the deeper states.
    fn on_activity(&mut self, _rank: usize, _now: DramCycles) {}
}

/// Identifier for constructing power policies by name (used by the
/// experiment harness to sweep policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerPolicyKind {
    /// No power management: ranks never leave standby (the paper's implicit
    /// baseline, and this crate's default).
    None,
    /// Enter fast-exit power-down as soon as a rank quiesces.
    Immediate,
    /// Escalating idle timer: fast power-down, then slow, then self-refresh
    /// as the rank stays idle longer.
    IdleTimer,
    /// Idle timer that additionally closes rows left open by the page
    /// policy once they have idled long enough, so ranks can actually reach
    /// power-down under open-page-leaning policies.
    PowerAware,
}

impl PowerPolicyKind {
    /// Every implemented policy, in sweep order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::None,
            Self::Immediate,
            Self::IdleTimer,
            Self::PowerAware,
        ]
    }

    /// Instantiates the policy for a channel with `ranks` ranks.
    #[must_use]
    pub fn build(self, ranks: usize) -> Box<dyn PowerPolicy> {
        match self {
            Self::None => Box::new(NoPowerManagement),
            // simlint: allow(panic) timeout_policy is Some for every non-None kind, matched above
            other => Box::new(other.timeout_policy(ranks).expect("non-none kind")),
        }
    }

    /// Instantiates the policy as a devirtualized [`PowerPolicyImpl`] — the
    /// form the controller keeps on its per-tick hot path.
    #[must_use]
    pub fn build_impl(self, ranks: usize) -> PowerPolicyImpl {
        match self.timeout_policy(ranks) {
            Some(policy) => PowerPolicyImpl::Timeout(policy),
            None => PowerPolicyImpl::None(NoPowerManagement),
        }
    }

    fn timeout_policy(self, ranks: usize) -> Option<TimeoutPowerDown> {
        match self {
            Self::None => None,
            Self::Immediate => Some(TimeoutPowerDown::new(
                "immediate",
                ranks,
                PowerTimeouts::immediate(),
                None,
            )),
            Self::IdleTimer => Some(TimeoutPowerDown::new(
                "idle-timer",
                ranks,
                PowerTimeouts::idle_timer(),
                None,
            )),
            Self::PowerAware => Some(TimeoutPowerDown::new(
                "power-aware",
                ranks,
                PowerTimeouts::idle_timer(),
                Some(POWER_AWARE_PRECHARGE_AFTER),
            )),
        }
    }
}

/// Enum-dispatched power policy: the built-in policies as concrete variants
/// (all three timeout flavours share [`TimeoutPowerDown`]), so the
/// controller's per-tick consultations compile to direct calls instead of
/// virtual dispatch through a `Box<dyn PowerPolicy>`. The `Boxed` escape
/// hatch keeps external implementations usable.
#[derive(Debug)]
pub enum PowerPolicyImpl {
    /// [`NoPowerManagement`] — `propose` is a constant `None`.
    None(NoPowerManagement),
    /// [`TimeoutPowerDown`] (immediate / idle-timer / power-aware).
    Timeout(TimeoutPowerDown),
    /// Any other [`PowerPolicy`] implementation, dynamically dispatched.
    Boxed(Box<dyn PowerPolicy>),
}

impl PowerPolicyImpl {
    /// Short human-readable name (used in reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::None(p) => p.name(),
            Self::Timeout(p) => p.name(),
            Self::Boxed(p) => p.name(),
        }
    }

    /// See [`PowerPolicy::propose`].
    #[inline]
    #[must_use]
    pub fn propose(&self, view: &PolicyView<'_>) -> Option<PowerAction> {
        match self {
            Self::None(_) => None,
            Self::Timeout(p) => p.propose(view),
            Self::Boxed(p) => p.propose(view),
        }
    }

    /// See [`PowerPolicy::next_wake`].
    #[inline]
    #[must_use]
    pub fn next_wake(&self, view: &PolicyView<'_>) -> Option<DramCycles> {
        match self {
            Self::None(_) => None,
            Self::Timeout(p) => p.next_wake(view),
            Self::Boxed(p) => p.next_wake(view),
        }
    }

    /// See [`PowerPolicy::on_activity`].
    #[inline]
    pub fn on_activity(&mut self, rank: usize, now: DramCycles) {
        match self {
            Self::None(_) => {}
            Self::Timeout(p) => p.on_activity(rank, now),
            Self::Boxed(p) => p.on_activity(rank, now),
        }
    }

    /// Whether this policy can never propose anything (lets the controller
    /// and the horizon walk skip the power step entirely).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        matches!(self, Self::None(_))
    }

    /// Whether this policy's state can be checkpointed. External
    /// [`PowerPolicyImpl::Boxed`] implementations are opaque to the snapshot
    /// machinery; callers must gate on this before saving.
    #[must_use]
    pub fn snapshot_supported(&self) -> bool {
        !matches!(self, Self::Boxed(_))
    }

    /// Serializes the policy's mutable state (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        match self {
            Self::None(_) | Self::Boxed(_) => {}
            Self::Timeout(p) => w.u64_slice(&p.last_activity),
        }
    }

    /// Restores the policy's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a timer
    /// vector that does not match the configured rank count.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        match self {
            Self::None(_) | Self::Boxed(_) => Ok(()),
            Self::Timeout(p) => {
                let count = r.bounded_len(8)?;
                if count != p.last_activity.len() {
                    return Err(r.bad_value(format!(
                        "{count} activity timers, expected {}",
                        p.last_activity.len()
                    )));
                }
                for slot in &mut p.last_activity {
                    *slot = r.u64()?;
                }
                Ok(())
            }
        }
    }
}

impl From<Box<dyn PowerPolicy>> for PowerPolicyImpl {
    fn from(policy: Box<dyn PowerPolicy>) -> Self {
        Self::Boxed(policy)
    }
}

impl std::fmt::Display for PowerPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::None => "none",
            Self::Immediate => "immediate",
            Self::IdleTimer => "idle-timer",
            Self::PowerAware => "power-aware",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PowerPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Self::None),
            "immediate" => Ok(Self::Immediate),
            "idle-timer" => Ok(Self::IdleTimer),
            "power-aware" => Ok(Self::PowerAware),
            other => Err(format!("unknown power policy `{other}`")),
        }
    }
}

/// Idle thresholds (DRAM cycles since the last demand access to a rank) at
/// which the timeout policy moves the rank into each low-power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerTimeouts {
    /// Idle cycles before entering fast-exit power-down.
    pub fast_after: DramCycles,
    /// Idle cycles before deepening to slow-exit power-down (`None` never).
    pub slow_after: Option<DramCycles>,
    /// Idle cycles before deepening to self-refresh (`None` never).
    pub self_refresh_after: Option<DramCycles>,
}

impl PowerTimeouts {
    /// Immediate fast power-down, no deeper states.
    #[must_use]
    pub fn immediate() -> Self {
        Self {
            fast_after: 0,
            slow_after: None,
            self_refresh_after: None,
        }
    }

    /// The escalating default: fast after ~a hundred idle cycles, slow after
    /// ~a thousand, self-refresh after several refresh intervals' worth.
    #[must_use]
    pub fn idle_timer() -> Self {
        Self {
            fast_after: 96,
            slow_after: Some(1_024),
            self_refresh_after: Some(16_384),
        }
    }

    /// The deepest mode whose threshold `idle` has crossed, if any.
    fn deepest_eligible(&self, idle: DramCycles) -> Option<PowerDownMode> {
        if self.self_refresh_after.is_some_and(|t| idle >= t) {
            Some(PowerDownMode::SelfRefresh)
        } else if self.slow_after.is_some_and(|t| idle >= t) {
            Some(PowerDownMode::Slow)
        } else if idle >= self.fast_after {
            Some(PowerDownMode::Fast)
        } else {
            None
        }
    }

    /// The threshold whose crossing would deepen a rank currently in
    /// `state`, if a deeper state is configured.
    fn next_threshold(&self, state: PowerState) -> Option<DramCycles> {
        match state {
            PowerState::PrechargeStandby => Some(self.fast_after),
            PowerState::PowerDownFast => self.slow_after.or(self.self_refresh_after),
            PowerState::PowerDownSlow => self.self_refresh_after,
            PowerState::ActiveStandby | PowerState::SelfRefresh => None,
        }
    }
}

/// Idle cycles an open row must sit unused before the power-aware policy
/// closes it on the rank's way to power-down.
pub const POWER_AWARE_PRECHARGE_AFTER: DramCycles = 256;

/// The do-nothing policy: every rank stays in standby forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPowerManagement;

impl PowerPolicy for NoPowerManagement {
    fn name(&self) -> &'static str {
        "none"
    }

    fn propose(&self, _view: &PolicyView<'_>) -> Option<PowerAction> {
        None
    }
}

/// The timeout-driven power-down policy behind `Immediate`, `IdleTimer` and
/// `PowerAware`: per-rank demand-idle timers escalate each quiescent rank
/// through the configured low-power states.
#[derive(Debug, Clone)]
pub struct TimeoutPowerDown {
    name: &'static str,
    timeouts: PowerTimeouts,
    /// `Some(threshold)` lets the policy precharge open-but-idle rows so a
    /// rank with rows parked open by the page policy can still power down.
    precharge_after: Option<DramCycles>,
    /// Cycle of the last demand access per rank.
    last_activity: Vec<DramCycles>,
}

impl TimeoutPowerDown {
    /// Creates the policy for `ranks` ranks.
    #[must_use]
    pub fn new(
        name: &'static str,
        ranks: usize,
        timeouts: PowerTimeouts,
        precharge_after: Option<DramCycles>,
    ) -> Self {
        Self {
            name,
            timeouts,
            precharge_after,
            last_activity: vec![0; ranks],
        }
    }

    /// Whether this policy may act on `rank` at all: no demand pending and
    /// not already in the deepest state.
    fn rank_candidate(&self, view: &PolicyView<'_>, rank: usize) -> bool {
        !view.pending_for_rank(rank) && view.channel.power_state(rank) != PowerState::SelfRefresh
    }
}

impl PowerPolicy for TimeoutPowerDown {
    fn name(&self) -> &'static str {
        self.name
    }

    fn propose(&self, view: &PolicyView<'_>) -> Option<PowerAction> {
        for rank in 0..view.channel.rank_count() {
            if !self.rank_candidate(view, rank) {
                continue;
            }
            let idle = view.now.saturating_sub(self.last_activity[rank]);
            if let Some(mode) = self.timeouts.deepest_eligible(idle) {
                if view.channel.can_enter_power_down(rank, mode, view.now) {
                    return Some(PowerAction::PowerDown { rank, mode });
                }
            }
            if let Some(threshold) = self.precharge_after {
                if idle >= threshold && view.channel.power_state(rank) == PowerState::ActiveStandby
                {
                    if let Some((r, b, _)) = view.open_banks().find(|&(r, _, _)| r == rank) {
                        return Some(PowerAction::Precharge { rank: r, bank: b });
                    }
                }
            }
        }
        None
    }

    fn next_wake(&self, view: &PolicyView<'_>) -> Option<DramCycles> {
        let mut wake: Option<DramCycles> = None;
        let mut consider = |cycle: DramCycles| {
            wake = Some(wake.map_or(cycle, |w| w.min(cycle)));
        };
        for rank in 0..view.channel.rank_count() {
            if !self.rank_candidate(view, rank) {
                continue;
            }
            let state = view.channel.power_state(rank);
            let last = self.last_activity[rank];
            if let Some(threshold) = self.timeouts.next_threshold(state) {
                consider((last + threshold).max(view.channel.earliest_power_down(rank)));
            }
            if let Some(threshold) = self.precharge_after {
                if state == PowerState::ActiveStandby {
                    for (_, bank, _) in view.open_banks().filter(|&(r, _, _)| r == rank) {
                        let fence = view.channel.rank(rank).bank(bank).next_precharge_allowed();
                        consider((last + threshold).max(fence));
                    }
                }
            }
        }
        wake
    }

    fn on_activity(&mut self, rank: usize, now: DramCycles) {
        if let Some(slot) = self.last_activity.get_mut(rank) {
            *slot = (*slot).max(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn fixture() -> (DramChannel, RequestQueue, RequestQueue) {
        let cfg = DramConfig::baseline();
        (
            DramChannel::new(&cfg),
            RequestQueue::new(8),
            RequestQueue::new(8),
        )
    }

    fn view<'a>(
        now: DramCycles,
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
    ) -> PolicyView<'a> {
        PolicyView {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
        }
    }

    #[test]
    fn none_policy_never_proposes() {
        let (ch, rq, wq) = fixture();
        let p = NoPowerManagement;
        assert_eq!(p.propose(&view(10_000, &ch, &rq, &wq)), None);
        assert_eq!(p.next_wake(&view(10_000, &ch, &rq, &wq)), None);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn immediate_powers_down_quiescent_ranks_at_once() {
        let (ch, rq, wq) = fixture();
        let p = PowerPolicyKind::Immediate.build(2);
        assert_eq!(
            p.propose(&view(0, &ch, &rq, &wq)),
            Some(PowerAction::PowerDown {
                rank: 0,
                mode: PowerDownMode::Fast
            })
        );
    }

    #[test]
    fn pending_demand_vetoes_power_down() {
        let (ch, mut rq, wq) = fixture();
        let mut p = TimeoutPowerDown::new("t", 2, PowerTimeouts::immediate(), None);
        rq.push(
            MemoryRequest::new(1, AccessKind::Read, 0, 0, 0),
            Location::new(0, 0, 5, 0),
            0,
        )
        .unwrap();
        // Rank 0 has demand; rank 1 is the only proposal.
        match p.propose(&view(0, &ch, &rq, &wq)) {
            Some(PowerAction::PowerDown { rank, .. }) => assert_eq!(rank, 1),
            other => panic!("unexpected proposal {other:?}"),
        }
        p.on_activity(0, 0);
        assert_eq!(p.last_activity[0], 0);
    }

    #[test]
    fn idle_timer_escalates_with_idle_time() {
        let (mut ch, rq, wq) = fixture();
        let timeouts = PowerTimeouts::idle_timer();
        let mut p = TimeoutPowerDown::new("t", 2, timeouts, None);
        for r in 0..2 {
            p.on_activity(r, 100);
        }
        // Below the fast threshold: nothing, but the flip cycle is reported.
        let early = view(100 + timeouts.fast_after - 1, &ch, &rq, &wq);
        assert_eq!(p.propose(&early), None);
        assert_eq!(p.next_wake(&early), Some(100 + timeouts.fast_after));
        // At the threshold: fast power-down.
        let at = view(100 + timeouts.fast_after, &ch, &rq, &wq);
        assert_eq!(
            p.propose(&at),
            Some(PowerAction::PowerDown {
                rank: 0,
                mode: PowerDownMode::Fast
            })
        );
        ch.enter_power_down(0, PowerDownMode::Fast, 100 + timeouts.fast_after);
        ch.enter_power_down(1, PowerDownMode::Fast, 100 + timeouts.fast_after);
        // Past the slow threshold the proposal deepens.
        let slow_at = 100 + timeouts.slow_after.unwrap();
        let v = view(slow_at, &ch, &rq, &wq);
        assert_eq!(
            p.propose(&v),
            Some(PowerAction::PowerDown {
                rank: 0,
                mode: PowerDownMode::Slow
            })
        );
        ch.enter_power_down(0, PowerDownMode::Slow, slow_at);
        ch.enter_power_down(1, PowerDownMode::Slow, slow_at);
        // And finally to self-refresh.
        let sr_at = 100 + timeouts.self_refresh_after.unwrap();
        let v = view(sr_at, &ch, &rq, &wq);
        assert_eq!(
            p.propose(&v),
            Some(PowerAction::PowerDown {
                rank: 0,
                mode: PowerDownMode::SelfRefresh
            })
        );
        ch.enter_power_down(0, PowerDownMode::SelfRefresh, sr_at);
        ch.enter_power_down(1, PowerDownMode::SelfRefresh, sr_at);
        // Deepest state: nothing further, no wake.
        let v = view(sr_at + 50_000, &ch, &rq, &wq);
        assert_eq!(p.propose(&v), None);
        assert_eq!(p.next_wake(&v), None);
    }

    #[test]
    fn power_aware_closes_idle_open_rows() {
        let (mut ch, rq, wq) = fixture();
        let mut p = TimeoutPowerDown::new(
            "pa",
            2,
            PowerTimeouts::idle_timer(),
            Some(POWER_AWARE_PRECHARGE_AFTER),
        );
        ch.issue(&Command::activate(Location::new(0, 3, 9, 0)), 0);
        for r in 0..2 {
            p.on_activity(r, 0);
        }
        // Before the row-idle threshold, rank 0 yields no proposal of its
        // own (its open row blocks power-down), so the first action is the
        // close of its idle row once the threshold passes.
        let v = view(POWER_AWARE_PRECHARGE_AFTER, &ch, &rq, &wq);
        assert_eq!(
            p.propose(&v),
            Some(PowerAction::Precharge { rank: 0, bank: 3 })
        );
        // Close it; the rank then becomes a power-down candidate itself.
        let pre_at = POWER_AWARE_PRECHARGE_AFTER;
        ch.issue(&Command::precharge(Location::new(0, 3, 9, 0)), pre_at);
        let quiet = ch.earliest_power_down(0);
        let v = view(quiet, &ch, &rq, &wq);
        assert_eq!(
            p.propose(&v),
            Some(PowerAction::PowerDown {
                rank: 0,
                mode: PowerDownMode::Fast
            })
        );
    }

    #[test]
    fn kinds_build_parse_and_roundtrip() {
        for kind in PowerPolicyKind::all() {
            let p = kind.build(2);
            assert!(!p.name().is_empty());
            let parsed: PowerPolicyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<PowerPolicyKind>().is_err());
        assert_eq!(PowerPolicyKind::all()[0], PowerPolicyKind::None);
    }
}
