//! Physical-address-to-DRAM-coordinate mapping schemes.
//!
//! The paper studies four bit-sliced interleaving schemes that differ in
//! which address bits select the channel: `RoRaBaCoCh` (baseline, channel in
//! the lowest bits above the block offset — consecutive cache blocks
//! alternate between channels), `RoRaBaChCo`, `RoRaChBaCo` and `RoChRaBaCo`
//! (channel in progressively higher bits, keeping more spatial locality
//! within one channel). Fields are listed most-significant first in the
//! scheme name: e.g. `RoRaBaCoCh` = Row | Rank | Bank | Column | Channel.

use cloudmc_dram::{DramConfig, Location};

/// A DRAM coordinate produced by decoding a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddress {
    /// Memory channel index.
    pub channel: usize,
    /// Location within the channel.
    pub location: Location,
}

/// The individual fields of a mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Field {
    Channel,
    Rank,
    Bank,
    Row,
    Column,
}

/// Address interleaving schemes studied in Section 4.3 of the paper.
///
/// # Examples
///
/// ```
/// use cloudmc_dram::DramConfig;
/// use cloudmc_memctrl::AddressMapping;
///
/// let cfg = DramConfig::with_channels(4);
/// let m = AddressMapping::RoRaBaCoCh;
/// // Consecutive cache blocks land on different channels under the baseline.
/// let a = m.decode(0x0000, &cfg);
/// let b = m.decode(0x0040, &cfg);
/// assert_ne!(a.channel, b.channel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressMapping {
    /// Row | Rank | Bank | Column | Channel — the paper's baseline. Channel
    /// bits are the lowest, so sequential blocks alternate channels.
    RoRaBaCoCh,
    /// Row | Rank | Bank | Channel | Column — a whole row's worth of
    /// consecutive blocks stays on one channel.
    RoRaBaChCo,
    /// Row | Rank | Channel | Bank | Column.
    RoRaChBaCo,
    /// Row | Channel | Rank | Bank | Column.
    RoChRaBaCo,
}

impl AddressMapping {
    /// All schemes studied in the paper, in presentation order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::RoRaBaCoCh,
            Self::RoRaBaChCo,
            Self::RoRaChBaCo,
            Self::RoChRaBaCo,
        ]
    }

    /// Field order from most-significant to least-significant.
    fn fields(self) -> [Field; 5] {
        use Field::{Bank, Channel, Column, Rank, Row};
        match self {
            Self::RoRaBaCoCh => [Row, Rank, Bank, Column, Channel],
            Self::RoRaBaChCo => [Row, Rank, Bank, Channel, Column],
            Self::RoRaChBaCo => [Row, Rank, Channel, Bank, Column],
            Self::RoChRaBaCo => [Row, Channel, Rank, Bank, Column],
        }
    }

    fn field_bits(field: Field, cfg: &DramConfig) -> u32 {
        match field {
            Field::Channel => (cfg.channels as u64).trailing_zeros(),
            Field::Rank => (cfg.ranks_per_channel as u64).trailing_zeros(),
            Field::Bank => (cfg.banks_per_rank as u64).trailing_zeros(),
            Field::Row => cfg.rows_per_bank.trailing_zeros(),
            Field::Column => cfg.columns_per_row().trailing_zeros(),
        }
    }

    /// Number of address bits consumed by the mapping (excluding the block
    /// offset).
    #[must_use]
    pub fn mapped_bits(self, cfg: &DramConfig) -> u32 {
        self.fields()
            .iter()
            .map(|f| Self::field_bits(*f, cfg))
            .sum()
    }

    /// Decodes physical byte address `addr` into DRAM coordinates.
    ///
    /// Address bits above the mapped capacity wrap around (they are simply
    /// ignored), which matches how a real controller masks the address.
    #[must_use]
    pub fn decode(self, addr: u64, cfg: &DramConfig) -> DecodedAddress {
        let block_bits = cfg.column_bytes.trailing_zeros();
        let mut remaining = addr >> block_bits;
        let mut channel = 0u64;
        let mut rank = 0u64;
        let mut bank = 0u64;
        let mut row = 0u64;
        let mut column = 0u64;
        // Walk fields from least-significant to most-significant.
        for field in self.fields().iter().rev() {
            let bits = Self::field_bits(*field, cfg);
            let mask = (1u64 << bits) - 1;
            let value = remaining & mask;
            remaining >>= bits;
            match field {
                Field::Channel => channel = value,
                Field::Rank => rank = value,
                Field::Bank => bank = value,
                Field::Row => row = value,
                Field::Column => column = value,
            }
        }
        DecodedAddress {
            channel: channel as usize,
            location: Location::new(rank as usize, bank as usize, row, column),
        }
    }

    /// Re-encodes DRAM coordinates into the canonical physical address.
    ///
    /// `decode(encode(x)) == x` for coordinates within the configured
    /// geometry; used by tests and the trace tooling.
    #[must_use]
    pub fn encode(self, decoded: &DecodedAddress, cfg: &DramConfig) -> u64 {
        let block_bits = cfg.column_bytes.trailing_zeros();
        let mut addr = 0u64;
        for field in self.fields() {
            let bits = Self::field_bits(field, cfg);
            let value = match field {
                Field::Channel => decoded.channel as u64,
                Field::Rank => decoded.location.rank as u64,
                Field::Bank => decoded.location.bank as u64,
                Field::Row => decoded.location.row,
                Field::Column => decoded.location.column,
            };
            addr = (addr << bits) | (value & ((1u64 << bits) - 1));
        }
        addr << block_bits
    }
}

impl std::fmt::Display for AddressMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::RoRaBaCoCh => "RoRaBaCoCh",
            Self::RoRaBaChCo => "RoRaBaChCo",
            Self::RoRaChBaCo => "RoRaChBaCo",
            Self::RoChRaBaCo => "RoChRaBaCo",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for AddressMapping {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "RoRaBaCoCh" => Ok(Self::RoRaBaCoCh),
            "RoRaBaChCo" => Ok(Self::RoRaBaChCo),
            "RoRaChBaCo" => Ok(Self::RoRaChBaCo),
            "RoChRaBaCo" => Ok(Self::RoChRaBaCo),
            other => Err(format!("unknown address mapping scheme `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> DramConfig {
        DramConfig::with_channels(4)
    }

    #[test]
    fn baseline_interleaves_blocks_across_channels() {
        let cfg = cfg4();
        let m = AddressMapping::RoRaBaCoCh;
        let chans: Vec<usize> = (0..4).map(|i| m.decode(i * 64, &cfg).channel).collect();
        assert_eq!(chans, vec![0, 1, 2, 3]);
        // Same row for all four: only the channel bits changed.
        let rows: Vec<u64> = (0..4)
            .map(|i| m.decode(i * 64, &cfg).location.row)
            .collect();
        assert!(rows.iter().all(|&r| r == rows[0]));
    }

    #[test]
    fn rorabachco_keeps_sequential_blocks_on_one_channel() {
        let cfg = cfg4();
        let m = AddressMapping::RoRaBaChCo;
        // 128 columns per row -> the first 128 blocks share a channel and row.
        let first = m.decode(0, &cfg);
        for i in 0..cfg.columns_per_row() {
            let d = m.decode(i * 64, &cfg);
            assert_eq!(d.channel, first.channel);
            assert_eq!(d.location.row, first.location.row);
            assert_eq!(d.location.column, i);
        }
        let next = m.decode(cfg.columns_per_row() * 64, &cfg);
        assert_ne!(next.channel, first.channel);
    }

    #[test]
    fn single_channel_schemes_agree_on_row_and_column() {
        // With one channel the channel field is zero bits wide, so all four
        // schemes with the same relative order of Ro/Ra/Ba/Co must agree.
        let cfg = DramConfig::baseline();
        let addr = 0x1234_5678_0000 % cfg.capacity_bytes();
        let base = AddressMapping::RoRaBaChCo.decode(addr, &cfg);
        for m in [AddressMapping::RoRaChBaCo, AddressMapping::RoChRaBaCo] {
            assert_eq!(m.decode(addr, &cfg), base);
        }
    }

    #[test]
    fn decode_encode_round_trip() {
        let cfg = cfg4();
        for m in AddressMapping::all() {
            for addr in [
                0u64,
                64,
                4096,
                0x00de_adbe_efc0 & !63,
                cfg.capacity_bytes() - 64,
            ] {
                let d = m.decode(addr, &cfg);
                assert_eq!(
                    m.encode(&d, &cfg),
                    addr % cfg.capacity_bytes(),
                    "scheme {m}"
                );
            }
        }
    }

    #[test]
    fn mapped_bits_cover_capacity() {
        let cfg = cfg4();
        for m in AddressMapping::all() {
            let total_bits = m.mapped_bits(&cfg) + cfg.column_bytes.trailing_zeros();
            assert_eq!(1u64 << total_bits, cfg.capacity_bytes());
        }
    }

    #[test]
    fn display_and_parse_round_trip() {
        for m in AddressMapping::all() {
            let parsed: AddressMapping = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("RoXxYyZz".parse::<AddressMapping>().is_err());
    }

    #[test]
    fn decoded_coordinates_stay_in_range() {
        let cfg = cfg4();
        for m in AddressMapping::all() {
            for i in 0..1000u64 {
                let d = m.decode(i * 64 * 131, &cfg);
                assert!(d.channel < cfg.channels);
                assert!(d.location.rank < cfg.ranks_per_channel);
                assert!(d.location.bank < cfg.banks_per_rank);
                assert!(d.location.row < cfg.rows_per_bank);
                assert!(d.location.column < cfg.columns_per_row());
            }
        }
    }
}
