//! Memory requests as seen by the memory controller.

use cloudmc_dram::{DramCycles, Location};

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A read (load miss, instruction fetch miss, or DMA read).
    Read,
    /// A write (dirty write-back or DMA write).
    Write,
}

impl AccessKind {
    /// Returns `true` for reads.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Self::Read)
    }
}

/// Identifier of a memory request, unique within one simulation.
pub type RequestId = u64;

/// A request for one cache block of off-chip memory.
///
/// # Examples
///
/// ```
/// use cloudmc_memctrl::{AccessKind, MemoryRequest};
///
/// let req = MemoryRequest::new(1, AccessKind::Read, 0x1234_5678, 3, 1000);
/// assert!(req.kind.is_read());
/// assert_eq!(req.core, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryRequest {
    /// Unique identifier assigned by the requester.
    pub id: RequestId,
    /// Read or write.
    pub kind: AccessKind,
    /// Physical byte address of the cache block.
    pub addr: u64,
    /// Index of the requesting core (or a pseudo-core for DMA engines).
    pub core: usize,
    /// CPU-visible issue time, in DRAM cycles, used for latency accounting
    /// and age-based scheduling.
    pub arrival: DramCycles,
    /// Whether the request originates from a DMA/IO engine rather than a core.
    pub dma: bool,
}

impl MemoryRequest {
    /// Creates a non-DMA request.
    #[must_use]
    pub fn new(
        id: RequestId,
        kind: AccessKind,
        addr: u64,
        core: usize,
        arrival: DramCycles,
    ) -> Self {
        Self {
            id,
            kind,
            addr,
            core,
            arrival,
            dma: false,
        }
    }

    /// Creates a DMA/IO request attributed to pseudo-core `core`.
    #[must_use]
    pub fn dma(
        id: RequestId,
        kind: AccessKind,
        addr: u64,
        core: usize,
        arrival: DramCycles,
    ) -> Self {
        Self {
            id,
            kind,
            addr,
            core,
            arrival,
            dma: true,
        }
    }
}

/// Row-buffer outcome of a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBufferOutcome {
    /// The target row was already open when the request was first scheduled.
    Hit,
    /// The bank was idle; only an ACTIVATE was needed.
    Miss,
    /// A different row was open; PRECHARGE then ACTIVATE were needed.
    Conflict,
}

/// A request that finished service, with timing information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: MemoryRequest,
    /// Where the request mapped in the DRAM organization.
    pub channel: usize,
    /// Bank-level location.
    pub location: Location,
    /// Cycle at which the data transfer finished (DRAM cycles).
    pub completion: DramCycles,
    /// Row-buffer outcome.
    pub outcome: RowBufferOutcome,
}

impl CompletedRequest {
    /// Memory access latency in DRAM cycles (arrival to data completion).
    #[must_use]
    pub fn latency(&self) -> DramCycles {
        self.completion.saturating_sub(self.request.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completion_minus_arrival() {
        let req = MemoryRequest::new(7, AccessKind::Write, 0x40, 0, 100);
        let done = CompletedRequest {
            request: req,
            channel: 0,
            location: Location::new(0, 0, 0, 0),
            completion: 180,
            outcome: RowBufferOutcome::Conflict,
        };
        assert_eq!(done.latency(), 80);
    }

    #[test]
    fn dma_constructor_marks_dma() {
        let req = MemoryRequest::dma(1, AccessKind::Read, 0, 16, 0);
        assert!(req.dma);
        assert!(!MemoryRequest::new(2, AccessKind::Read, 0, 0, 0).dma);
    }

    #[test]
    fn access_kind_predicate() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }
}
