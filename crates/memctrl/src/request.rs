//! Memory requests as seen by the memory controller.

use cloudmc_dram::{DramCycles, Location};

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A read (load miss, instruction fetch miss, or DMA read).
    Read,
    /// A write (dirty write-back or DMA write).
    Write,
}

impl AccessKind {
    /// Returns `true` for reads.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Self::Read)
    }
}

/// Identifier of a memory request, unique within one simulation.
pub type RequestId = u64;

/// Identifier of the tenant a request is attributed to in a consolidated
/// multi-tenant run. Single-tenant operation uses tenant `0` throughout.
pub type TenantId = usize;

/// Upper bound on tenants the controller accounts for.
///
/// Per-tenant counters (queue occupancy, completions, latency sums) live in
/// flat arrays of this size so the accounting costs nothing on the hot path.
/// Must match `cloudmc_workloads::MAX_TENANTS` (the simulator asserts it).
pub const MAX_TENANTS: usize = 4;

/// A request for one cache block of off-chip memory.
///
/// # Examples
///
/// ```
/// use cloudmc_memctrl::{AccessKind, MemoryRequest};
///
/// let req = MemoryRequest::new(1, AccessKind::Read, 0x1234_5678, 3, 1000).with_tenant(1);
/// assert!(req.kind.is_read());
/// assert_eq!(req.core, 3);
/// assert_eq!(req.tenant, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryRequest {
    /// Unique identifier assigned by the requester.
    pub id: RequestId,
    /// Read or write.
    pub kind: AccessKind,
    /// Physical byte address of the cache block.
    pub addr: u64,
    /// Index of the requesting core (or a pseudo-core for DMA engines).
    pub core: usize,
    /// Tenant the request is attributed to (for QoS and fairness accounting).
    pub tenant: TenantId,
    /// CPU-visible issue time, in DRAM cycles, used for latency accounting
    /// and age-based scheduling.
    pub arrival: DramCycles,
    /// Whether the request originates from a DMA/IO engine rather than a core.
    pub dma: bool,
}

impl MemoryRequest {
    /// Creates a non-DMA request attributed to tenant 0.
    #[must_use]
    pub fn new(
        id: RequestId,
        kind: AccessKind,
        addr: u64,
        core: usize,
        arrival: DramCycles,
    ) -> Self {
        Self {
            id,
            kind,
            addr,
            core,
            tenant: 0,
            arrival,
            dma: false,
        }
    }

    /// Creates a DMA/IO request attributed to pseudo-core `core` (tenant 0).
    #[must_use]
    pub fn dma(
        id: RequestId,
        kind: AccessKind,
        addr: u64,
        core: usize,
        arrival: DramCycles,
    ) -> Self {
        Self {
            id,
            kind,
            addr,
            core,
            tenant: 0,
            arrival,
            dma: true,
        }
    }

    /// Attributes the request to `tenant`. Ids at or above [`MAX_TENANTS`]
    /// are clamped into the last accounting slot so every per-tenant counter
    /// (queues, stats, conservation checks) sees the same bucket.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant.min(MAX_TENANTS - 1);
        self
    }
}

/// Row-buffer outcome of a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBufferOutcome {
    /// The target row was already open when the request was first scheduled.
    Hit,
    /// The bank was idle; only an ACTIVATE was needed.
    Miss,
    /// A different row was open; PRECHARGE then ACTIVATE were needed.
    Conflict,
}

/// A request that finished service, with timing information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: MemoryRequest,
    /// Where the request mapped in the DRAM organization.
    pub channel: usize,
    /// Bank-level location.
    pub location: Location,
    /// Cycle at which the completing service's column command issued (DRAM
    /// cycles). For reads that needed ECC retries this belongs to the final
    /// successful attempt; [`CompletedRequest::retries`] counts the earlier
    /// ones.
    pub issue: DramCycles,
    /// Cycle at which the data transfer finished (DRAM cycles).
    pub completion: DramCycles,
    /// Row-buffer outcome.
    pub outcome: RowBufferOutcome,
    /// ECC retry attempts that preceded the completing service (0 for clean
    /// reads and all writes).
    pub retries: u32,
}

impl CompletedRequest {
    /// Memory access latency in DRAM cycles (arrival to data completion).
    #[must_use]
    pub fn latency(&self) -> DramCycles {
        self.completion.saturating_sub(self.request.arrival)
    }

    /// Cycles spent queued before the completing service issued.
    #[must_use]
    pub fn queue_delay(&self) -> DramCycles {
        self.issue.saturating_sub(self.request.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completion_minus_arrival() {
        let req = MemoryRequest::new(7, AccessKind::Write, 0x40, 0, 100);
        let done = CompletedRequest {
            request: req,
            channel: 0,
            location: Location::new(0, 0, 0, 0),
            issue: 160,
            completion: 180,
            outcome: RowBufferOutcome::Conflict,
            retries: 0,
        };
        assert_eq!(done.latency(), 80);
        assert_eq!(done.queue_delay(), 60);
    }

    #[test]
    fn dma_constructor_marks_dma() {
        let req = MemoryRequest::dma(1, AccessKind::Read, 0, 16, 0);
        assert!(req.dma);
        assert!(!MemoryRequest::new(2, AccessKind::Read, 0, 0, 0).dma);
    }

    #[test]
    fn with_tenant_clamps_out_of_range_ids() {
        let req = MemoryRequest::new(1, AccessKind::Read, 0, 0, 0).with_tenant(2);
        assert_eq!(req.tenant, 2);
        let clamped = MemoryRequest::new(2, AccessKind::Read, 0, 0, 0).with_tenant(99);
        assert_eq!(clamped.tenant, MAX_TENANTS - 1);
    }

    #[test]
    fn access_kind_predicate() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }
}
