//! Multi-tenant QoS policies for the memory controller.
//!
//! On a consolidated cloud node the memory controller is where tenants
//! collide: a latency-critical service's sparse reads queue behind a batch
//! job's bandwidth-bound stream, and mean latency hides the damage. The QoS
//! layer gives the controller a tenant-aware lever without rewriting any
//! scheduler: each cycle the [`QosArbiter`] gets *first claim* on the command
//! slot and may issue a command for a tenant the policy wants to privilege;
//! only when it declines does the configured scheduling algorithm (FR-FCFS,
//! FCFS-banks, PAR-BS, ATLAS, RL — all five compose unchanged) pick as usual.
//! The arbiter never blocks anyone: if the privileged tenants have nothing
//! ready the slot falls through, so the controller stays work-conserving.
//!
//! Two policies are implemented on top of that slot:
//!
//! * [`QosPolicyKind::PriorityBoost`] — latency-critical tenants always get
//!   the slot first. The strongest protection and the bluntest: batch
//!   tenants absorb whatever slack remains.
//! * [`QosPolicyKind::StaticPartition`] — each tenant is entitled to a fixed
//!   share of the *delivered* bandwidth (weights default to core counts).
//!   The arbiter tracks per-tenant service within an epoch and claims the
//!   slot for the most under-served tenant; tenants at or above their share
//!   are never boosted, only scheduled normally.
//!
//! ## Fast-forward safety
//!
//! The arbiter only ever *adds* issue opportunities on cycles where some
//! pending request already has a legal command, so the controller's
//! event-horizon bound (earliest legal progress over all queued entries)
//! covers it and `next_ready_dram_cycle` needs no extra term. Epoch
//! bookkeeping is caught up lazily from `now` (`while now >= boundary`)
//! exactly like scheduler quanta, and service counters only change when
//! commands issue — which never happens inside a skipped window.

use cloudmc_dram::DramCycles;

use crate::request::{TenantId, MAX_TENANTS};
use crate::sched::{first_ready, SchedContext, SchedDecision};

/// Identifier for constructing QoS policies by name (used by the experiment
/// harness to sweep policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosPolicyKind {
    /// No QoS: tenants share the controller on the scheduler's terms alone
    /// (the pre-tenancy behaviour and the default).
    None,
    /// Deficit-based static bandwidth partitioning: under-served tenants
    /// (relative to their configured share of delivered bandwidth) get the
    /// command slot first.
    StaticPartition,
    /// Latency-critical tenants get the command slot first, unconditionally.
    PriorityBoost,
}

impl QosPolicyKind {
    /// Every implemented policy, in sweep order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::None, Self::StaticPartition, Self::PriorityBoost]
    }

    /// Canonical short name used in figures and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::StaticPartition => "static-partition",
            Self::PriorityBoost => "priority-boost",
        }
    }
}

impl std::fmt::Display for QosPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for QosPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(Self::None),
            "static-partition" | "partition" => Ok(Self::StaticPartition),
            "priority-boost" | "boost" => Ok(Self::PriorityBoost),
            other => Err(format!("unknown QoS policy `{other}`")),
        }
    }
}

/// Configuration of the QoS layer of one controller.
///
/// The simulator derives `tenants`, `latency_critical` and `share` from the
/// workload mix; standalone controller users fill them by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosConfig {
    /// Which policy arbitrates the command slot.
    pub policy: QosPolicyKind,
    /// Number of active tenants (1 disables all arbitration).
    pub tenants: usize,
    /// Whether each tenant is latency-critical (drives `PriorityBoost`).
    pub latency_critical: [bool; MAX_TENANTS],
    /// Relative bandwidth weights per tenant (drive `StaticPartition`; the
    /// simulator defaults them to tenant core counts). Weights of inactive
    /// slots are ignored.
    pub share: [u32; MAX_TENANTS],
    /// Service-accounting epoch in DRAM cycles: per-tenant service counters
    /// reset at every boundary so stale history cannot dominate.
    pub epoch: DramCycles,
}

impl QosConfig {
    /// Single-tenant configuration with QoS disabled (the default).
    #[must_use]
    pub fn none() -> Self {
        Self {
            policy: QosPolicyKind::None,
            tenants: 1,
            latency_critical: [false; MAX_TENANTS],
            share: [1; MAX_TENANTS],
            epoch: 16_384,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 || self.tenants > MAX_TENANTS {
            return Err(format!(
                "qos.tenants ({}) must be within 1..={MAX_TENANTS}",
                self.tenants
            ));
        }
        if self.epoch == 0 {
            return Err("qos.epoch must be non-zero".to_owned());
        }
        if self.policy == QosPolicyKind::StaticPartition
            && self.share[..self.tenants].iter().all(|&w| w == 0)
        {
            return Err(format!(
                "static partitioning needs a non-zero share for at least one of {} tenants",
                self.tenants
            ));
        }
        Ok(())
    }
}

impl Default for QosConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-channel QoS arbiter state: the policy plus this epoch's service
/// accounting.
#[derive(Debug)]
pub struct QosArbiter {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: QosConfig,
    /// Column accesses (one cache-block transfer each) issued per tenant
    /// since the epoch started.
    served: [u64; MAX_TENANTS],
    /// Sum of `served` (cached to keep deficit math O(tenants)).
    total_served: u64,
    epoch_start: DramCycles,
}

impl QosArbiter {
    /// Creates the arbiter for `cfg`.
    #[must_use]
    pub fn new(cfg: QosConfig) -> Self {
        Self {
            cfg,
            served: [0; MAX_TENANTS],
            total_served: 0,
            epoch_start: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &QosConfig {
        &self.cfg
    }

    /// Serializes the arbiter's mutable accounting state (checkpoint
    /// support). The configuration is config-derived and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.u64_slice(&self.served);
        w.u64(self.total_served);
        w.u64(self.epoch_start);
    }

    /// Restores the arbiter's mutable accounting state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a served
    /// array inconsistent with its cached sum.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let count = r.bounded_len(8)?;
        if count != MAX_TENANTS {
            return Err(r.bad_value(format!("{count} tenant slots, expected {MAX_TENANTS}")));
        }
        let mut served = [0u64; MAX_TENANTS];
        for slot in &mut served {
            *slot = r.u64()?;
        }
        let total_served = r.u64()?;
        if served.iter().sum::<u64>() != total_served {
            return Err(r.bad_value("served totals do not sum to total_served"));
        }
        self.served = served;
        self.total_served = total_served;
        self.epoch_start = r.u64()?;
        Ok(())
    }

    /// Whether the arbiter can ever claim the slot.
    fn active(&self) -> bool {
        self.cfg.policy != QosPolicyKind::None && self.cfg.tenants > 1
    }

    /// Charges one column access (one cache-block transfer) to `tenant`.
    /// The controller calls this for *every* data transfer it issues,
    /// scheduler-picked or arbiter-picked, so the accounting sees the whole
    /// bandwidth.
    pub fn on_issue(&mut self, tenant: TenantId) {
        if self.active() && tenant < MAX_TENANTS {
            self.served[tenant] += 1;
            self.total_served += 1;
        }
    }

    /// Catch-up epoch roll: one call at a later `now` leaves the arbiter in
    /// the same state as a call per cycle would have (the kernel may skip
    /// provably eventless cycles).
    fn roll_epoch(&mut self, now: DramCycles) {
        while now >= self.epoch_start + self.cfg.epoch {
            self.epoch_start += self.cfg.epoch;
            self.served = [0; MAX_TENANTS];
            self.total_served = 0;
        }
    }

    /// The tenants to try first this cycle, most privileged first; the count
    /// of valid entries is returned alongside the (fixed-size) buffer.
    fn preference_order(&self) -> ([TenantId; MAX_TENANTS], usize) {
        let mut order = [0; MAX_TENANTS];
        let mut n = 0;
        match self.cfg.policy {
            QosPolicyKind::None => {}
            QosPolicyKind::PriorityBoost => {
                for t in 0..self.cfg.tenants {
                    if self.cfg.latency_critical[t] {
                        order[n] = t;
                        n += 1;
                    }
                }
            }
            QosPolicyKind::StaticPartition => {
                // Deficit of tenant t: its share of the bandwidth actually
                // delivered this epoch, minus what it received. Positive
                // deficit = under-served. Integer math keeps this exact.
                let total_share: u64 = self.cfg.share[..self.cfg.tenants]
                    .iter()
                    .map(|&w| u64::from(w))
                    .sum();
                if total_share == 0 {
                    return (order, 0);
                }
                let mut deficits = [0i128; MAX_TENANTS];
                let mut candidates: [TenantId; MAX_TENANTS] = [0; MAX_TENANTS];
                for (t, deficit) in deficits.iter_mut().enumerate().take(self.cfg.tenants) {
                    let target = i128::from(self.total_served) * i128::from(self.cfg.share[t])
                        / i128::from(total_share);
                    *deficit = target - i128::from(self.served[t]);
                    if *deficit > 0 {
                        candidates[n] = t;
                        n += 1;
                    }
                }
                // Most under-served first; ties break on tenant id so the
                // order (and with it the whole simulation) is deterministic.
                candidates[..n].sort_unstable_by_key(|&t| (-deficits[t], t));
                order = candidates;
            }
        }
        (order, n)
    }

    /// Claims the command slot for a privileged tenant, or declines.
    ///
    /// Tries each preferred tenant's pending requests (in the queue the
    /// controller is currently serving) through the same work-conserving
    /// first-ready skeleton the baseline scheduler uses; the first tenant
    /// with a legal command wins the slot. Returns `None` when no privileged
    /// tenant has anything ready — the scheduler then picks as usual.
    pub fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        if !self.active() {
            return None;
        }
        self.roll_epoch(ctx.now);
        let (order, n) = self.preference_order();
        let queue = ctx.active_queue();
        for &tenant in &order[..n] {
            if queue.len_for_tenant(tenant) == 0 {
                continue;
            }
            let decision = first_ready(queue.iter_for_tenant(tenant), ctx);
            if decision.is_some() {
                return decision;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{DramChannel, DramConfig, Location};

    fn two_tenant_cfg(policy: QosPolicyKind) -> QosConfig {
        QosConfig {
            policy,
            tenants: 2,
            latency_critical: [true, false, false, false],
            share: [1, 1, 1, 1],
            epoch: 1_000,
        }
    }

    fn push(q: &mut RequestQueue, id: u64, tenant: TenantId, bank: usize, row: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, tenant, 0).with_tenant(tenant),
            Location::new(0, bank, row, 0),
            0,
        )
        .unwrap();
    }

    fn ctx<'a>(
        channel: &'a DramChannel,
        read_q: &'a RequestQueue,
        write_q: &'a RequestQueue,
    ) -> SchedContext<'a> {
        SchedContext {
            now: 0,
            channel,
            read_q,
            write_q,
            write_mode: false,
            num_cores: 16,
        }
    }

    #[test]
    fn labels_round_trip_through_parsing() {
        for kind in QosPolicyKind::all() {
            let parsed: QosPolicyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nope".parse::<QosPolicyKind>().is_err());
    }

    #[test]
    fn config_validation() {
        QosConfig::none().validate().unwrap();
        let mut cfg = two_tenant_cfg(QosPolicyKind::StaticPartition);
        cfg.validate().unwrap();
        cfg.tenants = 0;
        assert!(cfg.validate().is_err());
        cfg.tenants = MAX_TENANTS + 1;
        assert!(cfg.validate().is_err());
        cfg = two_tenant_cfg(QosPolicyKind::StaticPartition);
        cfg.share = [0; MAX_TENANTS];
        assert!(cfg.validate().is_err());
        cfg = two_tenant_cfg(QosPolicyKind::None);
        cfg.epoch = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn none_and_single_tenant_never_claim_the_slot() {
        let channel = DramChannel::new(&DramConfig::baseline());
        let mut read_q = RequestQueue::new(8);
        let write_q = RequestQueue::new(8);
        push(&mut read_q, 1, 0, 0, 5);
        let mut none = QosArbiter::new(two_tenant_cfg(QosPolicyKind::None));
        assert!(none.pick(&ctx(&channel, &read_q, &write_q)).is_none());
        let mut solo = QosArbiter::new(QosConfig {
            tenants: 1,
            ..two_tenant_cfg(QosPolicyKind::PriorityBoost)
        });
        assert!(solo.pick(&ctx(&channel, &read_q, &write_q)).is_none());
    }

    #[test]
    fn priority_boost_claims_for_the_latency_critical_tenant() {
        let channel = DramChannel::new(&DramConfig::baseline());
        let mut read_q = RequestQueue::new(8);
        let write_q = RequestQueue::new(8);
        // Batch tenant's request arrived first; the boost jumps past it.
        push(&mut read_q, 1, 1, 0, 5);
        push(&mut read_q, 2, 0, 1, 7);
        let mut arbiter = QosArbiter::new(two_tenant_cfg(QosPolicyKind::PriorityBoost));
        let decision = arbiter.pick(&ctx(&channel, &read_q, &write_q)).unwrap();
        // Cold banks: the boost issues the LC tenant's activate (bank 1).
        assert_eq!(decision.command.loc.bank, 1);
        // With only batch requests pending the arbiter declines.
        read_q.remove(2).unwrap();
        assert!(arbiter.pick(&ctx(&channel, &read_q, &write_q)).is_none());
    }

    #[test]
    fn static_partition_prefers_the_underserved_tenant() {
        let channel = DramChannel::new(&DramConfig::baseline());
        let mut read_q = RequestQueue::new(8);
        let write_q = RequestQueue::new(8);
        push(&mut read_q, 1, 0, 0, 5);
        push(&mut read_q, 2, 1, 1, 7);
        let mut arbiter = QosArbiter::new(two_tenant_cfg(QosPolicyKind::StaticPartition));
        // Fresh epoch: nobody has a deficit, the arbiter declines.
        assert!(arbiter.pick(&ctx(&channel, &read_q, &write_q)).is_none());
        // Tenant 0 has consumed the whole epoch so far: tenant 1 is owed
        // half and gets the slot.
        for _ in 0..10 {
            arbiter.on_issue(0);
        }
        let decision = arbiter.pick(&ctx(&channel, &read_q, &write_q)).unwrap();
        assert_eq!(decision.command.loc.bank, 1, "tenant 1's bank");
    }

    #[test]
    fn epoch_roll_is_catch_up_safe() {
        let mut a = QosArbiter::new(two_tenant_cfg(QosPolicyKind::StaticPartition));
        let mut b = QosArbiter::new(two_tenant_cfg(QosPolicyKind::StaticPartition));
        for _ in 0..5 {
            a.on_issue(0);
            b.on_issue(0);
        }
        // `a` rolls once at a late cycle, `b` rolls cycle by cycle: same end
        // state (several epochs crossed in one jump).
        a.roll_epoch(3_500);
        for now in 0..=3_500 {
            b.roll_epoch(now);
        }
        assert_eq!(a.served, b.served);
        assert_eq!(a.total_served, b.total_served);
        assert_eq!(a.epoch_start, b.epoch_start);
        assert_eq!(a.epoch_start, 3_000);
    }
}
