//! Statistics collected by the memory controller.

use cloudmc_dram::DramCycles;
use cloudmc_telemetry::{LatencyHistogram, HIST_BUCKETS};

use crate::request::{CompletedRequest, RowBufferOutcome, TenantId, MAX_TENANTS};

/// Counters and accumulators for one memory controller (all channels).
///
/// These feed every figure of the paper's evaluation: average memory access
/// latency (Fig. 3/10/14), row-buffer hit rate (Fig. 2/9/13), queue lengths
/// (Fig. 5/6), bandwidth utilization (Fig. 7) and the single-access row
/// activation histogram (Fig. 8).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct McStats {
    /// Completed read requests.
    pub reads_completed: u64,
    /// Completed write requests.
    pub writes_completed: u64,
    /// Sum of read latencies (arrival to data return), DRAM cycles.
    pub total_read_latency: DramCycles,
    /// Sum of write latencies (arrival to burst completion), DRAM cycles.
    pub total_write_latency: DramCycles,
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests that found the bank precharged (row miss / empty).
    pub row_misses: u64,
    /// Requests that found a different row open (row conflict).
    pub row_conflicts: u64,
    /// Histogram of column accesses served per row activation, indexed by
    /// access count (index 0 = activations closed with zero accesses,
    /// index 1 = single-access activations, ...). The last bucket aggregates
    /// everything at or above the bucket count.
    pub activation_reuse: Vec<u64>,
    /// Number of cycles over which queue lengths were sampled.
    pub queue_samples: u64,
    /// Sum of read-queue occupancies over all samples and channels.
    pub read_queue_occupancy_sum: u64,
    /// Sum of write-queue occupancies over all samples and channels.
    pub write_queue_occupancy_sum: u64,
    /// Completed requests per core (fairness analysis).
    pub completed_per_core: Vec<u64>,
    /// Sum of read latencies per core (fairness analysis).
    pub read_latency_per_core: Vec<DramCycles>,
    /// Reads completed per core.
    pub reads_per_core: Vec<u64>,
    /// Power-down actions taken by the power policy (fast/slow entries,
    /// including deepening transitions).
    pub power_downs: u64,
    /// Self-refresh entries taken by the power policy.
    pub self_refreshes: u64,
    /// Rank wakes, whether triggered by demand arrival or a due refresh.
    pub power_wakes: u64,
    /// Precharges issued by the power policy to clear a rank for power-down
    /// (power-aware policy only).
    pub power_precharges: u64,
    /// Reads completed per tenant (multi-tenant QoS accounting; index =
    /// tenant id, unused slots stay zero).
    pub reads_completed_per_tenant: [u64; MAX_TENANTS],
    /// Writes completed per tenant.
    pub writes_completed_per_tenant: [u64; MAX_TENANTS],
    /// Sum of read latencies per tenant, DRAM cycles.
    pub read_latency_per_tenant: [DramCycles; MAX_TENANTS],
    /// Row-buffer hits per tenant.
    pub row_hits_per_tenant: [u64; MAX_TENANTS],
    /// Row misses (bank empty) per tenant.
    pub row_misses_per_tenant: [u64; MAX_TENANTS],
    /// Row conflicts per tenant.
    pub row_conflicts_per_tenant: [u64; MAX_TENANTS],
    /// Sum of per-cycle read-queue occupancies per tenant (same sample count
    /// as [`McStats::queue_samples`]).
    pub read_queue_occupancy_per_tenant: [u64; MAX_TENANTS],
    /// Demand-read errors SEC-DED corrected (reliability subsystem; all of
    /// the following stay zero when no fault model is configured).
    pub ecc_corrected: u64,
    /// Demand-read errors detected but beyond correction.
    pub ecc_detected_uncorrectable: u64,
    /// Multi-bit errors that aliased to a valid codeword and silently
    /// "corrected" to wrong data (demand or scrub).
    pub ecc_miscorrects: u64,
    /// Demand re-reads issued after a corrected error (bounded backoff).
    pub demand_retries: u64,
    /// Patrol-scrub reads emitted into the queues.
    pub scrub_reads_issued: u64,
    /// Patrol-scrub reads whose data returned.
    pub scrub_reads_completed: u64,
    /// Errors corrected by patrol scrub.
    pub scrub_corrected: u64,
    /// Detected-uncorrectable errors found by patrol scrub.
    pub scrub_uncorrectable: u64,
    /// Rows retired by the repeat-offender policy.
    pub rows_retired: u64,
    /// Lines marked poisoned under poison-and-continue.
    pub lines_poisoned: u64,
    /// Demand reads that consumed a poisoned line.
    pub poisoned_reads: u64,
    /// Log2-bucket histogram of demand-read latencies (arrival to data
    /// return, DRAM cycles) across every channel this block covers.
    pub read_latency_hist: LatencyHistogram,
    /// Per-tenant demand-read latency histograms (index = tenant id; unused
    /// slots stay empty).
    pub read_latency_hist_per_tenant: [LatencyHistogram; MAX_TENANTS],
    /// Per-channel read-latency histograms, populated only on *aggregated*
    /// blocks: a single channel's block keeps this empty, and
    /// [`McStats::merge`] appends each merged leaf's overall histogram in
    /// merge order. Channels merge in index order within a controller and
    /// controllers merge in shard order, so the global vector is ordered
    /// shard-major, channel-minor — the same deterministic convention as
    /// the reliability subsystem's per-rank vectors.
    pub read_latency_hist_per_channel: Vec<LatencyHistogram>,
}

/// Number of buckets kept in the activation-reuse histogram.
pub const ACTIVATION_REUSE_BUCKETS: usize = 33;

impl McStats {
    /// Creates zeroed statistics for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            activation_reuse: vec![0; ACTIVATION_REUSE_BUCKETS],
            completed_per_core: vec![0; cores],
            read_latency_per_core: vec![0; cores],
            reads_per_core: vec![0; cores],
            ..Self::default()
        }
    }

    /// Serializes every counter in declaration order (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.u64(self.reads_completed);
        w.u64(self.writes_completed);
        w.u64(self.total_read_latency);
        w.u64(self.total_write_latency);
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.row_conflicts);
        w.u64_slice(&self.activation_reuse);
        w.u64(self.queue_samples);
        w.u64(self.read_queue_occupancy_sum);
        w.u64(self.write_queue_occupancy_sum);
        w.u64_slice(&self.completed_per_core);
        w.u64_slice(&self.read_latency_per_core);
        w.u64_slice(&self.reads_per_core);
        w.u64(self.power_downs);
        w.u64(self.self_refreshes);
        w.u64(self.power_wakes);
        w.u64(self.power_precharges);
        w.u64_slice(&self.reads_completed_per_tenant);
        w.u64_slice(&self.writes_completed_per_tenant);
        w.u64_slice(&self.read_latency_per_tenant);
        w.u64_slice(&self.row_hits_per_tenant);
        w.u64_slice(&self.row_misses_per_tenant);
        w.u64_slice(&self.row_conflicts_per_tenant);
        w.u64_slice(&self.read_queue_occupancy_per_tenant);
        w.u64(self.ecc_corrected);
        w.u64(self.ecc_detected_uncorrectable);
        w.u64(self.ecc_miscorrects);
        w.u64(self.demand_retries);
        w.u64(self.scrub_reads_issued);
        w.u64(self.scrub_reads_completed);
        w.u64(self.scrub_corrected);
        w.u64(self.scrub_uncorrectable);
        w.u64(self.rows_retired);
        w.u64(self.lines_poisoned);
        w.u64(self.poisoned_reads);
        save_hist(w, &self.read_latency_hist);
        for h in &self.read_latency_hist_per_tenant {
            save_hist(w, h);
        }
        w.usize(self.read_latency_hist_per_channel.len());
        for h in &self.read_latency_hist_per_channel {
            save_hist(w, h);
        }
    }

    /// Restores every counter from a checkpoint written by
    /// [`McStats::save_state`]; vector lengths must match the current shape.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a length
    /// mismatch against the configured core count or bucket count.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        fn read_vec(
            r: &mut cloudmc_snap::SnapReader<'_>,
            name: &str,
            vec: &mut [u64],
        ) -> Result<(), cloudmc_snap::SnapError> {
            let count = r.bounded_len(8)?;
            if count != vec.len() {
                return Err(r.bad_value(format!("{count} {name} entries, expected {}", vec.len())));
            }
            for slot in vec.iter_mut() {
                *slot = r.u64()?;
            }
            Ok(())
        }
        self.reads_completed = r.u64()?;
        self.writes_completed = r.u64()?;
        self.total_read_latency = r.u64()?;
        self.total_write_latency = r.u64()?;
        self.row_hits = r.u64()?;
        self.row_misses = r.u64()?;
        self.row_conflicts = r.u64()?;
        read_vec(r, "activation-reuse", &mut self.activation_reuse)?;
        self.queue_samples = r.u64()?;
        self.read_queue_occupancy_sum = r.u64()?;
        self.write_queue_occupancy_sum = r.u64()?;
        read_vec(r, "completed-per-core", &mut self.completed_per_core)?;
        read_vec(r, "read-latency-per-core", &mut self.read_latency_per_core)?;
        read_vec(r, "reads-per-core", &mut self.reads_per_core)?;
        self.power_downs = r.u64()?;
        self.self_refreshes = r.u64()?;
        self.power_wakes = r.u64()?;
        self.power_precharges = r.u64()?;
        read_vec(r, "reads-per-tenant", &mut self.reads_completed_per_tenant)?;
        read_vec(
            r,
            "writes-per-tenant",
            &mut self.writes_completed_per_tenant,
        )?;
        read_vec(r, "latency-per-tenant", &mut self.read_latency_per_tenant)?;
        read_vec(r, "hits-per-tenant", &mut self.row_hits_per_tenant)?;
        read_vec(r, "misses-per-tenant", &mut self.row_misses_per_tenant)?;
        read_vec(
            r,
            "conflicts-per-tenant",
            &mut self.row_conflicts_per_tenant,
        )?;
        read_vec(
            r,
            "occupancy-per-tenant",
            &mut self.read_queue_occupancy_per_tenant,
        )?;
        self.ecc_corrected = r.u64()?;
        self.ecc_detected_uncorrectable = r.u64()?;
        self.ecc_miscorrects = r.u64()?;
        self.demand_retries = r.u64()?;
        self.scrub_reads_issued = r.u64()?;
        self.scrub_reads_completed = r.u64()?;
        self.scrub_corrected = r.u64()?;
        self.scrub_uncorrectable = r.u64()?;
        self.rows_retired = r.u64()?;
        self.lines_poisoned = r.u64()?;
        self.poisoned_reads = r.u64()?;
        self.read_latency_hist = load_hist(r, "read-latency")?;
        for h in self.read_latency_hist_per_tenant.iter_mut() {
            *h = load_hist(r, "tenant-read-latency")?;
        }
        let channels = r.bounded_len(8 * (HIST_BUCKETS + 3))?;
        self.read_latency_hist_per_channel.clear();
        for _ in 0..channels {
            self.read_latency_hist_per_channel
                .push(load_hist(r, "channel-read-latency")?);
        }
        Ok(())
    }

    /// Records a completed request.
    pub fn record_completion(&mut self, done: &CompletedRequest) {
        let latency = done.latency();
        let tenant = done.request.tenant.min(MAX_TENANTS - 1);
        match done.outcome {
            RowBufferOutcome::Hit => {
                self.row_hits += 1;
                self.row_hits_per_tenant[tenant] += 1;
            }
            RowBufferOutcome::Miss => {
                self.row_misses += 1;
                self.row_misses_per_tenant[tenant] += 1;
            }
            RowBufferOutcome::Conflict => {
                self.row_conflicts += 1;
                self.row_conflicts_per_tenant[tenant] += 1;
            }
        }
        let core = done.request.core;
        if core < self.completed_per_core.len() {
            self.completed_per_core[core] += 1;
        }
        if done.request.kind.is_read() {
            self.reads_completed += 1;
            self.total_read_latency += latency;
            self.read_latency_hist.record(latency);
            self.reads_completed_per_tenant[tenant] += 1;
            self.read_latency_per_tenant[tenant] += latency;
            self.read_latency_hist_per_tenant[tenant].record(latency);
            if core < self.reads_per_core.len() {
                self.reads_per_core[core] += 1;
                self.read_latency_per_core[core] += latency;
            }
        } else {
            self.writes_completed += 1;
            self.total_write_latency += latency;
            self.writes_completed_per_tenant[tenant] += 1;
        }
    }

    /// Records that a row activation was closed after `accesses` column accesses.
    pub fn record_activation_closed(&mut self, accesses: u64) {
        if self.activation_reuse.is_empty() {
            self.activation_reuse = vec![0; ACTIVATION_REUSE_BUCKETS];
        }
        let idx = (accesses as usize).min(self.activation_reuse.len() - 1);
        self.activation_reuse[idx] += 1;
    }

    /// Records one per-cycle sample of queue occupancies.
    pub fn sample_queues(&mut self, read_len: usize, write_len: usize) {
        self.sample_queues_n(read_len, write_len, 1);
    }

    /// Records `n` consecutive per-cycle samples during which the queue
    /// occupancies did not change — the bulk form used when the kernel
    /// fast-forwards over cycles it has proven eventless. Equivalent to
    /// calling [`McStats::sample_queues`] `n` times.
    pub fn sample_queues_n(&mut self, read_len: usize, write_len: usize, n: u64) {
        self.queue_samples += n;
        self.read_queue_occupancy_sum += read_len as u64 * n;
        self.write_queue_occupancy_sum += write_len as u64 * n;
    }

    /// Records `n` consecutive per-cycle samples of per-tenant read-queue
    /// occupancy. Call alongside [`McStats::sample_queues_n`] with the same
    /// `n` so both share [`McStats::queue_samples`].
    pub fn sample_tenant_reads_n(&mut self, tenant_lens: &[usize; MAX_TENANTS], n: u64) {
        for (sum, &len) in self
            .read_queue_occupancy_per_tenant
            .iter_mut()
            .zip(tenant_lens.iter())
        {
            *sum += len as u64 * n;
        }
    }

    /// Total completed requests.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Average read latency in DRAM cycles.
    #[must_use]
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }

    /// Average latency over reads and writes in DRAM cycles.
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        let n = self.completed();
        if n == 0 {
            0.0
        } else {
            (self.total_read_latency + self.total_write_latency) as f64 / n as f64
        }
    }

    /// Row-buffer hit rate over all serviced requests (0.0–1.0).
    #[must_use]
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Fraction of row activations that served exactly one column access.
    #[must_use]
    pub fn single_access_activation_fraction(&self) -> f64 {
        let total: u64 = self.activation_reuse.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.activation_reuse.get(1).copied().unwrap_or(0) as f64 / total as f64
        }
    }

    /// Time-averaged read-queue occupancy.
    #[must_use]
    pub fn avg_read_queue_len(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.read_queue_occupancy_sum as f64 / self.queue_samples as f64
        }
    }

    /// Time-averaged write-queue occupancy.
    #[must_use]
    pub fn avg_write_queue_len(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.write_queue_occupancy_sum as f64 / self.queue_samples as f64
        }
    }

    /// Average read latency observed by one core, in DRAM cycles.
    #[must_use]
    pub fn avg_read_latency_for_core(&self, core: usize) -> f64 {
        match (
            self.reads_per_core.get(core),
            self.read_latency_per_core.get(core),
        ) {
            (Some(&n), Some(&sum)) if n > 0 => sum as f64 / n as f64,
            _ => 0.0,
        }
    }

    /// Total requests (reads plus writes) completed for one tenant.
    #[must_use]
    pub fn completed_for_tenant(&self, tenant: TenantId) -> u64 {
        if tenant >= MAX_TENANTS {
            return 0;
        }
        self.reads_completed_per_tenant[tenant] + self.writes_completed_per_tenant[tenant]
    }

    /// Average read latency observed by one tenant, in DRAM cycles.
    #[must_use]
    pub fn avg_read_latency_for_tenant(&self, tenant: TenantId) -> f64 {
        if tenant >= MAX_TENANTS || self.reads_completed_per_tenant[tenant] == 0 {
            return 0.0;
        }
        self.read_latency_per_tenant[tenant] as f64 / self.reads_completed_per_tenant[tenant] as f64
    }

    /// One tenant's share of the delivered data bandwidth (0.0–1.0): every
    /// completed request transfers exactly one cache block, so the share is
    /// the tenant's fraction of completed requests.
    #[must_use]
    pub fn bandwidth_share_for_tenant(&self, tenant: TenantId) -> f64 {
        let total = self.completed();
        if total == 0 {
            0.0
        } else {
            self.completed_for_tenant(tenant) as f64 / total as f64
        }
    }

    /// Row-buffer hit rate over one tenant's serviced requests (0.0–1.0).
    #[must_use]
    pub fn row_hit_rate_for_tenant(&self, tenant: TenantId) -> f64 {
        if tenant >= MAX_TENANTS {
            return 0.0;
        }
        let total = self.row_hits_per_tenant[tenant]
            + self.row_misses_per_tenant[tenant]
            + self.row_conflicts_per_tenant[tenant];
        if total == 0 {
            0.0
        } else {
            self.row_hits_per_tenant[tenant] as f64 / total as f64
        }
    }

    /// Time-averaged read-queue occupancy attributable to one tenant.
    #[must_use]
    pub fn avg_read_queue_len_for_tenant(&self, tenant: TenantId) -> f64 {
        if tenant >= MAX_TENANTS || self.queue_samples == 0 {
            return 0.0;
        }
        self.read_queue_occupancy_per_tenant[tenant] as f64 / self.queue_samples as f64
    }

    /// Merges another statistics block into this one (used to aggregate
    /// multiple channels or simulation samples).
    pub fn merge(&mut self, other: &Self) {
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.total_read_latency += other.total_read_latency;
        self.total_write_latency += other.total_write_latency;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        if self.activation_reuse.len() < other.activation_reuse.len() {
            self.activation_reuse
                .resize(other.activation_reuse.len(), 0);
        }
        for (i, v) in other.activation_reuse.iter().enumerate() {
            self.activation_reuse[i] += v;
        }
        self.queue_samples += other.queue_samples;
        self.read_queue_occupancy_sum += other.read_queue_occupancy_sum;
        self.write_queue_occupancy_sum += other.write_queue_occupancy_sum;
        if self.completed_per_core.len() < other.completed_per_core.len() {
            self.completed_per_core
                .resize(other.completed_per_core.len(), 0);
            self.read_latency_per_core
                .resize(other.completed_per_core.len(), 0);
            self.reads_per_core
                .resize(other.completed_per_core.len(), 0);
        }
        for (i, v) in other.completed_per_core.iter().enumerate() {
            self.completed_per_core[i] += v;
        }
        for (i, v) in other.read_latency_per_core.iter().enumerate() {
            self.read_latency_per_core[i] += v;
        }
        for (i, v) in other.reads_per_core.iter().enumerate() {
            self.reads_per_core[i] += v;
        }
        self.power_downs += other.power_downs;
        self.self_refreshes += other.self_refreshes;
        self.power_wakes += other.power_wakes;
        self.power_precharges += other.power_precharges;
        for t in 0..MAX_TENANTS {
            self.reads_completed_per_tenant[t] += other.reads_completed_per_tenant[t];
            self.writes_completed_per_tenant[t] += other.writes_completed_per_tenant[t];
            self.read_latency_per_tenant[t] += other.read_latency_per_tenant[t];
            self.row_hits_per_tenant[t] += other.row_hits_per_tenant[t];
            self.row_misses_per_tenant[t] += other.row_misses_per_tenant[t];
            self.row_conflicts_per_tenant[t] += other.row_conflicts_per_tenant[t];
            self.read_queue_occupancy_per_tenant[t] += other.read_queue_occupancy_per_tenant[t];
        }
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_detected_uncorrectable += other.ecc_detected_uncorrectable;
        self.ecc_miscorrects += other.ecc_miscorrects;
        self.demand_retries += other.demand_retries;
        self.scrub_reads_issued += other.scrub_reads_issued;
        self.scrub_reads_completed += other.scrub_reads_completed;
        self.scrub_corrected += other.scrub_corrected;
        self.scrub_uncorrectable += other.scrub_uncorrectable;
        self.rows_retired += other.rows_retired;
        self.lines_poisoned += other.lines_poisoned;
        self.poisoned_reads += other.poisoned_reads;
        self.read_latency_hist.merge(&other.read_latency_hist);
        for (mine, theirs) in self
            .read_latency_hist_per_tenant
            .iter_mut()
            .zip(other.read_latency_hist_per_tenant.iter())
        {
            mine.merge(theirs);
        }
        // Per-channel resolution is assembled at merge time: a leaf block
        // (one channel, empty per-channel vector) contributes its overall
        // histogram as one entry; an already-aggregated block contributes
        // its entries in order. Merging channels in index order and shards
        // in shard order thus yields the global shard-major ordering.
        if other.read_latency_hist_per_channel.is_empty() {
            self.read_latency_hist_per_channel
                .push(other.read_latency_hist.clone());
        } else {
            self.read_latency_hist_per_channel
                .extend(other.read_latency_hist_per_channel.iter().cloned());
        }
    }
}

/// Serializes one histogram (bucket counts, count, sum, raw max).
fn save_hist(w: &mut cloudmc_snap::SnapWriter, h: &LatencyHistogram) {
    w.u64_slice(h.bucket_counts());
    w.u64(h.count());
    w.u64(h.sum());
    w.u64(h.max().unwrap_or(0));
}

/// Restores one histogram written by [`save_hist`], rejecting shape or
/// consistency violations as typed snapshot errors.
fn load_hist(
    r: &mut cloudmc_snap::SnapReader<'_>,
    name: &str,
) -> Result<LatencyHistogram, cloudmc_snap::SnapError> {
    let len = r.bounded_len(8)?;
    if len != HIST_BUCKETS {
        return Err(r.bad_value(format!(
            "{len} {name} histogram buckets, expected {HIST_BUCKETS}"
        )));
    }
    let mut counts = [0u64; HIST_BUCKETS];
    for slot in counts.iter_mut() {
        *slot = r.u64()?;
    }
    let count = r.u64()?;
    let sum = r.u64()?;
    let max = r.u64()?;
    match LatencyHistogram::from_parts(counts, count, sum, max) {
        Some(h) => Ok(h),
        None => Err(r.bad_value(format!("inconsistent {name} histogram counts"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::Location;

    fn completed(
        kind: AccessKind,
        core: usize,
        outcome: RowBufferOutcome,
        latency: u64,
    ) -> CompletedRequest {
        CompletedRequest {
            request: MemoryRequest::new(1, kind, 0, core, 100),
            channel: 0,
            location: Location::new(0, 0, 0, 0),
            issue: 100 + latency.saturating_sub(10),
            completion: 100 + latency,
            outcome,
            retries: 0,
        }
    }

    #[test]
    fn record_completion_updates_latency_and_hits() {
        let mut s = McStats::new(4);
        s.record_completion(&completed(AccessKind::Read, 1, RowBufferOutcome::Hit, 30));
        s.record_completion(&completed(
            AccessKind::Read,
            1,
            RowBufferOutcome::Conflict,
            90,
        ));
        s.record_completion(&completed(AccessKind::Write, 2, RowBufferOutcome::Miss, 60));
        assert_eq!(s.reads_completed, 2);
        assert_eq!(s.writes_completed, 1);
        assert!((s.avg_read_latency() - 60.0).abs() < 1e-9);
        assert!((s.avg_latency() - 60.0).abs() < 1e-9);
        assert!((s.row_buffer_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.completed_per_core[1], 2);
        assert!((s.avg_read_latency_for_core(1) - 60.0).abs() < 1e-9);
        assert_eq!(s.avg_read_latency_for_core(3), 0.0);
    }

    #[test]
    fn activation_histogram_and_single_access_fraction() {
        let mut s = McStats::new(1);
        s.record_activation_closed(1);
        s.record_activation_closed(1);
        s.record_activation_closed(1);
        s.record_activation_closed(5);
        assert!((s.single_access_activation_fraction() - 0.75).abs() < 1e-9);
        // Out-of-range counts land in the last bucket without panicking.
        s.record_activation_closed(10_000);
        assert_eq!(*s.activation_reuse.last().unwrap(), 1);
    }

    #[test]
    fn queue_sampling_averages() {
        let mut s = McStats::new(1);
        s.sample_queues(4, 10);
        s.sample_queues(6, 30);
        assert!((s.avg_read_queue_len() - 5.0).abs() < 1e-9);
        assert!((s.avg_write_queue_len() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_return_zeroes() {
        let s = McStats::new(2);
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_buffer_hit_rate(), 0.0);
        assert_eq!(s.avg_read_queue_len(), 0.0);
        assert_eq!(s.single_access_activation_fraction(), 0.0);
    }

    #[test]
    fn per_tenant_completion_accounting() {
        let mut s = McStats::new(4);
        let mut hit = completed(AccessKind::Read, 0, RowBufferOutcome::Hit, 40);
        hit.request.tenant = 0;
        let mut conflict = completed(AccessKind::Read, 1, RowBufferOutcome::Conflict, 120);
        conflict.request.tenant = 1;
        let mut write = completed(AccessKind::Write, 1, RowBufferOutcome::Miss, 60);
        write.request.tenant = 1;
        s.record_completion(&hit);
        s.record_completion(&conflict);
        s.record_completion(&write);
        assert_eq!(s.reads_completed_per_tenant[..2], [1, 1]);
        assert_eq!(s.writes_completed_per_tenant[..2], [0, 1]);
        assert!((s.avg_read_latency_for_tenant(0) - 40.0).abs() < 1e-9);
        assert!((s.avg_read_latency_for_tenant(1) - 120.0).abs() < 1e-9);
        assert!((s.row_hit_rate_for_tenant(0) - 1.0).abs() < 1e-9);
        assert!((s.row_hit_rate_for_tenant(1) - 0.0).abs() < 1e-9);
        assert!((s.bandwidth_share_for_tenant(1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.completed_for_tenant(1), 2);
        // Out-of-range tenant queries are zero, not a panic.
        assert_eq!(s.avg_read_latency_for_tenant(99), 0.0);
        assert_eq!(s.bandwidth_share_for_tenant(99), 0.0);
    }

    #[test]
    fn per_tenant_queue_sampling_shares_the_sample_count() {
        let mut s = McStats::new(1);
        s.sample_queues_n(5, 0, 10);
        s.sample_tenant_reads_n(&[3, 2, 0, 0], 10);
        assert!((s.avg_read_queue_len_for_tenant(0) - 3.0).abs() < 1e-9);
        assert!((s.avg_read_queue_len_for_tenant(1) - 2.0).abs() < 1e-9);
        assert_eq!(s.avg_read_queue_len_for_tenant(3), 0.0);
    }

    #[test]
    fn read_latencies_feed_the_histograms() {
        let mut s = McStats::new(4);
        let mut read = completed(AccessKind::Read, 0, RowBufferOutcome::Hit, 30);
        read.request.tenant = 1;
        s.record_completion(&read);
        s.record_completion(&completed(AccessKind::Write, 0, RowBufferOutcome::Miss, 60));
        // Only reads are recorded; writes leave every histogram untouched.
        assert_eq!(s.read_latency_hist.count(), 1);
        assert_eq!(s.read_latency_hist.max(), Some(30));
        assert_eq!(s.read_latency_hist_per_tenant[1].count(), 1);
        assert!(s.read_latency_hist_per_tenant[0].is_empty());
        // A leaf block never populates the per-channel vector itself.
        assert!(s.read_latency_hist_per_channel.is_empty());
    }

    #[test]
    fn merge_concatenates_per_channel_histograms_in_merge_order() {
        let mut ch0 = McStats::new(1);
        ch0.record_completion(&completed(AccessKind::Read, 0, RowBufferOutcome::Hit, 10));
        let mut ch1 = McStats::new(1);
        ch1.record_completion(&completed(AccessKind::Read, 0, RowBufferOutcome::Hit, 500));
        let mut shard_a = McStats::new(1);
        shard_a.merge(&ch0);
        shard_a.merge(&ch1);
        assert_eq!(shard_a.read_latency_hist_per_channel.len(), 2);
        assert_eq!(shard_a.read_latency_hist_per_channel[0].max(), Some(10));
        assert_eq!(shard_a.read_latency_hist_per_channel[1].max(), Some(500));

        // Merging an aggregated block concatenates its entries after ours:
        // shard-order merging yields shard-major, channel-minor ordering.
        let mut ch2 = McStats::new(1);
        ch2.record_completion(&completed(
            AccessKind::Read,
            0,
            RowBufferOutcome::Miss,
            9000,
        ));
        let mut shard_b = McStats::new(1);
        shard_b.merge(&ch2);
        let mut global = McStats::new(1);
        global.merge(&shard_a);
        global.merge(&shard_b);
        let maxes: Vec<_> = global
            .read_latency_hist_per_channel
            .iter()
            .map(|h| h.max())
            .collect();
        assert_eq!(maxes, vec![Some(10), Some(500), Some(9000)]);
        assert_eq!(global.read_latency_hist.count(), 3);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = McStats::new(2);
        let mut b = McStats::new(2);
        a.record_completion(&completed(AccessKind::Read, 0, RowBufferOutcome::Hit, 10));
        b.record_completion(&completed(
            AccessKind::Read,
            1,
            RowBufferOutcome::Conflict,
            50,
        ));
        b.record_activation_closed(1);
        b.sample_queues(3, 7);
        b.ecc_corrected = 2;
        b.ecc_detected_uncorrectable = 1;
        b.demand_retries = 4;
        b.scrub_reads_issued = 9;
        b.rows_retired = 1;
        b.lines_poisoned = 3;
        b.poisoned_reads = 5;
        a.merge(&b);
        assert_eq!(a.reads_completed, 2);
        assert_eq!(a.row_conflicts, 1);
        assert_eq!(a.completed_per_core[1], 1);
        assert_eq!(a.queue_samples, 1);
        assert_eq!(a.activation_reuse[1], 1);
        assert_eq!(a.ecc_corrected, 2);
        assert_eq!(a.ecc_detected_uncorrectable, 1);
        assert_eq!(a.demand_retries, 4);
        assert_eq!(a.scrub_reads_issued, 9);
        assert_eq!(a.rows_retired, 1);
        assert_eq!(a.lines_poisoned, 3);
        assert_eq!(a.poisoned_reads, 5);
    }
}
