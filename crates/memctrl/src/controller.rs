//! The memory controller proper: per-channel command generation combining a
//! scheduling algorithm, a page-management policy, write draining and
//! refresh handling.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cloudmc_dram::{
    ChannelStats, Command, DramChannel, DramConfig, DramCycles, FaultConfig, FaultLedger,
    FaultModel, Location, PowerDownMode, ReadFault, UncorrectablePolicy,
};
use cloudmc_snap::{SnapError, SnapReader, SnapWriter};

use crate::mapping::{AddressMapping, DecodedAddress};
use crate::page::{PagePolicyImpl, PagePolicyKind, PolicyView};
use crate::power::{PowerAction, PowerPolicyImpl, PowerPolicyKind};
use crate::qos::{QosArbiter, QosConfig};
use crate::queue::RequestQueue;
use crate::request::{
    AccessKind, CompletedRequest, MemoryRequest, RequestId, RowBufferOutcome, MAX_TENANTS,
};
use crate::sched::{SchedContext, SchedDecision, SchedulerImpl, SchedulerKind};
use crate::stats::McStats;

/// Id bit marking controller-generated patrol-scrub reads. Demand request
/// ids are assigned sequentially by the frontend and never reach this range.
pub const SCRUB_ID_BIT: u64 = 1 << 63;

/// Whether a request id denotes a controller-generated patrol-scrub read.
#[must_use]
pub fn is_scrub_id(id: RequestId) -> bool {
    id & SCRUB_ID_BIT != 0
}

/// Configuration of a complete memory controller (all channels).
///
/// Defaults reproduce the paper's baseline (Table 2): FR-FCFS scheduling,
/// open-adaptive page policy, no power management, one channel, `RoRaBaCoCh`
/// address mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// Address interleaving scheme.
    pub mapping: AddressMapping,
    /// Memory scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Page-management policy.
    pub page_policy: PagePolicyKind,
    /// Rank power-management policy.
    pub power_policy: PowerPolicyKind,
    /// Multi-tenant QoS policy and tenant metadata (tenancy disabled by
    /// default; the simulator fills this from the workload mix).
    pub qos: QosConfig,
    /// Number of cores sharing the controller.
    pub num_cores: usize,
    /// Per-channel read queue capacity.
    pub read_queue_capacity: usize,
    /// Per-channel write queue capacity.
    pub write_queue_capacity: usize,
    /// Write-queue occupancy at which the controller switches to write drain.
    pub write_drain_high: usize,
    /// Write-queue occupancy at which the controller resumes serving reads.
    pub write_drain_low: usize,
    /// Optional DRAM reliability model: seeded fault injection, SEC-DED ECC
    /// accounting, demand retries, patrol scrub and row retirement. `None`
    /// (the default) leaves the controller's behavior and statistics
    /// bit-identical to a controller built without the subsystem.
    pub fault_model: Option<FaultConfig>,
}

impl McConfig {
    /// The paper's baseline configuration.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            dram: DramConfig::baseline(),
            mapping: AddressMapping::RoRaBaCoCh,
            scheduler: SchedulerKind::FrFcfs,
            page_policy: PagePolicyKind::OpenAdaptive,
            power_policy: PowerPolicyKind::None,
            qos: QosConfig::none(),
            num_cores: 16,
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            write_drain_high: 32,
            write_drain_low: 8,
            fault_model: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.dram.validate()?;
        self.qos.validate()?;
        if self.num_cores == 0 {
            return Err("num_cores must be non-zero".to_owned());
        }
        if self.read_queue_capacity == 0 || self.write_queue_capacity == 0 {
            return Err("queue capacities must be non-zero".to_owned());
        }
        if self.write_drain_low >= self.write_drain_high {
            return Err(format!(
                "write_drain_low ({}) must be below write_drain_high ({})",
                self.write_drain_low, self.write_drain_high
            ));
        }
        if self.write_drain_high > self.write_queue_capacity {
            return Err(format!(
                "write_drain_high ({}) must not exceed write_queue_capacity ({})",
                self.write_drain_high, self.write_queue_capacity
            ));
        }
        if let Some(fault) = &self.fault_model {
            fault.validate(self.dram.banks_per_rank, self.dram.rows_per_bank)?;
        }
        Ok(())
    }
}

impl Default for McConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// A request whose column access has issued and whose data completes at a
/// known cycle.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    completion: DramCycles,
    done: CompletedRequest,
}

/// Per-channel reliability state: the device fault model plus the
/// controller-side ECC machinery (demand retries, patrol scrub, row
/// retirement, line poisoning).
///
/// All bookkeeping uses ordered collections and closed-form decisions so the
/// subsystem is bit-identical under fast-forward and for any worker-thread
/// count.
#[derive(Debug)]
struct FaultState {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: FaultConfig,
    model: FaultModel,
    /// DRAM geometry for the patrol cursor.
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    ranks: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    banks_per_rank: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    rows_per_bank: u64,
    /// Corrected demand reads parked for a bounded-backoff retry:
    /// due cycle -> FIFO of (request, location, next attempt number).
    retry_pending: BTreeMap<DramCycles, VecDeque<(MemoryRequest, Location, u32)>>,
    // simlint: allow(snapshot-coverage) derived: sum of retry_pending bucket lengths, recomputed on load
    retry_len: usize,
    /// Attempt number for demand reads currently re-enqueued as retries.
    attempts: BTreeMap<RequestId, u32>,
    /// Next cycle at which the patrol scrubber wants to emit a read
    /// (`DramCycles::MAX` when scrubbing is disabled).
    next_scrub_at: DramCycles,
    /// Patrol position: next (rank, bank, row) granule to scrub.
    scrub_cursor: (usize, usize, u64),
    scrub_seq: u64,
    /// Scrub reads currently occupying the read queue or in flight; excluded
    /// from demand `pending()` accounting.
    scrub_live: usize,
    /// Detected error counts per row, feeding repeat-offender retirement.
    row_errors: BTreeMap<(usize, usize, u64), u32>,
    /// Retired rows: the remap table. Reads to retired rows are served from
    /// the healthy spare, so they never fault again.
    retired: BTreeSet<(usize, usize, u64)>,
    rows_retired_per_rank: Vec<u64>,
    /// Poisoned lines (rank, bank, row, column) under poison-and-continue.
    poisoned: BTreeSet<(usize, usize, u64, u64)>,
    /// First uncorrectable error seen under fail-stop; surfaced by the
    /// simulator as a typed error once the run finishes — never a panic.
    error: Option<String>,
}

impl FaultState {
    fn new(cfg: FaultConfig, channel: usize, dram: &DramConfig) -> Self {
        let model = FaultModel::new(
            cfg,
            channel,
            dram.ranks_per_channel,
            dram.banks_per_rank,
            dram.rows_per_bank,
        );
        Self {
            cfg,
            model,
            ranks: dram.ranks_per_channel,
            banks_per_rank: dram.banks_per_rank,
            rows_per_bank: dram.rows_per_bank,
            retry_pending: BTreeMap::new(),
            retry_len: 0,
            attempts: BTreeMap::new(),
            next_scrub_at: if cfg.scrub_interval > 0 {
                cfg.scrub_interval
            } else {
                DramCycles::MAX
            },
            scrub_cursor: (0, 0, 0),
            scrub_seq: 0,
            scrub_live: 0,
            row_errors: BTreeMap::new(),
            retired: BTreeSet::new(),
            rows_retired_per_rank: vec![0; dram.ranks_per_channel],
            poisoned: BTreeSet::new(),
            error: None,
        }
    }

    /// Advances the patrol cursor one row granule, wrapping row -> bank ->
    /// rank.
    fn advance_scrub_cursor(&mut self) {
        let (rank, bank, row) = self.scrub_cursor;
        self.scrub_cursor = if row + 1 < self.rows_per_bank {
            (rank, bank, row + 1)
        } else if bank + 1 < self.banks_per_rank {
            (rank, bank + 1, 0)
        } else {
            ((rank + 1) % self.ranks, 0, 0)
        };
    }

    /// Records a detected error on a row and retires it once it crosses the
    /// repeat-offender threshold. Returns `true` if the row was retired now.
    fn note_row_error(&mut self, rank: usize, bank: usize, row: u64) -> bool {
        let key = (rank, bank, row);
        if self.retired.contains(&key) {
            return false;
        }
        let count = self.row_errors.entry(key).or_insert(0);
        *count += 1;
        if *count >= self.cfg.retire_threshold {
            self.row_errors.remove(&key);
            self.retired.insert(key);
            self.rows_retired_per_rank[rank] += 1;
            return true;
        }
        false
    }

    /// Serializes the reliability subsystem's mutable state (checkpoint
    /// support). Geometry and configuration are config-derived; the ordered
    /// collections serialize in their natural iteration order, which is
    /// deterministic by construction.
    fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("fault-state");
        self.model.save_state(w);
        w.usize(self.retry_pending.len());
        for (&due, bucket) in &self.retry_pending {
            w.u64(due);
            w.usize(bucket.len());
            for (request, location, attempt) in bucket {
                crate::snapio::write_request(w, request);
                crate::snapio::write_location(w, *location);
                w.u32(*attempt);
            }
        }
        w.usize(self.attempts.len());
        for (&id, &attempt) in &self.attempts {
            w.u64(id);
            w.u32(attempt);
        }
        w.u64(self.next_scrub_at);
        w.usize(self.scrub_cursor.0);
        w.usize(self.scrub_cursor.1);
        w.u64(self.scrub_cursor.2);
        w.u64(self.scrub_seq);
        w.usize(self.scrub_live);
        w.usize(self.row_errors.len());
        for (&(rank, bank, row), &count) in &self.row_errors {
            w.usize(rank);
            w.usize(bank);
            w.u64(row);
            w.u32(count);
        }
        w.usize(self.retired.len());
        for &(rank, bank, row) in &self.retired {
            w.usize(rank);
            w.usize(bank);
            w.u64(row);
        }
        w.u64_slice(&self.rows_retired_per_rank);
        w.usize(self.poisoned.len());
        for &(rank, bank, row, column) in &self.poisoned {
            w.usize(rank);
            w.usize(bank);
            w.u64(row);
            w.u64(column);
        }
        match &self.error {
            None => w.u8(0),
            Some(msg) => {
                w.u8(1);
                w.str(msg);
            }
        }
    }

    /// Restores the reliability subsystem's mutable state from a checkpoint.
    fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("fault-state")?;
        self.model.load_state(r)?;
        let check_loc = |r: &SnapReader<'_>,
                         rank: usize,
                         bank: usize,
                         row: u64,
                         ranks: usize,
                         banks: usize,
                         rows: u64|
         -> Result<(), cloudmc_snap::SnapError> {
            if rank >= ranks || bank >= banks || row >= rows {
                return Err(r.bad_value(format!(
                    "coordinates ({rank}, {bank}, {row}) outside geometry \
                     ({ranks} ranks, {banks} banks, {rows} rows)"
                )));
            }
            Ok(())
        };
        let buckets = r.bounded_len(8)?;
        self.retry_pending.clear();
        self.retry_len = 0;
        for _ in 0..buckets {
            let due = r.u64()?;
            let len = r.bounded_len(42)?;
            let mut bucket = VecDeque::with_capacity(len);
            for _ in 0..len {
                let request = crate::snapio::read_request(r)?;
                let location = crate::snapio::read_location(r)?;
                let attempt = r.u32()?;
                bucket.push_back((request, location, attempt));
            }
            self.retry_len += bucket.len();
            if self.retry_pending.insert(due, bucket).is_some() {
                return Err(r.bad_value(format!("duplicate retry bucket at cycle {due}")));
            }
        }
        let count = r.bounded_len(12)?;
        self.attempts.clear();
        for _ in 0..count {
            let id = r.u64()?;
            let attempt = r.u32()?;
            self.attempts.insert(id, attempt);
        }
        self.next_scrub_at = r.u64()?;
        let rank = r.usize()?;
        let bank = r.usize()?;
        let row = r.u64()?;
        check_loc(
            r,
            rank,
            bank,
            row,
            self.ranks,
            self.banks_per_rank,
            self.rows_per_bank,
        )?;
        self.scrub_cursor = (rank, bank, row);
        self.scrub_seq = r.u64()?;
        self.scrub_live = r.usize()?;
        let count = r.bounded_len(28)?;
        self.row_errors.clear();
        for _ in 0..count {
            let rank = r.usize()?;
            let bank = r.usize()?;
            let row = r.u64()?;
            let errors = r.u32()?;
            self.row_errors.insert((rank, bank, row), errors);
        }
        let count = r.bounded_len(24)?;
        self.retired.clear();
        for _ in 0..count {
            let rank = r.usize()?;
            let bank = r.usize()?;
            let row = r.u64()?;
            self.retired.insert((rank, bank, row));
        }
        let count = r.bounded_len(8)?;
        if count != self.rows_retired_per_rank.len() {
            return Err(r.bad_value(format!(
                "{count} per-rank retirement counters, expected {}",
                self.rows_retired_per_rank.len()
            )));
        }
        for slot in &mut self.rows_retired_per_rank {
            *slot = r.u64()?;
        }
        let count = r.bounded_len(32)?;
        self.poisoned.clear();
        for _ in 0..count {
            let rank = r.usize()?;
            let bank = r.usize()?;
            let row = r.u64()?;
            let column = r.u64()?;
            self.poisoned.insert((rank, bank, row, column));
        }
        self.error = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            t => return Err(r.bad_value(format!("latched-error tag {t}"))),
        };
        Ok(())
    }

    /// Classifies a read against the fault model, honoring the remap table:
    /// retired rows are served from healthy spares and never fault.
    fn classify(
        &mut self,
        id: RequestId,
        attempt: u32,
        loc: &Location,
        residency: &cloudmc_dram::PowerResidency,
    ) -> ReadFault {
        if self.retired.contains(&(loc.rank, loc.bank, loc.row)) {
            return ReadFault::None;
        }
        self.model
            .classify_read(id, attempt, loc.rank, loc.bank, loc.row, residency)
    }
}

/// Controller state for one memory channel.
#[derive(Debug)]
struct ChannelController {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    index: usize,
    channel: DramChannel,
    read_q: RequestQueue,
    write_q: RequestQueue,
    scheduler: SchedulerImpl,
    policy: PagePolicyImpl,
    power_policy: PowerPolicyImpl,
    qos: QosArbiter,
    write_mode: bool,
    inflight: Vec<InFlight>,
    /// Per flat-bank flag: a conflict-induced precharge has been issued and
    /// the next activation of that bank serves a row-conflict request.
    conflict_pending: Vec<bool>,
    /// Per flat-bank flag: the currently open row was activated after a
    /// conflict-induced precharge.
    activated_after_conflict: Vec<bool>,
    stats: McStats,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    write_drain_high: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    write_drain_low: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    num_cores: usize,
    /// Reliability subsystem; `None` keeps the controller bit-identical to a
    /// build without it (no extra work on any hot path).
    fault: Option<Box<FaultState>>,
}

impl ChannelController {
    fn new(index: usize, cfg: &McConfig) -> Self {
        let total_banks = cfg.dram.banks_per_channel();
        Self {
            index,
            channel: DramChannel::new(&cfg.dram),
            read_q: RequestQueue::new(cfg.read_queue_capacity),
            write_q: RequestQueue::new(cfg.write_queue_capacity),
            scheduler: cfg.scheduler.build_impl(cfg.num_cores),
            policy: cfg
                .page_policy
                .build_impl(cfg.dram.ranks_per_channel, cfg.dram.banks_per_rank),
            power_policy: cfg.power_policy.build_impl(cfg.dram.ranks_per_channel),
            qos: QosArbiter::new(cfg.qos),
            write_mode: false,
            inflight: Vec::new(),
            conflict_pending: vec![false; total_banks],
            activated_after_conflict: vec![false; total_banks],
            stats: McStats::new(cfg.num_cores),
            write_drain_high: cfg.write_drain_high,
            write_drain_low: cfg.write_drain_low,
            num_cores: cfg.num_cores,
            fault: cfg
                .fault_model
                .map(|fc| Box::new(FaultState::new(fc, index, &cfg.dram))),
        }
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => !self.read_q.is_full(),
            AccessKind::Write => !self.write_q.is_full(),
        }
    }

    /// Serializes the channel's mutable state: device, queues, scheduler,
    /// policies, arbiter, in-flight transfers, statistics and the optional
    /// reliability subsystem (checkpoint support).
    fn save_state(&self, w: &mut SnapWriter) {
        w.section("channel");
        self.channel.save_state(w);
        self.read_q.save_state(w);
        self.write_q.save_state(w);
        self.scheduler.save_state(w);
        self.policy.save_state(w);
        self.power_policy.save_state(w);
        self.qos.save_state(w);
        w.bool(self.write_mode);
        w.usize(self.inflight.len());
        for inflight in &self.inflight {
            w.u64(inflight.completion);
            crate::snapio::write_completed(w, &inflight.done);
        }
        for flags in [&self.conflict_pending, &self.activated_after_conflict] {
            w.usize(flags.len());
            for &flag in flags {
                w.bool(flag);
            }
        }
        self.stats.save_state(w);
        match &self.fault {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                f.save_state(w);
            }
        }
    }

    /// Restores the channel's mutable state from a checkpoint. The channel
    /// must have been built from the same configuration as the saved one.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("channel")?;
        self.channel.load_state(r)?;
        self.read_q.load_state(r)?;
        self.write_q.load_state(r)?;
        self.scheduler.load_state(r)?;
        self.policy.load_state(r)?;
        self.power_policy.load_state(r)?;
        self.qos.load_state(r)?;
        self.write_mode = r.bool()?;
        let count = r.bounded_len(50)?;
        self.inflight.clear();
        for _ in 0..count {
            let completion = r.u64()?;
            let done = crate::snapio::read_completed(r)?;
            self.inflight.push(InFlight { completion, done });
        }
        for flags in [
            &mut self.conflict_pending,
            &mut self.activated_after_conflict,
        ] {
            let count = r.bounded_len(1)?;
            if count != flags.len() {
                return Err(
                    r.bad_value(format!("{count} per-bank flags, expected {}", flags.len()))
                );
            }
            for flag in flags.iter_mut() {
                *flag = r.bool()?;
            }
        }
        self.stats.load_state(r)?;
        match (r.u8()?, self.fault.as_deref_mut()) {
            (0, None) => Ok(()),
            (1, Some(f)) => f.load_state(r),
            (0, Some(_)) => Err(r.bad_value("snapshot lacks the configured fault model state")),
            (1, None) => {
                Err(r.bad_value("snapshot carries fault model state but none is configured"))
            }
            (t, _) => Err(r.bad_value(format!("fault-state tag {t}"))),
        }
    }

    /// Demand requests queued, in flight or parked for retry. Patrol-scrub
    /// reads physically occupy the queues but are controller-generated, so
    /// they are excluded here: the frontend must not stall its exit condition
    /// on background scrub traffic.
    fn pending(&self) -> usize {
        let base = self.read_q.len() + self.write_q.len() + self.inflight.len();
        match &self.fault {
            Some(f) => base + f.retry_len - f.scrub_live,
            None => base,
        }
    }

    /// Pending demand requests (queued, in flight or parked for retry) per
    /// tenant. Scrub reads carry tenant 0 but are not demand traffic.
    fn pending_per_tenant(&self) -> [u64; MAX_TENANTS] {
        let mut out = [0u64; MAX_TENANTS];
        for (slot, (&r, &w)) in out.iter_mut().zip(
            self.read_q
                .tenant_lens()
                .iter()
                .zip(self.write_q.tenant_lens().iter()),
        ) {
            *slot = (r + w) as u64;
        }
        for inflight in &self.inflight {
            out[inflight.done.request.tenant.min(MAX_TENANTS - 1)] += 1;
        }
        if let Some(f) = &self.fault {
            out[0] -= f.scrub_live as u64;
            for bucket in f.retry_pending.values() {
                for (request, _, _) in bucket {
                    out[request.tenant.min(MAX_TENANTS - 1)] += 1;
                }
            }
        }
        out
    }

    fn enqueue(
        &mut self,
        request: MemoryRequest,
        location: Location,
        now: DramCycles,
    ) -> Result<(), MemoryRequest> {
        let queue = match request.kind {
            AccessKind::Read => &mut self.read_q,
            AccessKind::Write => &mut self.write_q,
        };
        queue.push(request, location, now)?;
        let entry = *match request.kind {
            AccessKind::Read => self.read_q.get(request.id),
            AccessKind::Write => self.write_q.get(request.id),
        }
        // simlint: allow(panic) lookup of the entry pushed two lines above
        .expect("entry just pushed");
        self.scheduler.on_enqueue(&entry);
        // Demand arrival wakes a powered-down rank immediately: the exit
        // latency (tXP/tXPDLL/tXS) becomes part of the request's observed
        // latency, which is exactly the cost side of the power tradeoff.
        self.power_policy.on_activity(location.rank, now);
        if self.channel.power_state(location.rank).is_powered_down() {
            self.channel.wake_rank(location.rank, now);
            self.stats.power_wakes += 1;
        }
        Ok(())
    }

    fn update_write_mode(&mut self) {
        if self.scheduler.manages_write_drain() {
            self.write_mode = false;
            return;
        }
        if self.write_q.len() >= self.write_drain_high {
            self.write_mode = true;
        } else if self.write_mode
            && (self.write_q.len() <= self.write_drain_low || self.write_q.is_empty())
        {
            self.write_mode = false;
        }
        // Opportunistic switches when one side is empty.
        if self.read_q.is_empty() && !self.write_q.is_empty() {
            self.write_mode = true;
        } else if self.write_q.is_empty() {
            self.write_mode = false;
        }
    }

    fn flat_bank(&self, loc: &Location) -> usize {
        loc.flat_bank(self.channel.banks_per_rank())
    }

    /// Classifies the row-buffer outcome of a column access issued to `loc`,
    /// given how many accesses the open row had already served.
    ///
    /// The first access after an activation pays the activation (and possibly
    /// precharge) latency — a miss or conflict; subsequent accesses to the
    /// open row are row-buffer hits.
    fn classify_access(&self, loc: &Location, accesses_before: u64) -> RowBufferOutcome {
        if accesses_before >= 1 {
            RowBufferOutcome::Hit
        } else if self.activated_after_conflict[self.flat_bank(loc)] {
            RowBufferOutcome::Conflict
        } else {
            RowBufferOutcome::Miss
        }
    }

    /// Closes the row currently open in (`rank`, `bank`) for bookkeeping
    /// purposes, recording the activation-reuse histogram and notifying the
    /// page policy.
    fn note_row_closed(&mut self, rank: usize, bank: usize, accesses: u64) {
        if let Some(row) = self.channel.open_row(rank, bank) {
            self.stats.record_activation_closed(accesses);
            self.policy.on_row_closed(rank, bank, row, accesses);
        }
    }

    /// Issues a policy precharge to the open row of (`rank`, `bank`) if one
    /// is open and the command is legal at `now`, with the row-close
    /// bookkeeping. Returns `true` if the precharge issued.
    fn try_precharge(&mut self, rank: usize, bank: usize, now: DramCycles) -> bool {
        let Some(row) = self.channel.open_row(rank, bank) else {
            return false;
        };
        let pre = Command::precharge(Location::new(rank, bank, row, 0));
        if !self.channel.can_issue(&pre, now) {
            return false;
        }
        let accesses = self.channel.accesses_since_activate(rank, bank);
        self.note_row_closed(rank, bank, accesses);
        self.channel.issue(&pre, now);
        true
    }

    /// Attempts to make progress on refresh; returns `true` if a command was
    /// issued this cycle.
    fn handle_refresh(&mut self, now: DramCycles) -> bool {
        let Some(rank) = self.channel.refresh_due(now) else {
            return false;
        };
        // A rank that slept past its refresh deadline (fast/slow power-down;
        // self-refresh never comes due) is woken first. CKE is a dedicated
        // pin, so the wake does not occupy the command bus: fall through and
        // let this cycle still issue a command (the REF itself only becomes
        // legal once the exit latency has elapsed).
        if self.channel.power_state(rank).is_powered_down() {
            self.channel.wake_rank(rank, now);
            self.stats.power_wakes += 1;
        }
        let refresh = Command::refresh(rank);
        if self.channel.can_issue(&refresh, now) {
            self.channel.issue(&refresh, now);
            return true;
        }
        // Postpone lightly-loaded refreshes; force bank closure once the
        // backlog grows to two full intervals.
        if self.channel.refresh_backlog(rank, now) >= 2 {
            for bank in 0..self.channel.banks_per_rank() {
                if self.try_precharge(rank, bank, now) {
                    return true;
                }
            }
        }
        false
    }

    /// Executes a scheduler decision. Returns `true` if a command was issued.
    fn execute(&mut self, decision: SchedDecision, now: DramCycles) -> bool {
        let loc = decision.command.loc;
        self.power_policy.on_activity(loc.rank, now);
        match decision.request_id {
            Some(id) => {
                // Column access completing a request: apply the page policy's
                // auto-precharge decision, then issue.
                let auto_precharge = {
                    let view = PolicyView {
                        now,
                        channel: &self.channel,
                        read_q: &self.read_q,
                        write_q: &self.write_q,
                    };
                    self.policy.auto_precharge(&view, &loc)
                };
                let entry = self
                    .read_q
                    .remove(id)
                    .or_else(|| self.write_q.remove(id))
                    // simlint: allow(panic) scheduler only returns ids it was shown from the queues
                    .expect("scheduled request must be queued");
                // Every data transfer is charged to its tenant, whether the
                // scheduler or the QoS arbiter picked it — the partition
                // accounting must see the whole delivered bandwidth.
                self.qos.on_issue(entry.request.tenant);
                let command = match entry.request.kind {
                    AccessKind::Read => Command::read(loc, auto_precharge),
                    AccessKind::Write => Command::write(loc, auto_precharge),
                };
                debug_assert!(self.channel.can_issue(&command, now));
                let accesses_before = self.channel.accesses_since_activate(loc.rank, loc.bank);
                let outcome = self.classify_access(&loc, accesses_before);
                let issue = self.channel.issue(&command, now);
                self.policy
                    .on_column_access(loc.rank, loc.bank, loc.row, now);
                if auto_precharge {
                    self.stats.record_activation_closed(accesses_before + 1);
                    self.policy
                        .on_row_closed(loc.rank, loc.bank, loc.row, accesses_before + 1);
                }
                self.inflight.push(InFlight {
                    completion: issue.completion_cycle,
                    done: CompletedRequest {
                        request: entry.request,
                        channel: self.index,
                        location: loc,
                        issue: now,
                        completion: issue.completion_cycle,
                        outcome,
                        retries: 0,
                    },
                });
                true
            }
            None => {
                debug_assert!(self.channel.can_issue(&decision.command, now));
                let flat = self.flat_bank(&loc);
                match decision.command.kind {
                    cloudmc_dram::CommandKind::Activate => {
                        self.channel.issue(&decision.command, now);
                        self.policy.on_activate(loc.rank, loc.bank, loc.row, now);
                        self.activated_after_conflict[flat] = self.conflict_pending[flat];
                        self.conflict_pending[flat] = false;
                    }
                    cloudmc_dram::CommandKind::Precharge => {
                        let accesses = self.channel.accesses_since_activate(loc.rank, loc.bank);
                        self.note_row_closed(loc.rank, loc.bank, accesses);
                        // A scheduler-issued precharge is conflict-induced:
                        // some pending request needs a different row.
                        self.conflict_pending[flat] = true;
                        self.channel.issue(&decision.command, now);
                    }
                    _ => {
                        self.channel.issue(&decision.command, now);
                    }
                }
                true
            }
        }
    }

    /// Advances the controller by one DRAM cycle, appending the requests
    /// whose data completed this cycle to `finished` (the caller owns and
    /// reuses the buffer, keeping the per-cycle hot path allocation-free).
    ///
    /// Returns `true` if the cycle did observable work (retired a transfer,
    /// issued a command, or applied a power action) — the event kernel uses
    /// the report to decide whether its cached readiness bound for the
    /// channel must be recomputed or can simply advance one cycle.
    fn tick(&mut self, now: DramCycles, finished: &mut Vec<CompletedRequest>) -> bool {
        // 0. Reliability pre-work (no-op unless a fault model is configured):
        // release demand retries whose backoff elapsed and emit patrol-scrub
        // reads into the ordinary queues.
        let fault_worked = self.fault.is_some() && self.fault_pre_tick(now);

        // 1. Retire completed transfers.
        let mut retired = false;
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].completion <= now {
                let inflight = self.inflight.swap_remove(i);
                if self.fault.is_some() {
                    self.retire_with_ecc(inflight, now, finished);
                } else {
                    self.stats.record_completion(&inflight.done);
                    self.scheduler.on_complete(&inflight.done);
                    finished.push(inflight.done);
                }
                retired = true;
            } else {
                i += 1;
            }
        }
        let retired = retired || fault_worked;

        // 2. Sample queue occupancies for Figures 5 and 6, plus the
        // per-tenant read-queue breakdown for the QoS analysis.
        self.stats
            .sample_queues(self.read_q.len(), self.write_q.len());
        self.stats
            .sample_tenant_reads_n(&self.read_q.tenant_lens(), 1);

        // 3. Scheduler per-cycle bookkeeping (quantum boundaries, etc.).
        {
            let ctx = SchedContext {
                now,
                channel: &self.channel,
                read_q: &self.read_q,
                write_q: &self.write_q,
                write_mode: self.write_mode,
                num_cores: self.num_cores,
            };
            self.scheduler.on_cycle(&ctx);
        }

        // 4. Read/write phase decision.
        self.update_write_mode();

        // 5. Refresh takes priority when due and issuable.
        if self.handle_refresh(now) {
            return true;
        }

        // 6. The QoS arbiter gets first claim on the command slot: it may
        // issue for a tenant its policy privileges (work-conserving — it
        // declines whenever those tenants have nothing ready), composing
        // with whichever scheduling algorithm is configured.
        let qos_decision = {
            let ctx = SchedContext {
                now,
                channel: &self.channel,
                read_q: &self.read_q,
                write_q: &self.write_q,
                write_mode: self.write_mode,
                num_cores: self.num_cores,
            };
            self.qos.pick(&ctx)
        };
        if let Some(decision) = qos_decision {
            self.execute(decision, now);
            return true;
        }

        // 7. Ask the scheduler for this cycle's command.
        let decision = {
            let ctx = SchedContext {
                now,
                channel: &self.channel,
                read_q: &self.read_q,
                write_q: &self.write_q,
                write_mode: self.write_mode,
                num_cores: self.num_cores,
            };
            self.scheduler.pick(&ctx)
        };
        if let Some(decision) = decision {
            self.execute(decision, now);
            return true;
        }

        // 8. Otherwise let the page policy close an idle row proactively.
        let proposal = {
            let view = PolicyView {
                now,
                channel: &self.channel,
                read_q: &self.read_q,
                write_q: &self.write_q,
            };
            self.policy.propose_precharge(&view)
        };
        if let Some((rank, bank)) = proposal {
            if self.try_precharge(rank, bank, now) {
                return true;
            }
        }

        // 9. Last priority: let the power policy park a quiescent rank.
        self.power_step(now) || retired
    }

    /// Reliability work at the head of a cycle: re-enqueue demand retries
    /// whose backoff elapsed and emit the next patrol-scrub read when the
    /// scrub interval has elapsed. Returns `true` if anything was enqueued.
    ///
    /// Both paths go through the ordinary [`Self::enqueue`]: retries and
    /// scrub reads occupy real queue slots, wake powered-down ranks, and
    /// contend with demand traffic in the scheduler and the QoS arbiter.
    fn fault_pre_tick(&mut self, now: DramCycles) -> bool {
        let mut worked = false;
        // Release due retries, oldest deadline first, while the read queue
        // has room. A retried request keeps its original arrival cycle, so
        // its observed latency includes every retry round trip.
        loop {
            if self.read_q.is_full() {
                break;
            }
            let Some(f) = self.fault.as_deref_mut() else {
                break;
            };
            let Some((&due, _)) = f.retry_pending.iter().next() else {
                break;
            };
            if due > now {
                break;
            }
            let mut bucket = f.retry_pending.remove(&due).unwrap_or_default();
            let Some((request, location, attempt)) = bucket.pop_front() else {
                continue;
            };
            if !bucket.is_empty() {
                f.retry_pending.insert(due, bucket);
            }
            f.retry_len -= 1;
            f.attempts.insert(request.id, attempt);
            // Queue room was checked above; `enqueue` only fails when full.
            let _ = self.enqueue(request, location, now);
            worked = true;
        }
        // Emit the next patrol-scrub read. If the read queue is full the
        // emission stays due and is retried next cycle — deterministically,
        // since `next_scrub_at` only advances on success.
        let scrub = match self.fault.as_deref_mut() {
            Some(f) if now >= f.next_scrub_at && !self.read_q.is_full() => {
                let (rank, bank, row) = f.scrub_cursor;
                let location = Location::new(rank, bank, row, 0);
                // The channel index keeps scrub ids globally unique even
                // though each channel numbers its own patrol sequence.
                let id = SCRUB_ID_BIT | ((self.index as u64) << 40) | f.scrub_seq;
                let request = MemoryRequest::new(id, AccessKind::Read, 0, 0, now);
                f.scrub_seq += 1;
                f.scrub_live += 1;
                f.advance_scrub_cursor();
                f.next_scrub_at = f.next_scrub_at.saturating_add(f.cfg.scrub_interval);
                Some((request, location))
            }
            _ => None,
        };
        if let Some((request, location)) = scrub {
            self.stats.scrub_reads_issued += 1;
            // Room was checked while deciding to emit.
            let _ = self.enqueue(request, location, now);
            worked = true;
        }
        worked
    }

    /// Retires one completed transfer through the ECC layer: classifies
    /// reads against the fault model, schedules demand retries for corrected
    /// glitches, feeds repeat-offender retirement, and applies the
    /// uncorrectable-error policy (fail-stop latches a typed error; poison
    /// marks the line). Scrub completions are consumed internally.
    fn retire_with_ecc(
        &mut self,
        inflight: InFlight,
        now: DramCycles,
        finished: &mut Vec<CompletedRequest>,
    ) {
        let mut done = inflight.done;
        let req = done.request;
        let loc = done.location;
        let Some(f) = self.fault.as_deref_mut() else {
            // Unreachable by construction (the caller checked); complete
            // normally rather than panic.
            self.stats.record_completion(&done);
            self.scheduler.on_complete(&done);
            finished.push(done);
            return;
        };
        // Every service completion — demand, scrub, or a read about to be
        // retried — feeds the scheduler's bookkeeping: each on_enqueue/pick
        // pair is balanced by exactly one on_complete per service.
        self.scheduler.on_complete(&done);
        if is_scrub_id(req.id) {
            f.scrub_live -= 1;
            self.stats.scrub_reads_completed += 1;
            let residency = self.channel.rank(loc.rank).residency_at(now);
            match f.classify(req.id, 0, &loc, &residency) {
                ReadFault::None => {}
                ReadFault::Corrected => {
                    self.stats.scrub_corrected += 1;
                    if f.note_row_error(loc.rank, loc.bank, loc.row) {
                        self.stats.rows_retired += 1;
                    }
                }
                ReadFault::Uncorrectable { miscorrected: true } => {
                    // Aliased to a valid codeword: the scrubber sees clean
                    // data and learns nothing.
                    self.stats.ecc_miscorrects += 1;
                }
                ReadFault::Uncorrectable {
                    miscorrected: false,
                } => {
                    self.stats.scrub_uncorrectable += 1;
                    if f.note_row_error(loc.rank, loc.bank, loc.row) {
                        self.stats.rows_retired += 1;
                    }
                    match f.cfg.on_uncorrectable {
                        UncorrectablePolicy::FailStop => {
                            f.error.get_or_insert_with(|| {
                                format!(
                                    "uncorrectable memory error found by patrol scrub: \
                                     channel {} rank {} bank {} row {} (cycle {now})",
                                    done.channel, loc.rank, loc.bank, loc.row
                                )
                            });
                        }
                        UncorrectablePolicy::PoisonAndContinue => {
                            if f.poisoned.insert((loc.rank, loc.bank, loc.row, loc.column)) {
                                self.stats.lines_poisoned += 1;
                            }
                        }
                    }
                }
            }
            // Scrub completions never reach the frontend: they are not
            // pushed to `finished` and stay out of the demand statistics.
            return;
        }
        if req.kind == AccessKind::Write {
            // A write lands fresh, ECC-clean data, clearing any poison.
            f.poisoned
                .remove(&(loc.rank, loc.bank, loc.row, loc.column));
            self.stats.record_completion(&done);
            finished.push(done);
            return;
        }
        // Demand read: check poison, then classify against the fault model.
        let attempt = f.attempts.get(&req.id).copied().unwrap_or(0);
        // Tag the completion with the retries that preceded it, for span
        // traces and any other lifecycle consumer downstream.
        done.retries = attempt;
        if f.poisoned
            .contains(&(loc.rank, loc.bank, loc.row, loc.column))
        {
            // The line carries a poison marker from an earlier uncorrectable
            // error; the read completes and the consumption is accounted.
            self.stats.poisoned_reads += 1;
            f.attempts.remove(&req.id);
            self.stats.record_completion(&done);
            finished.push(done);
            return;
        }
        let residency = self.channel.rank(loc.rank).residency_at(now);
        match f.classify(req.id, attempt, &loc, &residency) {
            ReadFault::None => {
                f.attempts.remove(&req.id);
                self.stats.record_completion(&done);
                finished.push(done);
            }
            ReadFault::Corrected => {
                self.stats.ecc_corrected += 1;
                if f.note_row_error(loc.rank, loc.bank, loc.row) {
                    self.stats.rows_retired += 1;
                }
                if attempt < f.cfg.max_demand_retries {
                    // Park the request for a bounded-backoff re-read. The
                    // backoff doubles per attempt; the request is NOT
                    // completed until a retry returns (or retries exhaust).
                    self.stats.demand_retries += 1;
                    let backoff = f
                        .cfg
                        .retry_backoff
                        .checked_shl(attempt)
                        .unwrap_or(DramCycles::MAX);
                    let due = now.saturating_add(backoff.max(1));
                    f.retry_pending
                        .entry(due)
                        .or_default()
                        .push_back((req, loc, attempt + 1));
                    f.retry_len += 1;
                    f.attempts.remove(&req.id);
                } else {
                    // Retries exhausted: accept the corrected data.
                    f.attempts.remove(&req.id);
                    self.stats.record_completion(&done);
                    finished.push(done);
                }
            }
            ReadFault::Uncorrectable { miscorrected: true } => {
                // ECC silently "corrected" to the wrong word: undetected, so
                // the request completes normally and no retirement evidence
                // accrues — only the counter (and the model's ledger) know.
                self.stats.ecc_miscorrects += 1;
                f.attempts.remove(&req.id);
                self.stats.record_completion(&done);
                finished.push(done);
            }
            ReadFault::Uncorrectable {
                miscorrected: false,
            } => {
                self.stats.ecc_detected_uncorrectable += 1;
                if f.note_row_error(loc.rank, loc.bank, loc.row) {
                    self.stats.rows_retired += 1;
                }
                match f.cfg.on_uncorrectable {
                    UncorrectablePolicy::FailStop => {
                        f.error.get_or_insert_with(|| {
                            format!(
                                "uncorrectable memory error: channel {} rank {} bank {} \
                                 row {} (request {}, cycle {now})",
                                done.channel, loc.rank, loc.bank, loc.row, req.id
                            )
                        });
                    }
                    UncorrectablePolicy::PoisonAndContinue => {
                        if f.poisoned.insert((loc.rank, loc.bank, loc.row, loc.column)) {
                            self.stats.lines_poisoned += 1;
                        }
                    }
                }
                // The request still completes under both policies (fail-stop
                // surfaces the latched error when the run finishes), so
                // request conservation holds.
                f.attempts.remove(&req.id);
                self.stats.record_completion(&done);
                finished.push(done);
            }
        }
    }

    /// Consults the power policy and applies at most one action. Runs only
    /// on cycles where nothing else issued, mirroring the page-policy slot.
    /// Returns `true` if an action was applied.
    fn power_step(&mut self, now: DramCycles) -> bool {
        let action = {
            let view = PolicyView {
                now,
                channel: &self.channel,
                read_q: &self.read_q,
                write_q: &self.write_q,
            };
            self.power_policy.propose(&view)
        };
        match action {
            // Proposals are required to be legal already; the guard keeps an
            // ill-behaved policy from panicking the device.
            Some(PowerAction::PowerDown { rank, mode })
                if self.channel.can_enter_power_down(rank, mode, now) =>
            {
                self.channel.enter_power_down(rank, mode, now);
                match mode {
                    PowerDownMode::SelfRefresh => self.stats.self_refreshes += 1,
                    PowerDownMode::Fast | PowerDownMode::Slow => self.stats.power_downs += 1,
                }
                true
            }
            Some(PowerAction::Precharge { rank, bank }) => {
                let issued = self.try_precharge(rank, bank, now);
                if issued {
                    self.stats.power_precharges += 1;
                }
                issued
            }
            _ => false,
        }
    }

    /// Accounts for `cycles` DRAM cycles the kernel has proven eventless for
    /// this channel: the only per-cycle side effect of an eventless tick is
    /// the queue-occupancy sample, applied here in bulk.
    fn skip_cycles(&mut self, cycles: u64) {
        self.stats
            .sample_queues_n(self.read_q.len(), self.write_q.len(), cycles);
        self.stats
            .sample_tenant_reads_n(&self.read_q.tenant_lens(), cycles);
    }

    /// Earliest cycle of its current progress command for one queued entry,
    /// assuming the device state stays frozen (see
    /// [`cloudmc_dram::DramChannel::earliest_legal`]). Mirrors the
    /// command-derivation of [`crate::sched::progress_for`].
    fn earliest_progress(&self, entry: &crate::queue::QueueEntry) -> Option<DramCycles> {
        let loc = entry.location;
        let cmd = match self.channel.open_row(loc.rank, loc.bank) {
            Some(row) if row == loc.row => match entry.request.kind {
                AccessKind::Read => Command::read(loc, false),
                AccessKind::Write => Command::write(loc, false),
            },
            Some(_) => Command::precharge(loc),
            None => Command::activate(loc),
        };
        self.channel.earliest_legal(&cmd)
    }

    /// The next DRAM cycle at which this channel can possibly do anything
    /// beyond bulk bookkeeping: retire a transfer, issue a refresh (or the
    /// forced precharges of an overdue refresh), make progress on a pending
    /// request, hit a scheduler time boundary, or act on a page-policy
    /// proposal. `u64::MAX` means the channel is fully quiescent.
    ///
    /// The bound must never overshoot (skipping a cycle where the naive loop
    /// would have acted breaks bit-identical equivalence); undershooting is
    /// always safe and merely costs an extra no-op tick.
    fn next_ready_dram_cycle(&self, now: DramCycles) -> DramCycles {
        let mut next = DramCycles::MAX;
        // Pending data transfers retire at their completion cycle.
        for inflight in &self.inflight {
            next = next.min(inflight.completion);
        }
        // Refresh: issuable at its due cycle when the rank is idle (for a
        // powered-down rank the due cycle is when the controller wakes it,
        // and the REF itself is additionally fenced by the exit latency);
        // otherwise the controller force-precharges open banks once the
        // backlog reaches two intervals. A rank in self-refresh maintains
        // itself and contributes no event.
        if self.channel.refresh_enabled() {
            let t_refi = self.channel.timing().t_refi;
            for r in 0..self.channel.rank_count() {
                let rank = self.channel.rank(r);
                if rank.in_self_refresh() {
                    continue;
                }
                let due = rank.next_refresh_due();
                if rank.all_banks_idle() {
                    let event = if rank.powered_down() {
                        // The wake itself happens at the due cycle.
                        due
                    } else {
                        due.max(rank.next_refresh_allowed())
                    };
                    next = next.min(event);
                } else {
                    let force_at = due.saturating_add(t_refi);
                    let earliest_pre = (0..self.channel.banks_per_rank())
                        .filter(|&b| self.channel.open_row(r, b).is_some())
                        .map(|b| rank.bank(b).next_precharge_allowed())
                        .min();
                    if let Some(pre) = earliest_pre {
                        next = next.min(force_at.max(pre));
                    }
                }
            }
        }
        // Pending requests: earliest legal progress command over both queues
        // (a superset of what any scheduler — or the QoS arbiter, which only
        // ever reorders within this same candidate set — would consider,
        // hence an undershooting — safe — bound for all of them).
        for entry in self.read_q.iter().chain(self.write_q.iter()) {
            if let Some(cycle) = self.earliest_progress(entry) {
                next = next.min(cycle);
            }
        }
        // Scheduler-internal time boundaries (e.g. the ATLAS quantum).
        if let Some(cycle) = self.scheduler.next_event_cycle() {
            next = next.min(cycle);
        }
        // Page-policy proposals: if one stands now, wake when its precharge
        // becomes legal; otherwise ask the policy when its answer could flip.
        let view = PolicyView {
            now,
            channel: &self.channel,
            read_q: &self.read_q,
            write_q: &self.write_q,
        };
        match self.policy.propose_precharge(&view) {
            Some((rank, bank)) => {
                if let Some(row) = self.channel.open_row(rank, bank) {
                    let pre = Command::precharge(Location::new(rank, bank, row, 0));
                    if let Some(cycle) = self.channel.earliest_legal(&pre) {
                        next = next.min(cycle);
                    }
                }
            }
            None => {
                if let Some(cycle) = self.policy.next_wake(&view) {
                    next = next.min(cycle);
                }
            }
        }
        // Power-policy actions: a standing proposal acts on the next tick
        // (power-down entries are proposed pre-validated; a row-closing
        // proposal waits for its precharge to become legal); otherwise ask
        // the policy when its idle timers could first flip the answer.
        match self.power_policy.propose(&view) {
            Some(PowerAction::PowerDown { .. }) => next = next.min(now),
            Some(PowerAction::Precharge { rank, bank }) => {
                if let Some(row) = self.channel.open_row(rank, bank) {
                    let pre = Command::precharge(Location::new(rank, bank, row, 0));
                    if let Some(cycle) = self.channel.earliest_legal(&pre) {
                        next = next.min(cycle);
                    }
                }
            }
            None => {
                if let Some(cycle) = self.power_policy.next_wake(&view) {
                    next = next.min(cycle);
                }
            }
        }
        // Reliability deadlines: the next patrol-scrub emission and the
        // earliest parked demand retry. Queued scrub entries and re-enqueued
        // retries are already covered by the structural walks above.
        if let Some(f) = &self.fault {
            if f.cfg.scrub_interval > 0 {
                next = next.min(f.next_scrub_at);
            }
            if let Some((&due, _)) = f.retry_pending.iter().next() {
                next = next.min(due);
            }
        }
        next
    }
}

/// A complete multi-channel memory controller.
///
/// # Examples
///
/// ```
/// use cloudmc_memctrl::{AccessKind, McConfig, MemoryController, MemoryRequest};
///
/// let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
/// mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x4000, 0, 0), 0).unwrap();
/// let mut done = Vec::new();
/// for cycle in 0..200 {
///     mc.tick(cycle, &mut done);
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].request.id, 1);
/// ```
#[derive(Debug)]
pub struct MemoryController {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: McConfig,
    channels: Vec<ChannelController>,
}

impl MemoryController {
    /// Builds a controller from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if `cfg` does not validate.
    pub fn new(cfg: McConfig) -> Result<Self, String> {
        cfg.validate()?;
        let channels = (0..cfg.dram.channels)
            .map(|i| ChannelController::new(i, &cfg))
            .collect();
        Ok(Self { cfg, channels })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Decodes a physical address under the configured mapping.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        self.cfg.mapping.decode(addr, &self.cfg.dram)
    }

    /// Whether a request for `addr` of the given kind can be accepted now.
    #[must_use]
    pub fn can_accept(&self, addr: u64, kind: AccessKind) -> bool {
        let decoded = self.decode(addr);
        self.channels[decoded.channel].can_accept(kind)
    }

    /// Number of requests currently queued or in flight.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.channels.iter().map(ChannelController::pending).sum()
    }

    /// Requests currently queued or in flight, broken down by tenant
    /// (per-tenant request-conservation checks).
    #[must_use]
    pub fn pending_per_tenant(&self) -> [u64; MAX_TENANTS] {
        let mut out = [0u64; MAX_TENANTS];
        for channel in &self.channels {
            for (slot, v) in out.iter_mut().zip(channel.pending_per_tenant()) {
                *slot += v;
            }
        }
        out
    }

    /// Enqueues a request at DRAM cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns the request back if the target channel's queue is full.
    pub fn enqueue(
        &mut self,
        request: MemoryRequest,
        now: DramCycles,
    ) -> Result<(), MemoryRequest> {
        let decoded = self.decode(request.addr);
        self.channels[decoded.channel].enqueue(request, decoded.location, now)
    }

    /// Advances every channel by one DRAM cycle, appending requests completed
    /// this cycle across all channels to `done`.
    ///
    /// Takes the completion buffer as a parameter (matching the simulation
    /// kernel's `Tick` contract) so the caller reuses one allocation for the
    /// whole run instead of the controller returning a fresh `Vec` per cycle.
    ///
    /// Returns `true` if any channel did observable work this cycle (retired
    /// a transfer, issued a command, or applied a power action); the event
    /// kernel uses the report to maintain its cached readiness bound.
    pub fn tick(&mut self, now: DramCycles, done: &mut Vec<CompletedRequest>) -> bool {
        let mut worked = false;
        for channel in &mut self.channels {
            worked |= channel.tick(now, done);
        }
        worked
    }

    /// The next DRAM cycle at or after `now` at which any channel can
    /// possibly do work (retire, refresh, serve a pending request, hit a
    /// scheduler boundary, or close a row), derived from the bank/rank/bus
    /// timing state and the pending queues. `u64::MAX` means the controller
    /// is fully quiescent; the kernel may fast-forward to the returned cycle
    /// and remain bit-identical to ticking every cycle.
    #[must_use]
    pub fn next_ready_dram_cycle(&self, now: DramCycles) -> DramCycles {
        self.channels
            .iter()
            .map(|c| c.next_ready_dram_cycle(now))
            .min()
            .unwrap_or(DramCycles::MAX)
    }

    /// Accounts for `cycles` DRAM cycles the kernel has proven eventless:
    /// applies the per-cycle queue-occupancy samples in bulk, the only side
    /// effect an eventless tick has.
    pub fn skip_dram_cycles(&mut self, cycles: u64) {
        for channel in &mut self.channels {
            channel.skip_cycles(cycles);
        }
    }

    /// Aggregated controller statistics across channels.
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut total = McStats::new(self.cfg.num_cores);
        for channel in &self.channels {
            total.merge(&channel.stats);
        }
        total
    }

    /// Device-level statistics of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn channel_device_stats(&self, channel: usize) -> &ChannelStats {
        self.channels[channel].channel.stats()
    }

    /// Device-level statistics of one channel including power-state
    /// residency accrued up to `now` (see
    /// [`cloudmc_dram::DramChannel::stats_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn channel_device_stats_at(&self, channel: usize, now: DramCycles) -> ChannelStats {
        self.channels[channel].channel.stats_at(now)
    }

    /// Sum of data-bus busy cycles over all channels (bandwidth accounting).
    #[must_use]
    pub fn total_data_bus_busy_cycles(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.channel.stats().data_bus_busy_cycles)
            .sum()
    }

    /// Peak bandwidth of the whole controller in bytes per second.
    #[must_use]
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        self.cfg.dram.timing.peak_bandwidth_bytes_per_sec() * self.cfg.dram.channels as f64
    }

    /// Conservation ledger of the fault models across all channels. All
    /// zeros when no fault model is configured.
    #[must_use]
    pub fn fault_ledger(&self) -> FaultLedger {
        let mut total = FaultLedger::default();
        for channel in &self.channels {
            if let Some(f) = &channel.fault {
                total.merge(&f.model.ledger());
            }
        }
        total
    }

    /// First uncorrectable-error message latched under the fail-stop policy,
    /// if any. The controller keeps running after latching — the simulator
    /// surfaces this as a typed error when the run finishes.
    #[must_use]
    pub fn fault_error(&self) -> Option<&str> {
        self.channels
            .iter()
            .find_map(|c| c.fault.as_ref().and_then(|f| f.error.as_deref()))
    }

    /// Why this controller cannot be checkpointed, if it cannot: any channel
    /// using a dynamically dispatched (boxed) scheduler or policy is opaque
    /// to the snapshot machinery. `None` means snapshotting is supported.
    #[must_use]
    pub fn snapshot_unsupported_reason(&self) -> Option<&'static str> {
        for channel in &self.channels {
            if !channel.scheduler.snapshot_supported() {
                return Some("dynamically dispatched (boxed) scheduler");
            }
            if !channel.policy.snapshot_supported() {
                return Some("dynamically dispatched (boxed) page policy");
            }
            if !channel.power_policy.snapshot_supported() {
                return Some("dynamically dispatched (boxed) power policy");
            }
        }
        None
    }

    /// Serializes the mutable state of every channel in index order
    /// (checkpoint support). Callers must gate on
    /// [`MemoryController::snapshot_unsupported_reason`] first.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("memctrl");
        w.usize(self.channels.len());
        for channel in &self.channels {
            channel.save_state(w);
        }
    }

    /// Restores the mutable state of every channel from a checkpoint. The
    /// controller must have been built from the same configuration as the
    /// saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation, impossible
    /// values, or a channel count mismatch.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("memctrl")?;
        let count = r.usize()?;
        if count != self.channels.len() {
            return Err(r.bad_value(format!(
                "{count} channels, expected {}",
                self.channels.len()
            )));
        }
        for channel in &mut self.channels {
            channel.load_state(r)?;
        }
        Ok(())
    }

    /// Rows retired per rank, flattened channel-major (channel 0 rank 0,
    /// channel 0 rank 1, ..., channel 1 rank 0, ...). All zeros when no
    /// fault model is configured.
    #[must_use]
    pub fn rows_retired_per_rank(&self) -> Vec<u64> {
        let ranks = self.cfg.dram.ranks_per_channel;
        let mut out = Vec::with_capacity(self.channels.len() * ranks);
        for channel in &self.channels {
            match &channel.fault {
                Some(f) => out.extend_from_slice(&f.rows_retired_per_rank),
                None => out.extend(std::iter::repeat_n(0, ranks)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PagePolicyKind;
    use crate::sched::SchedulerKind;

    fn drain(mc: &mut MemoryController, cycles: u64) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for c in 0..cycles {
            mc.tick(c, &mut done);
        }
        done
    }

    #[test]
    fn config_validation_catches_bad_watermarks() {
        let mut cfg = McConfig::baseline();
        cfg.write_drain_low = cfg.write_drain_high;
        assert!(cfg.validate().is_err());
        cfg = McConfig::baseline();
        cfg.write_drain_high = cfg.write_queue_capacity + 1;
        assert!(cfg.validate().is_err());
        cfg = McConfig::baseline();
        cfg.num_cores = 0;
        assert!(MemoryController::new(cfg).is_err());
    }

    #[test]
    fn single_read_completes_with_reasonable_latency() {
        let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x10_0000, 2, 0), 0)
            .unwrap();
        let done = drain(&mut mc, 200);
        assert_eq!(done.len(), 1);
        let t = McConfig::baseline().dram.timing;
        let min_latency = t.t_rcd + t.cl + t.t_burst;
        assert!(done[0].latency() >= min_latency);
        assert!(done[0].latency() < 200);
        assert_eq!(done[0].outcome, RowBufferOutcome::Miss);
        assert_eq!(mc.stats().reads_completed, 1);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn row_hits_are_detected_for_same_row_requests() {
        let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
        // Two reads to consecutive blocks of the same row.
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x4000, 0, 0), 0)
            .unwrap();
        mc.enqueue(MemoryRequest::new(2, AccessKind::Read, 0x4040, 1, 0), 0)
            .unwrap();
        let done = drain(&mut mc, 300);
        assert_eq!(done.len(), 2);
        let stats = mc.stats();
        assert_eq!(stats.row_hits, 1, "second access must hit the open row");
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn conflicting_rows_are_recorded_as_conflicts() {
        let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
        let cfg = McConfig::baseline();
        // Same bank, different rows: the second request conflicts.
        let row_stride =
            cfg.dram.row_bytes * cfg.dram.banks_per_rank as u64 * cfg.dram.ranks_per_channel as u64;
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0, 0, 0), 0)
            .unwrap();
        mc.enqueue(MemoryRequest::new(2, AccessKind::Read, row_stride, 1, 0), 0)
            .unwrap();
        let done = drain(&mut mc, 500);
        assert_eq!(done.len(), 2);
        let stats = mc.stats();
        assert_eq!(stats.row_conflicts, 1);
        assert!(stats.single_access_activation_fraction() > 0.0);
    }

    #[test]
    fn writes_drain_via_watermarks() {
        let mut cfg = McConfig::baseline();
        cfg.write_drain_high = 4;
        cfg.write_drain_low = 1;
        let mut mc = MemoryController::new(cfg).unwrap();
        for i in 0..6u64 {
            mc.enqueue(
                MemoryRequest::new(i, AccessKind::Write, i * 0x100_000, 0, 0),
                0,
            )
            .unwrap();
        }
        let done = drain(&mut mc, 2000);
        assert_eq!(done.len(), 6);
        assert_eq!(mc.stats().writes_completed, 6);
    }

    #[test]
    fn multi_channel_controller_spreads_requests() {
        let mut cfg = McConfig::baseline();
        cfg.dram.channels = 4;
        let mut mc = MemoryController::new(cfg).unwrap();
        assert_eq!(mc.channel_count(), 4);
        for i in 0..8u64 {
            mc.enqueue(MemoryRequest::new(i, AccessKind::Read, i * 64, 0, 0), 0)
                .unwrap();
        }
        let done = drain(&mut mc, 400);
        assert_eq!(done.len(), 8);
        // Under RoRaBaCoCh consecutive blocks alternate channels, so every
        // channel transferred some data.
        for ch in 0..4 {
            assert!(mc.channel_device_stats(ch).reads > 0, "channel {ch} unused");
        }
        assert!(mc.total_data_bus_busy_cycles() > 0);
        assert!(mc.peak_bandwidth_bytes_per_sec() > 4.0 * 12.0e9);
    }

    #[test]
    fn every_scheduler_and_policy_combination_completes_requests() {
        for sched in SchedulerKind::paper_set() {
            for policy in PagePolicyKind::paper_set() {
                let mut cfg = McConfig::baseline();
                cfg.scheduler = sched;
                cfg.page_policy = policy;
                let mut mc = MemoryController::new(cfg).unwrap();
                for i in 0..20u64 {
                    let kind = if i % 4 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    mc.enqueue(
                        MemoryRequest::new(
                            i,
                            kind,
                            (i % 7) * 0x2_0000 + i * 64,
                            (i % 16) as usize,
                            i,
                        ),
                        i,
                    )
                    .unwrap();
                }
                let done = drain(&mut mc, 5_000);
                assert_eq!(
                    done.len(),
                    20,
                    "scheduler {} with policy {} lost requests",
                    sched.label(),
                    policy
                );
            }
        }
    }

    fn two_tenant_qos(policy: crate::qos::QosPolicyKind) -> QosConfig {
        QosConfig {
            policy,
            tenants: 2,
            latency_critical: [true, false, false, false],
            share: [1, 1, 1, 1],
            epoch: 4_096,
        }
    }

    /// Submits a contended two-tenant pattern: tenant 0 (latency-critical)
    /// issues one sparse read, tenant 1 floods the same channel. Returns how
    /// many requests were accepted (the flood yields to back-pressure).
    fn submit_two_tenants(mc: &mut MemoryController, at: DramCycles, wave: u64) -> u64 {
        mc.enqueue(
            MemoryRequest::new(
                wave * 16 + 15,
                AccessKind::Read,
                0x80_0000 + wave * 64,
                0,
                at,
            )
            .with_tenant(0),
            at,
        )
        .expect("the latency-critical tenant's sparse read must fit");
        let mut accepted = 1;
        for i in 0..6u64 {
            let req = MemoryRequest::new(
                wave * 16 + i,
                AccessKind::Read,
                (i % 3) * 0x2_0000 + wave * 0x100 + i * 64,
                8,
                at,
            )
            .with_tenant(1);
            if mc.enqueue(req, at).is_ok() {
                accepted += 1;
            }
        }
        accepted
    }

    #[test]
    fn qos_policies_compose_with_every_scheduler() {
        use crate::qos::QosPolicyKind;
        for sched in SchedulerKind::paper_set() {
            for qos in QosPolicyKind::all() {
                let mut cfg = McConfig::baseline();
                cfg.scheduler = sched;
                cfg.qos = two_tenant_qos(qos);
                let mut mc = MemoryController::new(cfg).unwrap();
                let mut submitted = 0;
                for wave in 0..4u64 {
                    submitted += submit_two_tenants(&mut mc, wave * 100, wave);
                }
                assert_eq!(submitted, 28, "ample queue space: nothing rejected");
                let mut done = Vec::new();
                for c in 0..6_000 {
                    mc.tick(c, &mut done);
                }
                assert_eq!(
                    done.len(),
                    28,
                    "{}/{qos}: requests lost under QoS arbitration",
                    sched.label()
                );
                let stats = mc.stats();
                assert_eq!(stats.reads_completed_per_tenant[0], 4);
                assert_eq!(stats.reads_completed_per_tenant[1], 24);
                assert_eq!(mc.pending_per_tenant(), [0; MAX_TENANTS]);
            }
        }
    }

    #[test]
    fn priority_boost_protects_the_latency_critical_tenant() {
        use crate::qos::QosPolicyKind;
        let run = |qos: QosPolicyKind| {
            let mut cfg = McConfig::baseline();
            cfg.qos = two_tenant_qos(qos);
            let mut mc = MemoryController::new(cfg).unwrap();
            let mut done = Vec::new();
            for wave in 0..40u64 {
                submit_two_tenants(&mut mc, wave * 30, wave);
                for c in (wave * 30)..((wave + 1) * 30) {
                    mc.tick(c, &mut done);
                }
            }
            for c in 1_200..8_000 {
                mc.tick(c, &mut done);
            }
            assert_eq!(mc.pending(), 0);
            mc.stats().avg_read_latency_for_tenant(0)
        };
        let baseline = run(QosPolicyKind::None);
        let boosted = run(QosPolicyKind::PriorityBoost);
        assert!(
            boosted < baseline,
            "boost must cut LC latency: {boosted} vs {baseline}"
        );
    }

    /// The jump-equivalence property must hold with the QoS arbiter claiming
    /// slots: its preemptions only ever reorder within the candidate set the
    /// event-horizon bound already covers.
    #[test]
    fn next_ready_never_skips_a_qos_event() {
        use crate::qos::QosPolicyKind;
        for sched in SchedulerKind::paper_set() {
            for qos in [QosPolicyKind::StaticPartition, QosPolicyKind::PriorityBoost] {
                let mut cfg = McConfig::baseline();
                cfg.scheduler = sched;
                cfg.qos = two_tenant_qos(qos);
                // A small epoch so boundaries land inside idle gaps too.
                cfg.qos.epoch = 512;
                let mut naive = MemoryController::new(cfg).unwrap();
                let mut jumpy = MemoryController::new(cfg).unwrap();
                let horizon = cfg.dram.timing.t_refi * 3;
                let arrivals: Vec<u64> = (0..6u64).map(|i| i * (horizon / 7)).collect();
                let mut naive_done = Vec::new();
                let mut next_arrival = 0usize;
                for c in 0..horizon {
                    while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                        submit_two_tenants(&mut naive, c, next_arrival as u64);
                        next_arrival += 1;
                    }
                    naive.tick(c, &mut naive_done);
                }
                let mut jumpy_done = Vec::new();
                let mut next_arrival = 0usize;
                let mut c = 0u64;
                while c < horizon {
                    while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                        submit_two_tenants(&mut jumpy, c, next_arrival as u64);
                        next_arrival += 1;
                    }
                    jumpy.tick(c, &mut jumpy_done);
                    let mut next = jumpy.next_ready_dram_cycle(c).max(c + 1).min(horizon);
                    if next_arrival < arrivals.len() {
                        next = next.min(arrivals[next_arrival]);
                    }
                    if next > c + 1 {
                        jumpy.skip_dram_cycles(next - c - 1);
                    }
                    c = next;
                }
                assert_eq!(
                    naive_done.len(),
                    jumpy_done.len(),
                    "{}/{qos}: completion counts diverged",
                    sched.label()
                );
                assert_eq!(
                    naive.stats(),
                    jumpy.stats(),
                    "{}/{qos}: stats diverged",
                    sched.label()
                );
            }
        }
    }

    #[test]
    fn queue_backpressure_rejects_when_full() {
        let mut cfg = McConfig::baseline();
        cfg.read_queue_capacity = 2;
        let mut mc = MemoryController::new(cfg).unwrap();
        assert!(mc.can_accept(0, AccessKind::Read));
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0, 0, 0), 0)
            .unwrap();
        mc.enqueue(MemoryRequest::new(2, AccessKind::Read, 64, 0, 0), 0)
            .unwrap();
        assert!(!mc.can_accept(128, AccessKind::Read));
        let rejected = mc
            .enqueue(MemoryRequest::new(3, AccessKind::Read, 128, 0, 0), 0)
            .unwrap_err();
        assert_eq!(rejected.id, 3);
    }

    #[test]
    fn refresh_happens_over_long_idle_periods() {
        let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
        let t_refi = McConfig::baseline().dram.timing.t_refi;
        let mut done = Vec::new();
        for c in 0..(t_refi * 3) {
            mc.tick(c, &mut done);
        }
        assert!(mc.channel_device_stats(0).refreshes >= 2);
    }

    /// `next_ready_dram_cycle` must never overshoot: ticking every cycle and
    /// jumping straight to each announced cycle must produce identical
    /// completions, identical stats and identical device state for every
    /// scheduler/policy combination.
    #[test]
    fn next_ready_never_skips_an_eventful_cycle() {
        for sched in SchedulerKind::paper_set() {
            for policy in [
                PagePolicyKind::OpenAdaptive,
                PagePolicyKind::Close,
                PagePolicyKind::Timer,
            ] {
                let mut cfg = McConfig::baseline();
                cfg.scheduler = sched;
                cfg.page_policy = policy;
                let mut naive = MemoryController::new(cfg).unwrap();
                let mut jumpy = MemoryController::new(cfg).unwrap();
                let submit = |mc: &mut MemoryController| {
                    for i in 0..12u64 {
                        mc.enqueue(
                            MemoryRequest::new(
                                i,
                                AccessKind::Read,
                                (i % 5) * 0x2_0000 + i * 64,
                                0,
                                0,
                            ),
                            0,
                        )
                        .unwrap();
                    }
                };
                submit(&mut naive);
                submit(&mut jumpy);
                let horizon = cfg.dram.timing.t_refi * 3;
                let mut naive_done = Vec::new();
                for c in 0..horizon {
                    naive.tick(c, &mut naive_done);
                }
                let mut jumpy_done = Vec::new();
                let mut c = 0u64;
                while c < horizon {
                    jumpy.tick(c, &mut jumpy_done);
                    let next = jumpy.next_ready_dram_cycle(c).max(c + 1).min(horizon);
                    if next > c + 1 {
                        jumpy.skip_dram_cycles(next - c - 1);
                    }
                    c = next;
                }
                assert_eq!(
                    naive_done.len(),
                    jumpy_done.len(),
                    "{sched:?}/{policy}: completion counts diverged"
                );
                assert_eq!(
                    naive.stats(),
                    jumpy.stats(),
                    "{sched:?}/{policy}: stats diverged"
                );
                assert_eq!(
                    naive.channel_device_stats(0),
                    jumpy.channel_device_stats(0),
                    "{sched:?}/{policy}: device counters diverged"
                );
            }
        }
    }

    /// The jump-equivalence property must also hold with every power policy
    /// driving rank power-down, wake-on-demand and wake-for-refresh.
    #[test]
    fn next_ready_never_skips_a_power_event() {
        use crate::power::PowerPolicyKind;
        for power in PowerPolicyKind::all() {
            for policy in [PagePolicyKind::OpenAdaptive, PagePolicyKind::Open] {
                let mut cfg = McConfig::baseline();
                cfg.page_policy = policy;
                cfg.power_policy = power;
                let mut naive = MemoryController::new(cfg).unwrap();
                let mut jumpy = MemoryController::new(cfg).unwrap();
                // Sparse arrivals leave long gaps for power-down entries,
                // deepening transitions and refresh wakes.
                let submit = |mc: &mut MemoryController, at: u64, i: u64| {
                    mc.enqueue(
                        MemoryRequest::new(
                            i,
                            AccessKind::Read,
                            (i % 3) * 0x40_0000 + i * 64,
                            0,
                            at,
                        ),
                        at,
                    )
                    .unwrap();
                };
                let horizon = cfg.dram.timing.t_refi * 4;
                let arrivals: Vec<u64> = (0..8u64).map(|i| i * (horizon / 9)).collect();
                let mut naive_done = Vec::new();
                let mut next_arrival = 0usize;
                for c in 0..horizon {
                    while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                        submit(&mut naive, c, next_arrival as u64);
                        next_arrival += 1;
                    }
                    naive.tick(c, &mut naive_done);
                }
                let mut jumpy_done = Vec::new();
                let mut next_arrival = 0usize;
                let mut c = 0u64;
                while c < horizon {
                    while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                        submit(&mut jumpy, c, next_arrival as u64);
                        next_arrival += 1;
                    }
                    jumpy.tick(c, &mut jumpy_done);
                    let mut next = jumpy.next_ready_dram_cycle(c).max(c + 1).min(horizon);
                    if next_arrival < arrivals.len() {
                        next = next.min(arrivals[next_arrival]);
                    }
                    if next > c + 1 {
                        jumpy.skip_dram_cycles(next - c - 1);
                    }
                    c = next;
                }
                assert_eq!(
                    naive_done.len(),
                    jumpy_done.len(),
                    "{power}/{policy}: completion counts diverged"
                );
                assert_eq!(
                    naive.stats(),
                    jumpy.stats(),
                    "{power}/{policy}: stats diverged"
                );
                assert_eq!(
                    naive.channel_device_stats(0),
                    jumpy.channel_device_stats(0),
                    "{power}/{policy}: device counters diverged"
                );
                if power != PowerPolicyKind::None {
                    assert!(
                        naive.stats().power_downs + naive.stats().self_refreshes > 0,
                        "{power}/{policy}: power policy never acted"
                    );
                }
            }
        }
    }

    #[test]
    fn immediate_power_down_parks_idle_ranks_and_serves_demand() {
        let mut cfg = McConfig::baseline();
        cfg.power_policy = crate::power::PowerPolicyKind::Immediate;
        let mut mc = MemoryController::new(cfg).unwrap();
        let mut done = Vec::new();
        // A long quiet stretch: both ranks should drop into power-down.
        for c in 0..2_000 {
            mc.tick(c, &mut done);
        }
        let stats = mc.stats();
        assert!(stats.power_downs >= 2, "both ranks should have parked");
        // A late read wakes the rank and still completes, paying the exit
        // latency on top of the usual activate+read time.
        mc.enqueue(
            MemoryRequest::new(1, AccessKind::Read, 0x10_0000, 0, 2_000),
            2_000,
        )
        .unwrap();
        for c in 2_000..2_400 {
            mc.tick(c, &mut done);
        }
        assert_eq!(done.len(), 1);
        let t = cfg.dram.timing;
        assert!(
            done[0].latency() >= t.t_xp + t.t_rcd + t.cl + t.t_burst,
            "latency {} must include the tXP exit fence",
            done[0].latency()
        );
        assert!(mc.stats().power_wakes >= 1);
    }

    #[test]
    fn refresh_wakes_powered_down_ranks_on_schedule() {
        let mut cfg = McConfig::baseline();
        cfg.power_policy = crate::power::PowerPolicyKind::Immediate;
        let t_refi = cfg.dram.timing.t_refi;
        let mut mc = MemoryController::new(cfg).unwrap();
        let mut done = Vec::new();
        for c in 0..(t_refi * 3) {
            mc.tick(c, &mut done);
        }
        // Refresh kept running despite the ranks sleeping in between.
        assert!(mc.channel_device_stats(0).refreshes >= 2);
        assert!(mc.stats().power_wakes >= 2, "each due refresh wakes a rank");
    }

    #[test]
    fn idle_timer_reaches_self_refresh_and_suppresses_refresh_commands() {
        let mut cfg = McConfig::baseline();
        cfg.power_policy = crate::power::PowerPolicyKind::IdleTimer;
        let t_refi = cfg.dram.timing.t_refi;
        let mut mc = MemoryController::new(cfg).unwrap();
        let mut done = Vec::new();
        for c in 0..(t_refi * 8) {
            mc.tick(c, &mut done);
        }
        let stats = mc.stats();
        assert!(
            stats.self_refreshes >= 2,
            "both ranks should reach self-refresh"
        );
        // Once in self-refresh, external REF commands stop.
        let refreshes_mid = mc.channel_device_stats(0).refreshes;
        for c in (t_refi * 8)..(t_refi * 16) {
            mc.tick(c, &mut done);
        }
        assert_eq!(
            mc.channel_device_stats(0).refreshes,
            refreshes_mid,
            "self-refreshing ranks must not receive external REF"
        );
    }

    #[test]
    fn quiescent_controller_reports_refresh_as_next_event() {
        let mc = MemoryController::new(McConfig::baseline()).unwrap();
        let due = McConfig::baseline().dram.timing.t_refi;
        assert_eq!(mc.next_ready_dram_cycle(0), due);
        let mut cfg = McConfig::baseline();
        cfg.dram.refresh_enabled = false;
        let quiet = MemoryController::new(cfg).unwrap();
        assert_eq!(quiet.next_ready_dram_cycle(0), u64::MAX);
    }

    #[test]
    fn close_policy_yields_single_access_activations() {
        let mut cfg = McConfig::baseline();
        cfg.page_policy = PagePolicyKind::Close;
        let mut mc = MemoryController::new(cfg).unwrap();
        for i in 0..10u64 {
            mc.enqueue(
                MemoryRequest::new(i, AccessKind::Read, i * 0x40_000, 0, i * 10),
                i * 10,
            )
            .unwrap();
        }
        let done = drain(&mut mc, 3_000);
        assert_eq!(done.len(), 10);
        let stats = mc.stats();
        assert!(stats.single_access_activation_fraction() > 0.9);
        assert_eq!(stats.row_hits, 0);
    }

    /// Fault config that flips every read (certainty rate) with the given
    /// uncorrectable share, no scrubbing.
    fn noisy_fault(uncorrectable_permille: u32) -> FaultConfig {
        FaultConfig {
            transient_rate_fp: 1 << 32,
            uncorrectable_permille,
            miscorrect_permille: 0,
            ..FaultConfig::baseline()
        }
    }

    #[test]
    fn corrected_errors_trigger_bounded_demand_retries() {
        let mut cfg = McConfig::baseline();
        // Every read faults as corrected: each demand read retries exactly
        // max_demand_retries times, then accepts the corrected data.
        cfg.fault_model = Some(noisy_fault(0));
        let mut mc = MemoryController::new(cfg).unwrap();
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x4000, 0, 0), 0)
            .unwrap();
        let done = drain(&mut mc, 2_000);
        assert_eq!(done.len(), 1, "retries must not lose the request");
        let stats = mc.stats();
        let retries = cfg.fault_model.unwrap().max_demand_retries as u64;
        assert_eq!(stats.demand_retries, retries);
        assert_eq!(stats.ecc_corrected, retries + 1);
        assert_eq!(stats.reads_completed, 1, "one demand completion only");
        // The retries extend the observed latency beyond a clean read's.
        assert!(done[0].latency() > 2 * cfg.fault_model.unwrap().retry_backoff);
        assert_eq!(mc.pending(), 0);
        let ledger = mc.fault_ledger();
        assert_eq!(ledger.injected, retries + 1);
        assert_eq!(ledger.corrected, retries + 1);
    }

    #[test]
    fn repeat_offender_rows_are_retired_and_read_clean_after() {
        let mut cfg = McConfig::baseline();
        let mut fault = noisy_fault(0);
        fault.retire_threshold = 3;
        fault.max_demand_retries = 0;
        cfg.fault_model = Some(fault);
        let mut mc = MemoryController::new(cfg).unwrap();
        // Many reads of the same row: after 3 corrected errors the row
        // retires (remapped to a spare) and later reads come back clean.
        let mut done = Vec::new();
        for i in 0..10u64 {
            mc.enqueue(MemoryRequest::new(i, AccessKind::Read, 0x4000, 0, i), i)
                .unwrap();
        }
        for c in 0..3_000 {
            mc.tick(c, &mut done);
        }
        assert_eq!(done.len(), 10);
        let stats = mc.stats();
        assert_eq!(stats.rows_retired, 1);
        assert_eq!(
            stats.ecc_corrected, 3,
            "only the pre-retirement reads fault"
        );
        let per_rank = mc.rows_retired_per_rank();
        assert_eq!(per_rank.iter().sum::<u64>(), 1);
    }

    #[test]
    fn fail_stop_latches_a_typed_error_and_never_panics() {
        let mut cfg = McConfig::baseline();
        let mut fault = noisy_fault(1000); // every flip is uncorrectable
        fault.on_uncorrectable = UncorrectablePolicy::FailStop;
        cfg.fault_model = Some(fault);
        let mut mc = MemoryController::new(cfg).unwrap();
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x4000, 0, 0), 0)
            .unwrap();
        let done = drain(&mut mc, 500);
        assert_eq!(done.len(), 1, "the run completes; the error is latched");
        let err = mc.fault_error().expect("uncorrectable error must latch");
        assert!(err.contains("uncorrectable"), "got: {err}");
        assert_eq!(mc.stats().ecc_detected_uncorrectable, 1);
    }

    #[test]
    fn poison_and_continue_accounts_poisoned_lines_and_writes_clear_them() {
        let mut cfg = McConfig::baseline();
        let mut fault = noisy_fault(1000);
        fault.on_uncorrectable = UncorrectablePolicy::PoisonAndContinue;
        cfg.fault_model = Some(fault);
        let mut mc = MemoryController::new(cfg).unwrap();
        // First read poisons the line; the second read consumes the poison
        // (skipping classification); a write then clears it.
        mc.enqueue(MemoryRequest::new(1, AccessKind::Read, 0x4000, 0, 0), 0)
            .unwrap();
        let mut done = drain(&mut mc, 400);
        mc.enqueue(MemoryRequest::new(2, AccessKind::Read, 0x4000, 0, 400), 400)
            .unwrap();
        for c in 400..800 {
            mc.tick(c, &mut done);
        }
        mc.enqueue(
            MemoryRequest::new(3, AccessKind::Write, 0x4000, 0, 800),
            800,
        )
        .unwrap();
        for c in 800..1_200 {
            mc.tick(c, &mut done);
        }
        mc.enqueue(
            MemoryRequest::new(4, AccessKind::Read, 0x4000, 0, 1_200),
            1_200,
        )
        .unwrap();
        for c in 1_200..1_600 {
            mc.tick(c, &mut done);
        }
        assert_eq!(done.len(), 4);
        let stats = mc.stats();
        assert_eq!(stats.lines_poisoned, 2, "read 1 and read 4 each poison");
        assert_eq!(stats.poisoned_reads, 1, "only read 2 consumed poison");
        assert!(mc.fault_error().is_none());
    }

    #[test]
    fn scrub_emits_real_read_traffic_without_demand_pending() {
        let mut cfg = McConfig::baseline();
        let mut fault = FaultConfig::baseline();
        fault.transient_rate_fp = 0;
        fault.scrub_interval = 100;
        cfg.fault_model = Some(fault);
        let mut mc = MemoryController::new(cfg).unwrap();
        let mut done = Vec::new();
        for c in 0..5_000 {
            mc.tick(c, &mut done);
            assert_eq!(mc.pending(), 0, "scrub must not count as demand");
        }
        assert!(done.is_empty(), "scrub completions stay internal");
        let stats = mc.stats();
        assert!(stats.scrub_reads_issued >= 40, "one per 100 cycles");
        assert!(stats.scrub_reads_completed > 0);
        assert_eq!(stats.reads_completed, 0);
        // The scrub reads are real device traffic.
        assert!(mc.channel_device_stats(0).reads > 0);
        assert_eq!(mc.pending_per_tenant(), [0; MAX_TENANTS]);
    }

    #[test]
    fn scrub_discovers_planted_rows_and_retires_them() {
        let mut cfg = McConfig::baseline();
        // Shrink the geometry so one patrol pass covers the device quickly.
        cfg.dram.rows_per_bank = 16;
        let mut fault = FaultConfig::baseline();
        fault.transient_rate_fp = 0;
        fault.stuck_rows_per_rank = 2;
        fault.scrub_interval = 20;
        fault.retire_threshold = 2;
        cfg.fault_model = Some(fault);
        let mut mc = MemoryController::new(cfg).unwrap();
        let mut done = Vec::new();
        // 2 ranks x 8 banks x 16 rows = 256 granules per pass; several
        // passes at one read per 20 cycles.
        for c in 0..40_000 {
            mc.tick(c, &mut done);
        }
        let stats = mc.stats();
        assert!(stats.scrub_corrected >= 4, "planted rows found repeatedly");
        assert_eq!(stats.rows_retired, 4, "2 stuck rows x 2 ranks retire");
        let ledger = mc.fault_ledger();
        assert_eq!(ledger.latent, 0, "full patrol passes leave nothing latent");
        assert_eq!(
            ledger.injected,
            ledger.corrected + ledger.uncorrectable + ledger.latent
        );
    }

    /// The jump-equivalence property must hold with the reliability
    /// subsystem active: scrub emissions and retry deadlines are part of the
    /// readiness bound, so fast-forwarding never skips them.
    #[test]
    fn next_ready_never_skips_a_scrub_or_retry_event() {
        for sched in SchedulerKind::paper_set() {
            let mut cfg = McConfig::baseline();
            cfg.scheduler = sched;
            cfg.power_policy = PowerPolicyKind::IdleTimer;
            let mut fault = noisy_fault(200);
            fault.scrub_interval = 700;
            fault.retry_backoff = 16;
            cfg.fault_model = Some(fault);
            let mut naive = MemoryController::new(cfg).unwrap();
            let mut jumpy = MemoryController::new(cfg).unwrap();
            let horizon = cfg.dram.timing.t_refi * 3;
            let arrivals: Vec<u64> = (0..6u64).map(|i| i * (horizon / 7)).collect();
            let mut naive_done = Vec::new();
            let mut next_arrival = 0usize;
            for c in 0..horizon {
                while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                    submit_two_tenants(&mut naive, c, next_arrival as u64);
                    next_arrival += 1;
                }
                naive.tick(c, &mut naive_done);
            }
            let mut jumpy_done = Vec::new();
            let mut next_arrival = 0usize;
            let mut c = 0u64;
            while c < horizon {
                while next_arrival < arrivals.len() && arrivals[next_arrival] == c {
                    submit_two_tenants(&mut jumpy, c, next_arrival as u64);
                    next_arrival += 1;
                }
                let worked = jumpy.tick(c, &mut jumpy_done);
                let mut next = if worked || jumpy.pending() > 0 {
                    c + 1
                } else {
                    jumpy.next_ready_dram_cycle(c).max(c + 1).min(horizon)
                };
                if next_arrival < arrivals.len() {
                    next = next.min(arrivals[next_arrival]);
                }
                if next > c + 1 {
                    jumpy.skip_dram_cycles(next - c - 1);
                }
                c = next;
            }
            assert_eq!(
                naive_done.len(),
                jumpy_done.len(),
                "{}: completion counts diverged",
                sched.label()
            );
            assert_eq!(
                naive.stats(),
                jumpy.stats(),
                "{}: stats diverged",
                sched.label()
            );
            assert_eq!(
                naive.fault_ledger(),
                jumpy.fault_ledger(),
                "{}: fault ledgers diverged",
                sched.label()
            );
        }
    }

    /// `fault_model: None` must add zero work and zero counters: a run with
    /// the field defaulted is bit-identical to the pre-subsystem controller.
    #[test]
    fn disabled_fault_model_keeps_all_reliability_counters_zero() {
        let mut mc = MemoryController::new(McConfig::baseline()).unwrap();
        for i in 0..20u64 {
            mc.enqueue(
                MemoryRequest::new(i, AccessKind::Read, i * 0x1_0000, 0, i),
                i,
            )
            .unwrap();
        }
        let done = drain(&mut mc, 3_000);
        assert_eq!(done.len(), 20);
        let stats = mc.stats();
        assert_eq!(stats.ecc_corrected, 0);
        assert_eq!(stats.ecc_detected_uncorrectable, 0);
        assert_eq!(stats.ecc_miscorrects, 0);
        assert_eq!(stats.demand_retries, 0);
        assert_eq!(stats.scrub_reads_issued, 0);
        assert_eq!(stats.rows_retired, 0);
        assert_eq!(stats.lines_poisoned, 0);
        assert_eq!(mc.fault_ledger(), cloudmc_dram::FaultLedger::default());
        assert!(mc.fault_error().is_none());
        assert!(mc.rows_retired_per_rank().iter().all(|&r| r == 0));
    }
}
