//! DRAM page (row-buffer) management policies.
//!
//! The policy decides how long an activated row stays open. The controller
//! consults it at two points:
//!
//! 1. right before issuing a column command, to decide whether to use the
//!    auto-precharge variant ([`PagePolicy::auto_precharge`]); and
//! 2. on idle cycles, to propose proactively closing an open bank
//!    ([`PagePolicy::propose_precharge`]).
//!
//! Implemented policies (Section 2.2 of the paper): open ([`OpenPage`]),
//! close ([`ClosePage`]), open-adaptive ([`OpenAdaptive`], the baseline),
//! close-adaptive ([`CloseAdaptive`]), RBPP ([`Rbpp`]), ABPP ([`Abpp`]) and a
//! per-bank idle-timer policy ([`TimerPolicy`], an extension).

use cloudmc_dram::{DramChannel, DramCycles, Location};

use crate::queue::{bank_row_key, key_bank, key_rank, RequestQueue};

/// Read-only view of controller state handed to page policies.
#[derive(Debug)]
pub struct PolicyView<'a> {
    /// Current DRAM cycle.
    pub now: DramCycles,
    /// The channel's device state (bank open rows, timing readiness).
    pub channel: &'a DramChannel,
    /// Pending read requests of this channel.
    pub read_q: &'a RequestQueue,
    /// Pending write requests of this channel.
    pub write_q: &'a RequestQueue,
}

impl PolicyView<'_> {
    /// Whether any pending request (read or write) hits `row` in (`rank`, `bank`).
    #[must_use]
    pub fn pending_hit(&self, rank: usize, bank: usize, row: u64) -> bool {
        self.read_q.any_hit(rank, bank, row) || self.write_q.any_hit(rank, bank, row)
    }

    /// Whether any pending request targets (`rank`, `bank`) but another row.
    #[must_use]
    pub fn pending_other_row(&self, rank: usize, bank: usize, row: u64) -> bool {
        self.read_q.any_other_row(rank, bank, row) || self.write_q.any_other_row(rank, bank, row)
    }

    /// Whether any pending request (read or write) targets rank `rank`.
    #[must_use]
    pub fn pending_for_rank(&self, rank: usize) -> bool {
        self.read_q.any_for_rank(rank) || self.write_q.any_for_rank(rank)
    }

    /// Iterates over all open banks as (rank, bank, open row) triples.
    pub fn open_banks(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        let ranks = self.channel.rank_count();
        let banks = self.channel.banks_per_rank();
        (0..ranks).flat_map(move |r| {
            (0..banks).filter_map(move |b| self.channel.open_row(r, b).map(|row| (r, b, row)))
        })
    }

    /// Computes the per-bank demand summary in one pass over the flat key
    /// columns of both queues, or `None` when the channel has more flat
    /// banks than fit the bitmask representation (callers then fall back to
    /// the per-bank scans).
    ///
    /// This replaces the `O(open banks x queue)` predicate evaluation of the
    /// adaptive policies' precharge proposals with `O(banks + queue)` work
    /// over dense `u64` lanes — the single hottest loop of a no-issue
    /// controller tick.
    #[must_use]
    pub fn bank_demand(&self) -> Option<BankDemand> {
        let banks = self.channel.banks_per_rank();
        let ranks = self.channel.rank_count();
        if ranks * banks > 64 {
            return None;
        }
        let mut demand = BankDemand {
            banks_per_rank: banks,
            ..BankDemand::default()
        };
        let mut open_key = [0u64; 64];
        for (r, b, row) in self.open_banks() {
            let flat = r * banks + b;
            demand.open |= 1 << flat;
            open_key[flat] = bank_row_key(r, b, row);
        }
        for queue in [self.read_q, self.write_q] {
            for &key in queue.keys() {
                let flat = key_rank(key) * banks + key_bank(key);
                let bit = 1u64 << flat;
                if demand.open & bit != 0 {
                    if key == open_key[flat] {
                        demand.hit |= bit;
                    } else {
                        demand.other |= bit;
                    }
                }
            }
        }
        Some(demand)
    }
}

/// Per-bank demand bitmasks (bit index = `rank * banks_per_rank + bank`),
/// computed by [`PolicyView::bank_demand`] in a single pass over both
/// queues' packed key columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankDemand {
    /// Banks with an open row.
    pub open: u64,
    /// Open banks some pending request hits (targets the open row).
    pub hit: u64,
    /// Open banks some pending request conflicts with (targets another row).
    pub other: u64,
    /// Geometry for decoding flat indices back to (rank, bank).
    banks_per_rank: usize,
}

impl BankDemand {
    /// Decodes the lowest set bit of `mask` into `(rank, bank)` — the first
    /// matching bank in the rank-major order [`PolicyView::open_banks`]
    /// yields, preserving each policy's tie-break.
    #[must_use]
    pub fn first(&self, mask: u64) -> Option<(usize, usize)> {
        if mask == 0 {
            return None;
        }
        let flat = mask.trailing_zeros() as usize;
        Some((flat / self.banks_per_rank, flat % self.banks_per_rank))
    }

    /// Iterates the set bits of `mask` as `(rank, bank)` in rank-major
    /// (ascending flat) order.
    pub fn banks(&self, mask: u64) -> impl Iterator<Item = (usize, usize)> + '_ {
        let banks = self.banks_per_rank;
        std::iter::successors((mask != 0).then_some(mask), |m| {
            let rest = m & (m - 1);
            (rest != 0).then_some(rest)
        })
        .map(move |m| {
            let flat = m.trailing_zeros() as usize;
            (flat / banks, flat % banks)
        })
    }
}

/// A row-buffer management policy.
pub trait PagePolicy: std::fmt::Debug + Send {
    /// Short human-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Whether the column access about to issue at `loc` should use the
    /// auto-precharge command variant (closing the row right after the access).
    fn auto_precharge(&mut self, view: &PolicyView<'_>, loc: &Location) -> bool;

    /// Proposes an open bank to precharge proactively, as `(rank, bank)`.
    ///
    /// Only called on cycles where the scheduler has nothing better to issue;
    /// returning `None` keeps all rows open. Takes `&self`: proposals must be
    /// pure functions of the view, because the simulation kernel also
    /// consults them when computing the event horizon it may fast-forward to
    /// (any hidden mutation would make skipped idle cycles observable).
    fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)>;

    /// Earliest future cycle at which [`PagePolicy::propose_precharge`] could
    /// start returning `Some`, assuming the device state and the pending
    /// queues stay exactly as in `view` (no commands issue, nothing arrives).
    ///
    /// `None` means "never under a frozen state" — correct for every policy
    /// whose proposal depends only on the queues and the open rows, because
    /// those do not change while the kernel skips idle cycles. A policy whose
    /// proposal depends on *time* (like [`TimerPolicy`]) MUST override this
    /// and return the cycle its answer flips, otherwise fast-forwarding will
    /// jump over the cycle where it would have acted and the simulation stops
    /// being identical to the cycle-by-cycle run.
    ///
    /// Only consulted when `propose_precharge` currently returns `None`; an
    /// earlier-than-necessary (conservative) answer is always safe.
    fn next_wake(&self, _view: &PolicyView<'_>) -> Option<DramCycles> {
        None
    }

    /// Called when a row is activated.
    fn on_activate(&mut self, _rank: usize, _bank: usize, _row: u64, _now: DramCycles) {}

    /// Called when a column access is issued to an open row.
    fn on_column_access(&mut self, _rank: usize, _bank: usize, _row: u64, _now: DramCycles) {}

    /// Called when a row is closed after having served `accesses` column accesses.
    fn on_row_closed(&mut self, _rank: usize, _bank: usize, _row: u64, _accesses: u64) {}
}

/// Identifier for constructing page policies by name (used by the experiment
/// harness to sweep policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicyKind {
    /// Keep rows open until a conflict forces closure.
    Open,
    /// Close a row immediately after every access.
    Close,
    /// Open-adaptive (the paper's baseline, `OAPM`).
    OpenAdaptive,
    /// Close-adaptive (`CAPM`).
    CloseAdaptive,
    /// Row-Based Page Policy (Shen et al.).
    Rbpp,
    /// Access-Based Page Policy (Awasthi et al.).
    Abpp,
    /// Fixed per-bank idle timer (extension; not in the paper's comparison).
    Timer,
}

impl PagePolicyKind {
    /// The four policies compared in Figures 9–11.
    #[must_use]
    pub fn paper_set() -> [Self; 4] {
        [
            Self::OpenAdaptive,
            Self::CloseAdaptive,
            Self::Rbpp,
            Self::Abpp,
        ]
    }

    /// Instantiates the policy for a channel with `ranks` x `banks` banks.
    #[must_use]
    pub fn build(self, ranks: usize, banks: usize) -> Box<dyn PagePolicy> {
        match self {
            Self::Open => Box::new(OpenPage),
            Self::Close => Box::new(ClosePage),
            Self::OpenAdaptive => Box::new(OpenAdaptive),
            Self::CloseAdaptive => Box::new(CloseAdaptive),
            Self::Rbpp => Box::new(Rbpp::new(ranks, banks, 4)),
            Self::Abpp => Box::new(Abpp::new(ranks, banks, 16)),
            Self::Timer => Box::new(TimerPolicy::new(ranks, banks, 100)),
        }
    }

    /// Instantiates the policy as a devirtualized [`PagePolicyImpl`] — the
    /// form the controller keeps on its per-tick hot path.
    #[must_use]
    pub fn build_impl(self, ranks: usize, banks: usize) -> PagePolicyImpl {
        match self {
            Self::Open => PagePolicyImpl::Open(OpenPage),
            Self::Close => PagePolicyImpl::Close(ClosePage),
            Self::OpenAdaptive => PagePolicyImpl::OpenAdaptive(OpenAdaptive),
            Self::CloseAdaptive => PagePolicyImpl::CloseAdaptive(CloseAdaptive),
            Self::Rbpp => PagePolicyImpl::Rbpp(Rbpp::new(ranks, banks, 4)),
            Self::Abpp => PagePolicyImpl::Abpp(Abpp::new(ranks, banks, 16)),
            Self::Timer => PagePolicyImpl::Timer(TimerPolicy::new(ranks, banks, 100)),
        }
    }
}

/// Enum-dispatched page policy: every built-in policy as a concrete variant,
/// so the controller's per-tick consultations (auto-precharge on each column
/// command, precharge proposals on each no-issue tick, next-wake during
/// horizon walks) compile to a jump table over inlined bodies instead of
/// virtual calls through a `Box<dyn PagePolicy>`. The `Boxed` escape hatch
/// keeps external `PagePolicy` implementations usable.
#[derive(Debug)]
pub enum PagePolicyImpl {
    /// [`OpenPage`].
    Open(OpenPage),
    /// [`ClosePage`].
    Close(ClosePage),
    /// [`OpenAdaptive`].
    OpenAdaptive(OpenAdaptive),
    /// [`CloseAdaptive`].
    CloseAdaptive(CloseAdaptive),
    /// [`Rbpp`].
    Rbpp(Rbpp),
    /// [`Abpp`].
    Abpp(Abpp),
    /// [`TimerPolicy`].
    Timer(TimerPolicy),
    /// Any other [`PagePolicy`] implementation, dynamically dispatched.
    Boxed(Box<dyn PagePolicy>),
}

/// Applies `$body` to the concrete policy in every variant.
macro_rules! for_each_policy {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PagePolicyImpl::Open($p) => $body,
            PagePolicyImpl::Close($p) => $body,
            PagePolicyImpl::OpenAdaptive($p) => $body,
            PagePolicyImpl::CloseAdaptive($p) => $body,
            PagePolicyImpl::Rbpp($p) => $body,
            PagePolicyImpl::Abpp($p) => $body,
            PagePolicyImpl::Timer($p) => $body,
            PagePolicyImpl::Boxed($p) => $body,
        }
    };
}

impl PagePolicyImpl {
    /// Short human-readable name (used in reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        for_each_policy!(self, p => p.name())
    }

    /// See [`PagePolicy::auto_precharge`].
    #[inline]
    pub fn auto_precharge(&mut self, view: &PolicyView<'_>, loc: &Location) -> bool {
        for_each_policy!(self, p => p.auto_precharge(view, loc))
    }

    /// See [`PagePolicy::propose_precharge`].
    #[inline]
    #[must_use]
    pub fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
        for_each_policy!(self, p => p.propose_precharge(view))
    }

    /// See [`PagePolicy::next_wake`].
    #[inline]
    #[must_use]
    pub fn next_wake(&self, view: &PolicyView<'_>) -> Option<DramCycles> {
        for_each_policy!(self, p => p.next_wake(view))
    }

    /// See [`PagePolicy::on_activate`].
    #[inline]
    pub fn on_activate(&mut self, rank: usize, bank: usize, row: u64, now: DramCycles) {
        for_each_policy!(self, p => p.on_activate(rank, bank, row, now));
    }

    /// See [`PagePolicy::on_column_access`].
    #[inline]
    pub fn on_column_access(&mut self, rank: usize, bank: usize, row: u64, now: DramCycles) {
        for_each_policy!(self, p => p.on_column_access(rank, bank, row, now));
    }

    /// See [`PagePolicy::on_row_closed`].
    #[inline]
    pub fn on_row_closed(&mut self, rank: usize, bank: usize, row: u64, accesses: u64) {
        for_each_policy!(self, p => p.on_row_closed(rank, bank, row, accesses));
    }

    /// Whether this policy's state can be checkpointed. External
    /// [`PagePolicyImpl::Boxed`] implementations are opaque to the snapshot
    /// machinery; callers must gate on this before saving.
    #[must_use]
    pub fn snapshot_supported(&self) -> bool {
        !matches!(self, Self::Boxed(_))
    }

    /// Serializes the policy's mutable state (checkpoint support). The
    /// static policies are stateless and contribute no bytes; `Boxed`
    /// policies must be gated out via [`Self::snapshot_supported`].
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        match self {
            Self::Open(_)
            | Self::Close(_)
            | Self::OpenAdaptive(_)
            | Self::CloseAdaptive(_)
            | Self::Boxed(_) => {}
            Self::Rbpp(p) => p.predictor.save_state(w),
            Self::Abpp(p) => p.predictor.save_state(w),
            Self::Timer(p) => p.save_state(w),
        }
    }

    /// Restores the policy's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or state
    /// inconsistent with the configured geometry.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        match self {
            Self::Open(_)
            | Self::Close(_)
            | Self::OpenAdaptive(_)
            | Self::CloseAdaptive(_)
            | Self::Boxed(_) => Ok(()),
            Self::Rbpp(p) => p.predictor.load_state(r),
            Self::Abpp(p) => p.predictor.load_state(r),
            Self::Timer(p) => p.load_state(r),
        }
    }
}

impl From<Box<dyn PagePolicy>> for PagePolicyImpl {
    fn from(policy: Box<dyn PagePolicy>) -> Self {
        Self::Boxed(policy)
    }
}

impl std::fmt::Display for PagePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Open => "open",
            Self::Close => "close",
            Self::OpenAdaptive => "open-adaptive",
            Self::CloseAdaptive => "close-adaptive",
            Self::Rbpp => "rbpp",
            Self::Abpp => "abpp",
            Self::Timer => "timer",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PagePolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "open" => Ok(Self::Open),
            "close" => Ok(Self::Close),
            "open-adaptive" | "oapm" => Ok(Self::OpenAdaptive),
            "close-adaptive" | "capm" => Ok(Self::CloseAdaptive),
            "rbpp" => Ok(Self::Rbpp),
            "abpp" => Ok(Self::Abpp),
            "timer" => Ok(Self::Timer),
            other => Err(format!("unknown page policy `{other}`")),
        }
    }
}

/// Open-page policy: rows stay open until a conflicting access forces closure.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenPage;

impl PagePolicy for OpenPage {
    fn name(&self) -> &'static str {
        "open"
    }

    fn auto_precharge(&mut self, _view: &PolicyView<'_>, _loc: &Location) -> bool {
        false
    }

    fn propose_precharge(&self, _view: &PolicyView<'_>) -> Option<(usize, usize)> {
        None
    }
}

/// Close-page policy: every column access auto-precharges its row.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosePage;

impl PagePolicy for ClosePage {
    fn name(&self) -> &'static str {
        "close"
    }

    fn auto_precharge(&mut self, _view: &PolicyView<'_>, _loc: &Location) -> bool {
        true
    }

    fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
        // Any row left open (e.g. activated but its request was cancelled)
        // is closed as soon as possible.
        view.open_banks().map(|(r, b, _)| (r, b)).next()
    }
}

/// Picks the first open bank satisfying `predicate` on the per-bank demand
/// masks (fast path), falling back to the per-bank scans when the channel
/// is too wide for the bitmask summary. Both paths evaluate the same
/// predicate over the same rank-major order, so the choice is invisible.
fn propose_by_demand(
    view: &PolicyView<'_>,
    fast: impl Fn(&BankDemand) -> u64,
    slow: impl Fn(usize, usize, u64) -> bool,
) -> Option<(usize, usize)> {
    match view.bank_demand() {
        Some(demand) => demand.first(fast(&demand)),
        None => view
            .open_banks()
            .find(|&(r, b, row)| slow(r, b, row))
            .map(|(r, b, _)| (r, b)),
    }
}

/// Open-adaptive policy (`OAPM`): close a row only when no pending request
/// would hit it *and* some pending request needs another row of the bank.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenAdaptive;

impl PagePolicy for OpenAdaptive {
    fn name(&self) -> &'static str {
        "open-adaptive"
    }

    fn auto_precharge(&mut self, view: &PolicyView<'_>, loc: &Location) -> bool {
        !view.pending_hit(loc.rank, loc.bank, loc.row)
            && view.pending_other_row(loc.rank, loc.bank, loc.row)
    }

    fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
        propose_by_demand(
            view,
            |d| d.open & !d.hit & d.other,
            |r, b, row| !view.pending_hit(r, b, row) && view.pending_other_row(r, b, row),
        )
    }
}

/// Close-adaptive policy (`CAPM`): close a row as soon as no pending request
/// would hit it, regardless of whether another row is wanted.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloseAdaptive;

impl PagePolicy for CloseAdaptive {
    fn name(&self) -> &'static str {
        "close-adaptive"
    }

    fn auto_precharge(&mut self, view: &PolicyView<'_>, loc: &Location) -> bool {
        !view.pending_hit(loc.rank, loc.bank, loc.row)
    }

    fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
        propose_by_demand(
            view,
            |d| d.open & !d.hit,
            |r, b, row| !view.pending_hit(r, b, row),
        )
    }
}

/// One predictor entry: a row and the number of hits it received during its
/// previous activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowHistory {
    row: u64,
    hits: u64,
    /// Monotonic stamp for LRU replacement.
    stamp: u64,
}

/// Per-bank tracking of the current activation used by the predictive policies.
#[derive(Debug, Clone, Copy, Default)]
struct CurrentActivation {
    row: u64,
    open: bool,
    accesses: u64,
    /// Predicted total accesses (1 + predicted hits), if a prediction exists.
    predicted: Option<u64>,
}

/// Shared implementation of the two history-based predictive policies.
///
/// Both RBPP and ABPP predict that a row will receive the same number of
/// row-buffer hits as during its previous activation and close it once that
/// many accesses have been served. They differ in what they record: RBPP
/// keeps a few most-accessed-row registers per bank and only records rows
/// that received at least one hit; ABPP keeps a larger per-bank table and
/// records every row. Rows without a prediction stay open until a conflict.
#[derive(Debug, Clone)]
struct HistoryPredictor {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    name: &'static str,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    banks_per_rank: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    entries_per_bank: usize,
    /// `true` for RBPP: only rows with >= 1 hit are recorded.
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    record_only_hit_rows: bool,
    tables: Vec<Vec<RowHistory>>,
    current: Vec<CurrentActivation>,
    stamp: u64,
}

impl HistoryPredictor {
    fn new(
        name: &'static str,
        ranks: usize,
        banks: usize,
        entries_per_bank: usize,
        record_only_hit_rows: bool,
    ) -> Self {
        let n = ranks * banks;
        Self {
            name,
            banks_per_rank: banks,
            entries_per_bank,
            record_only_hit_rows,
            tables: vec![Vec::new(); n],
            current: vec![CurrentActivation::default(); n],
            stamp: 0,
        }
    }

    fn idx(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bank
    }

    fn lookup(&self, rank: usize, bank: usize, row: u64) -> Option<u64> {
        self.tables[self.idx(rank, bank)]
            .iter()
            .find(|e| e.row == row)
            .map(|e| e.hits)
    }

    fn record(&mut self, rank: usize, bank: usize, row: u64, hits: u64) {
        if self.record_only_hit_rows && hits == 0 {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let cap = self.entries_per_bank;
        let idx = self.idx(rank, bank);
        let table = &mut self.tables[idx];
        if let Some(e) = table.iter_mut().find(|e| e.row == row) {
            e.hits = hits;
            e.stamp = stamp;
            return;
        }
        if table.len() >= cap {
            // Evict the least recently recorded entry.
            if let Some(pos) = table
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
            {
                table.swap_remove(pos);
            }
        }
        table.push(RowHistory { row, hits, stamp });
    }

    /// Whether the current activation of (`rank`, `bank`) has met its
    /// predicted access count (counting the access about to issue if
    /// `plus_one` is set).
    fn prediction_met(&self, rank: usize, bank: usize, plus_one: bool) -> bool {
        let cur = &self.current[self.idx(rank, bank)];
        if !cur.open {
            return false;
        }
        match cur.predicted {
            Some(target) => cur.accesses + u64::from(plus_one) >= target,
            None => false,
        }
    }

    fn on_activate(&mut self, rank: usize, bank: usize, row: u64) {
        let predicted = self.lookup(rank, bank, row).map(|hits| hits + 1);
        let idx = self.idx(rank, bank);
        self.current[idx] = CurrentActivation {
            row,
            open: true,
            accesses: 0,
            predicted,
        };
    }

    fn on_column_access(&mut self, rank: usize, bank: usize, row: u64) {
        let idx = self.idx(rank, bank);
        let cur = &mut self.current[idx];
        if cur.open && cur.row == row {
            cur.accesses += 1;
        }
    }

    fn on_row_closed(&mut self, rank: usize, bank: usize, row: u64, accesses: u64) {
        let idx = self.idx(rank, bank);
        self.current[idx].open = false;
        let hits = accesses.saturating_sub(1);
        self.record(rank, bank, row, hits);
    }

    /// Serializes the predictor's mutable state (checkpoint support).
    fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.u64(self.stamp);
        w.usize(self.current.len());
        for cur in &self.current {
            w.u64(cur.row);
            w.bool(cur.open);
            w.u64(cur.accesses);
            match cur.predicted {
                None => w.u8(0),
                Some(target) => {
                    w.u8(1);
                    w.u64(target);
                }
            }
        }
        w.usize(self.tables.len());
        for table in &self.tables {
            w.usize(table.len());
            for e in table {
                w.u64(e.row);
                w.u64(e.hits);
                w.u64(e.stamp);
            }
        }
    }

    /// Restores the predictor's mutable state from a checkpoint.
    fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        self.stamp = r.u64()?;
        let count = r.bounded_len(18)?;
        if count != self.current.len() {
            return Err(r.bad_value(format!(
                "{count} activation trackers, expected {}",
                self.current.len()
            )));
        }
        for cur in &mut self.current {
            cur.row = r.u64()?;
            cur.open = r.bool()?;
            cur.accesses = r.u64()?;
            cur.predicted = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(r.bad_value(format!("prediction tag {t}"))),
            };
        }
        let count = r.bounded_len(8)?;
        if count != self.tables.len() {
            return Err(r.bad_value(format!(
                "{count} history tables, expected {}",
                self.tables.len()
            )));
        }
        for table in &mut self.tables {
            let len = r.bounded_len(24)?;
            if len > self.entries_per_bank {
                return Err(r.bad_value(format!(
                    "{len} history entries exceed per-bank capacity {}",
                    self.entries_per_bank
                )));
            }
            table.clear();
            for _ in 0..len {
                let row = r.u64()?;
                let hits = r.u64()?;
                let stamp = r.u64()?;
                table.push(RowHistory { row, hits, stamp });
            }
        }
        Ok(())
    }
}

/// Row-Based Page Policy (RBPP): a few most-accessed-row registers per bank,
/// recording only rows that received at least one hit.
#[derive(Debug, Clone)]
pub struct Rbpp {
    predictor: HistoryPredictor,
}

impl Rbpp {
    /// Creates RBPP with `registers` most-accessed-row registers per bank.
    #[must_use]
    pub fn new(ranks: usize, banks: usize, registers: usize) -> Self {
        Self {
            predictor: HistoryPredictor::new("rbpp", ranks, banks, registers, true),
        }
    }
}

/// Access-Based Page Policy (ABPP): a per-bank table of recently activated
/// rows and the hit count they received last time.
#[derive(Debug, Clone)]
pub struct Abpp {
    predictor: HistoryPredictor,
}

impl Abpp {
    /// Creates ABPP with `entries` table entries per bank.
    #[must_use]
    pub fn new(ranks: usize, banks: usize, entries: usize) -> Self {
        Self {
            predictor: HistoryPredictor::new("abpp", ranks, banks, entries, false),
        }
    }
}

macro_rules! impl_predictive_policy {
    ($ty:ty) => {
        impl PagePolicy for $ty {
            fn name(&self) -> &'static str {
                self.predictor.name
            }

            fn auto_precharge(&mut self, view: &PolicyView<'_>, loc: &Location) -> bool {
                // Never close while more hits are queued; close once the
                // prediction for this activation is satisfied.
                !view.pending_hit(loc.rank, loc.bank, loc.row)
                    && self.predictor.prediction_met(loc.rank, loc.bank, true)
            }

            fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
                match view.bank_demand() {
                    Some(d) => d
                        .banks(d.open & !d.hit)
                        .find(|&(r, b)| self.predictor.prediction_met(r, b, false)),
                    None => view
                        .open_banks()
                        .find(|&(r, b, row)| {
                            !view.pending_hit(r, b, row)
                                && self.predictor.prediction_met(r, b, false)
                        })
                        .map(|(r, b, _)| (r, b)),
                }
            }

            fn on_activate(&mut self, rank: usize, bank: usize, row: u64, _now: DramCycles) {
                self.predictor.on_activate(rank, bank, row);
            }

            fn on_column_access(&mut self, rank: usize, bank: usize, row: u64, _now: DramCycles) {
                self.predictor.on_column_access(rank, bank, row);
            }

            fn on_row_closed(&mut self, rank: usize, bank: usize, row: u64, accesses: u64) {
                self.predictor.on_row_closed(rank, bank, row, accesses);
            }
        }
    };
}

impl_predictive_policy!(Rbpp);
impl_predictive_policy!(Abpp);

/// Idle-timer policy: close a row after it has been idle for a fixed number
/// of DRAM cycles. This predates RBPP/ABPP; included as an extension.
#[derive(Debug, Clone)]
pub struct TimerPolicy {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    banks_per_rank: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    timeout: DramCycles,
    last_access: Vec<DramCycles>,
}

impl TimerPolicy {
    /// Creates a timer policy with the given idle `timeout` in DRAM cycles.
    #[must_use]
    pub fn new(ranks: usize, banks: usize, timeout: DramCycles) -> Self {
        Self {
            banks_per_rank: banks,
            timeout,
            last_access: vec![0; ranks * banks],
        }
    }

    fn idx(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bank
    }

    /// Serializes the per-bank idle timers (checkpoint support).
    fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.u64_slice(&self.last_access);
    }

    /// Restores the per-bank idle timers from a checkpoint.
    fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let count = r.bounded_len(8)?;
        if count != self.last_access.len() {
            return Err(r.bad_value(format!(
                "{count} idle timers, expected {}",
                self.last_access.len()
            )));
        }
        for slot in &mut self.last_access {
            *slot = r.u64()?;
        }
        Ok(())
    }
}

impl PagePolicy for TimerPolicy {
    fn name(&self) -> &'static str {
        "timer"
    }

    fn auto_precharge(&mut self, _view: &PolicyView<'_>, _loc: &Location) -> bool {
        false
    }

    fn propose_precharge(&self, view: &PolicyView<'_>) -> Option<(usize, usize)> {
        match view.bank_demand() {
            Some(d) => d.banks(d.open & !d.hit).find(|&(r, b)| {
                view.now.saturating_sub(self.last_access[self.idx(r, b)]) >= self.timeout
            }),
            None => view
                .open_banks()
                .find(|&(r, b, row)| {
                    !view.pending_hit(r, b, row)
                        && view.now.saturating_sub(self.last_access[self.idx(r, b)]) >= self.timeout
                })
                .map(|(r, b, _)| (r, b)),
        }
    }

    /// The proposal flips from `None` to `Some` when the first idle open
    /// bank's timeout expires; the kernel must not fast-forward past that.
    fn next_wake(&self, view: &PolicyView<'_>) -> Option<DramCycles> {
        match view.bank_demand() {
            Some(d) => d
                .banks(d.open & !d.hit)
                .map(|(r, b)| self.last_access[self.idx(r, b)] + self.timeout)
                .min(),
            None => view
                .open_banks()
                .filter(|&(r, b, row)| !view.pending_hit(r, b, row))
                .map(|(r, b, _)| self.last_access[self.idx(r, b)] + self.timeout)
                .min(),
        }
    }

    fn on_activate(&mut self, rank: usize, bank: usize, _row: u64, now: DramCycles) {
        let idx = self.idx(rank, bank);
        self.last_access[idx] = now;
    }

    fn on_column_access(&mut self, rank: usize, bank: usize, _row: u64, now: DramCycles) {
        let idx = self.idx(rank, bank);
        self.last_access[idx] = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig};

    fn view_fixture(open_row: Option<u64>) -> (DramChannel, RequestQueue, RequestQueue) {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        if let Some(row) = open_row {
            ch.issue(&Command::activate(Location::new(0, 0, row, 0)), 0);
        }
        (ch, RequestQueue::new(8), RequestQueue::new(8))
    }

    fn push(q: &mut RequestQueue, id: u64, rank: usize, bank: usize, row: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, 0, 0),
            Location::new(rank, bank, row, 0),
            0,
        )
        .unwrap();
    }

    #[test]
    fn open_page_never_closes() {
        let (ch, rq, wq) = view_fixture(Some(5));
        let view = PolicyView {
            now: 100,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        let mut p = OpenPage;
        assert!(!p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
        assert!(p.propose_precharge(&view).is_none());
    }

    #[test]
    fn close_page_always_closes() {
        let (ch, rq, wq) = view_fixture(Some(5));
        let view = PolicyView {
            now: 100,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        let mut p = ClosePage;
        assert!(p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
        assert_eq!(p.propose_precharge(&view), Some((0, 0)));
    }

    #[test]
    fn open_adaptive_needs_conflicting_demand() {
        let (ch, mut rq, wq) = view_fixture(Some(5));
        let mut p = OpenAdaptive;
        // No pending requests at all: keep the row open.
        {
            let view = PolicyView {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
            };
            assert!(!p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
            assert!(p.propose_precharge(&view).is_none());
        }
        // A pending request to another row of the same bank: close.
        push(&mut rq, 1, 0, 0, 9);
        {
            let view = PolicyView {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
            };
            assert!(p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
            assert_eq!(p.propose_precharge(&view), Some((0, 0)));
        }
        // But if a hit is also pending, keep it open.
        push(&mut rq, 2, 0, 0, 5);
        {
            let view = PolicyView {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
            };
            assert!(!p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
            assert!(p.propose_precharge(&view).is_none());
        }
    }

    #[test]
    fn close_adaptive_closes_without_other_row_demand() {
        let (ch, rq, mut wq) = view_fixture(Some(5));
        let mut p = CloseAdaptive;
        {
            let view = PolicyView {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
            };
            assert!(p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
            assert_eq!(p.propose_precharge(&view), Some((0, 0)));
        }
        // A pending write hit keeps the row open.
        push(&mut wq, 1, 0, 0, 5);
        {
            let view = PolicyView {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
            };
            assert!(!p.auto_precharge(&view, &Location::new(0, 0, 5, 0)));
            assert!(p.propose_precharge(&view).is_none());
        }
    }

    #[test]
    fn rbpp_predicts_from_previous_activation() {
        let (ch, rq, wq) = view_fixture(Some(7));
        let mut p = Rbpp::new(2, 8, 4);
        let view = PolicyView {
            now: 0,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        // First activation: no prediction, behaves like open page.
        p.on_activate(0, 0, 7, 0);
        p.on_column_access(0, 0, 7, 0);
        assert!(!p.auto_precharge(&view, &Location::new(0, 0, 7, 0)));
        // The row closes after 2 accesses (1 hit) -> recorded.
        p.on_column_access(0, 0, 7, 0);
        p.on_row_closed(0, 0, 7, 2);
        // Second activation of the same row: predicted 2 accesses.
        p.on_activate(0, 0, 7, 0);
        p.on_column_access(0, 0, 7, 0);
        // The next access is the second -> prediction met -> close.
        assert!(p.auto_precharge(&view, &Location::new(0, 0, 7, 0)));
        p.on_column_access(0, 0, 7, 0);
        assert_eq!(p.propose_precharge(&view), Some((0, 0)));
    }

    #[test]
    fn rbpp_ignores_single_access_rows() {
        let (ch, rq, wq) = view_fixture(Some(7));
        let mut p = Rbpp::new(2, 8, 4);
        let view = PolicyView {
            now: 0,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        p.on_activate(0, 0, 7, 0);
        p.on_column_access(0, 0, 7, 0);
        p.on_row_closed(0, 0, 7, 1); // zero hits -> not recorded by RBPP
        p.on_activate(0, 0, 7, 0);
        assert!(!p.auto_precharge(&view, &Location::new(0, 0, 7, 0)));
    }

    #[test]
    fn abpp_records_single_access_rows() {
        let (ch, rq, wq) = view_fixture(Some(7));
        let mut p = Abpp::new(2, 8, 16);
        let view = PolicyView {
            now: 0,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        p.on_activate(0, 0, 7, 0);
        p.on_column_access(0, 0, 7, 0);
        p.on_row_closed(0, 0, 7, 1); // zero hits, but ABPP records it
        p.on_activate(0, 0, 7, 0);
        // Prediction is 1 access, so the first access already meets it.
        assert!(p.auto_precharge(&view, &Location::new(0, 0, 7, 0)));
    }

    #[test]
    fn predictor_evicts_least_recently_recorded() {
        let mut pred = HistoryPredictor::new("x", 1, 1, 2, false);
        pred.record(0, 0, 1, 3);
        pred.record(0, 0, 2, 4);
        pred.record(0, 0, 3, 5); // evicts row 1
        assert_eq!(pred.lookup(0, 0, 1), None);
        assert_eq!(pred.lookup(0, 0, 2), Some(4));
        assert_eq!(pred.lookup(0, 0, 3), Some(5));
        // Re-recording updates in place.
        pred.record(0, 0, 2, 9);
        assert_eq!(pred.lookup(0, 0, 2), Some(9));
    }

    #[test]
    fn timer_policy_closes_idle_rows() {
        let (ch, rq, wq) = view_fixture(Some(5));
        let mut p = TimerPolicy::new(2, 8, 50);
        p.on_activate(0, 0, 5, 0);
        p.on_column_access(0, 0, 5, 10);
        let early = PolicyView {
            now: 40,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        assert!(p.propose_precharge(&early).is_none());
        let late = PolicyView {
            now: 61,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
        };
        assert_eq!(p.propose_precharge(&late), Some((0, 0)));
    }

    #[test]
    fn kind_builds_every_policy_and_parses() {
        for kind in [
            PagePolicyKind::Open,
            PagePolicyKind::Close,
            PagePolicyKind::OpenAdaptive,
            PagePolicyKind::CloseAdaptive,
            PagePolicyKind::Rbpp,
            PagePolicyKind::Abpp,
            PagePolicyKind::Timer,
        ] {
            let p = kind.build(2, 8);
            assert!(!p.name().is_empty());
            let parsed: PagePolicyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<PagePolicyKind>().is_err());
        assert_eq!(PagePolicyKind::paper_set()[0], PagePolicyKind::OpenAdaptive);
    }
}
