//! Pending-request queues of the memory controller.

use cloudmc_dram::{DramCycles, Location};

use crate::request::{MemoryRequest, RequestId, TenantId, MAX_TENANTS};

/// A request waiting in the controller together with its decoded coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// The pending request.
    pub request: MemoryRequest,
    /// Decoded DRAM coordinates within the owning channel.
    pub location: Location,
    /// Cycle at which the request entered this queue.
    pub enqueued_at: DramCycles,
}

impl QueueEntry {
    /// Age of the entry at `now` in DRAM cycles.
    #[must_use]
    pub fn age(&self, now: DramCycles) -> DramCycles {
        now.saturating_sub(self.enqueued_at)
    }
}

/// Bit position of the bank field in a packed [`bank_row_key`].
const KEY_BANK_SHIFT: u32 = 48;
/// Bit position of the rank field in a packed [`bank_row_key`].
const KEY_RANK_SHIFT: u32 = 56;
/// Row bits of a packed key.
const KEY_ROW_MASK: u64 = (1 << KEY_BANK_SHIFT) - 1;
/// Rank and bank bits of a packed key (everything above the row).
const KEY_BANK_BITS: u64 = !KEY_ROW_MASK;

/// Packs DRAM coordinates into one word: `rank` in the top byte, `bank`
/// below it, `row` in the low 48 bits. Row-hit and row-conflict tests over a
/// whole queue become single-word compares against a flat `u64` column (see
/// [`RequestQueue::keys`]), instead of three field compares per pointer-wide
/// `QueueEntry`.
#[must_use]
#[inline]
pub fn bank_row_key(rank: usize, bank: usize, row: u64) -> u64 {
    debug_assert!(rank < (1 << 8) && bank < (1 << 8) && row <= KEY_ROW_MASK);
    ((rank as u64) << KEY_RANK_SHIFT) | ((bank as u64) << KEY_BANK_SHIFT) | row
}

/// The rank field of a packed [`bank_row_key`].
#[must_use]
#[inline]
pub fn key_rank(key: u64) -> usize {
    (key >> KEY_RANK_SHIFT) as usize
}

/// The bank field of a packed [`bank_row_key`].
#[must_use]
#[inline]
pub fn key_bank(key: u64) -> usize {
    ((key >> KEY_BANK_SHIFT) & 0xFF) as usize
}

/// A bounded FIFO-ordered pool of pending requests.
///
/// Entries preserve arrival order (index 0 is the oldest), which the
/// first-come-first-served family of schedulers relies on; other schedulers
/// are free to pick any entry.
///
/// Storage is struct-of-arrays for the hot fields: alongside the full
/// [`QueueEntry`] records lives a parallel column of packed
/// [`bank_row_key`] words, kept index-aligned on every push and remove, so
/// the scans the scheduler and page-policy hot paths run every DRAM tick
/// (row hits, row conflicts, per-rank demand) touch a dense `u64` slice
/// instead of striding over 64-byte entries.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    entries: Vec<QueueEntry>,
    /// Packed (rank, bank, row) of each entry; `keys[i]` describes
    /// `entries[i]`.
    // simlint: allow(snapshot-coverage) derived id index, rebuilt from the entries by load_state
    keys: Vec<u64>,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    capacity: usize,
    /// Pending entries per tenant, maintained incrementally so per-tenant
    /// occupancy sampling is O(tenants), not O(queue).
    // simlint: allow(snapshot-coverage) derived occupancy counters, rebuilt by load_state
    tenant_len: [usize; MAX_TENANTS],
}

impl RequestQueue {
    /// Creates a queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            capacity,
            tenant_len: [0; MAX_TENANTS],
        }
    }

    /// Maximum number of simultaneously pending requests.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pending requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue cannot accept another request.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full.
    pub fn push(
        &mut self,
        request: MemoryRequest,
        location: Location,
        now: DramCycles,
    ) -> Result<(), MemoryRequest> {
        if self.is_full() {
            return Err(request);
        }
        // Out-of-range ids land in the last slot, matching the clamp every
        // other per-tenant counter applies.
        self.tenant_len[request.tenant.min(MAX_TENANTS - 1)] += 1;
        self.keys
            .push(bank_row_key(location.rank, location.bank, location.row));
        self.entries.push(QueueEntry {
            request,
            location,
            enqueued_at: now,
        });
        Ok(())
    }

    /// Serializes the pending entries in arrival order (checkpoint support).
    /// The capacity is config-derived and not serialized; the packed key
    /// column and per-tenant lengths are rebuilt on load.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.usize(self.entries.len());
        for entry in &self.entries {
            crate::snapio::write_request(w, &entry.request);
            crate::snapio::write_location(w, entry.location);
            w.u64(entry.enqueued_at);
        }
    }

    /// Restores the pending entries from a checkpoint, rebuilding the derived
    /// key column and tenant occupancy counters.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation, an invalid
    /// entry, or an entry count exceeding the configured capacity.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let count = r.bounded_len(42)?;
        if count > self.capacity {
            return Err(r.bad_value(format!(
                "{count} queued entries exceed capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        self.keys.clear();
        self.tenant_len = [0; MAX_TENANTS];
        for _ in 0..count {
            let request = crate::snapio::read_request(r)?;
            let location = crate::snapio::read_location(r)?;
            let enqueued_at = r.u64()?;
            // Cannot fail: `count` was checked against the capacity above.
            let _ = self.push(request, location, enqueued_at);
        }
        Ok(())
    }

    /// Removes and returns the entry with id `id`, preserving order of the rest.
    pub fn remove(&mut self, id: RequestId) -> Option<QueueEntry> {
        let idx = self.entries.iter().position(|e| e.request.id == id)?;
        let entry = self.entries.remove(idx);
        self.keys.remove(idx);
        self.tenant_len[entry.request.tenant.min(MAX_TENANTS - 1)] -= 1;
        Some(entry)
    }

    /// The oldest entry, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<&QueueEntry> {
        self.entries.first()
    }

    /// Iterates over entries in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Entry lookup by request id.
    #[must_use]
    pub fn get(&self, id: RequestId) -> Option<&QueueEntry> {
        self.entries.iter().find(|e| e.request.id == id)
    }

    /// The packed [`bank_row_key`] column, index-aligned with the entries:
    /// the flat `u64` lane for single-pass demand scans.
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Whether any pending entry targets the given open row of (`rank`, `bank`).
    #[must_use]
    pub fn any_hit(&self, rank: usize, bank: usize, row: u64) -> bool {
        let key = bank_row_key(rank, bank, row);
        self.keys.contains(&key)
    }

    /// Whether any pending entry targets (`rank`, `bank`) but a different row.
    #[must_use]
    pub fn any_other_row(&self, rank: usize, bank: usize, row: u64) -> bool {
        let key = bank_row_key(rank, bank, row);
        let bank_bits = key & KEY_BANK_BITS;
        self.keys
            .iter()
            .any(|&k| (k & KEY_BANK_BITS) == bank_bits && k != key)
    }

    /// Whether any pending entry targets rank `rank` (any bank or row).
    #[must_use]
    pub fn any_for_rank(&self, rank: usize) -> bool {
        let rank = rank as u64;
        self.keys.iter().any(|&k| (k >> KEY_RANK_SHIFT) == rank)
    }

    /// Number of pending entries for `core`.
    #[must_use]
    pub fn count_for_core(&self, core: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.request.core == core)
            .count()
    }

    /// Number of pending entries attributed to `tenant` (O(1)).
    #[must_use]
    pub fn len_for_tenant(&self, tenant: TenantId) -> usize {
        self.tenant_len.get(tenant).copied().unwrap_or(0)
    }

    /// Pending entries per tenant (index = tenant id).
    #[must_use]
    pub fn tenant_lens(&self) -> [usize; MAX_TENANTS] {
        self.tenant_len
    }

    /// Iterates over the entries of one tenant in arrival order.
    pub fn iter_for_tenant(&self, tenant: TenantId) -> impl Iterator<Item = &QueueEntry> {
        self.entries
            .iter()
            .filter(move |e| e.request.tenant == tenant)
    }

    /// Number of pending entries for (`core`, flat bank index).
    #[must_use]
    pub fn count_for_core_bank(&self, core: usize, rank: usize, bank: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                e.request.core == core && e.location.rank == rank && e.location.bank == bank
            })
            .count()
    }
}

impl<'a> IntoIterator for &'a RequestQueue {
    type Item = &'a QueueEntry;
    type IntoIter = std::slice::Iter<'a, QueueEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AccessKind;

    fn req(id: RequestId, core: usize) -> MemoryRequest {
        MemoryRequest::new(id, AccessKind::Read, id * 64, core, id)
    }

    fn loc(rank: usize, bank: usize, row: u64) -> Location {
        Location::new(rank, bank, row, 0)
    }

    #[test]
    fn push_and_remove_preserve_fifo_order() {
        let mut q = RequestQueue::new(4);
        for i in 0..3 {
            q.push(req(i, 0), loc(0, 0, i), i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.oldest().unwrap().request.id, 0);
        let removed = q.remove(1).unwrap();
        assert_eq!(removed.request.id, 1);
        let ids: Vec<_> = q.iter().map(|e| e.request.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn push_fails_when_full() {
        let mut q = RequestQueue::new(2);
        q.push(req(0, 0), loc(0, 0, 0), 0).unwrap();
        q.push(req(1, 0), loc(0, 0, 0), 0).unwrap();
        assert!(q.is_full());
        let rejected = q.push(req(2, 0), loc(0, 0, 0), 0).unwrap_err();
        assert_eq!(rejected.id, 2);
    }

    #[test]
    fn row_queries_distinguish_hit_and_conflict() {
        let mut q = RequestQueue::new(8);
        q.push(req(0, 0), loc(0, 3, 100), 0).unwrap();
        q.push(req(1, 1), loc(0, 3, 200), 0).unwrap();
        assert!(q.any_hit(0, 3, 100));
        assert!(q.any_hit(0, 3, 200));
        assert!(!q.any_hit(0, 3, 300));
        assert!(q.any_other_row(0, 3, 100));
        assert!(!q.any_other_row(0, 4, 100));
    }

    #[test]
    fn per_core_counters() {
        let mut q = RequestQueue::new(8);
        q.push(req(0, 2), loc(0, 1, 5), 0).unwrap();
        q.push(req(1, 2), loc(0, 2, 5), 0).unwrap();
        q.push(req(2, 3), loc(0, 1, 5), 0).unwrap();
        assert_eq!(q.count_for_core(2), 2);
        assert_eq!(q.count_for_core(3), 1);
        assert_eq!(q.count_for_core_bank(2, 0, 1), 1);
        assert_eq!(q.count_for_core_bank(2, 0, 2), 1);
        assert_eq!(q.count_for_core_bank(3, 0, 2), 0);
    }

    #[test]
    fn per_tenant_occupancy_tracks_push_and_remove() {
        let mut q = RequestQueue::new(8);
        q.push(req(0, 0).with_tenant(0), loc(0, 0, 1), 0).unwrap();
        q.push(req(1, 1).with_tenant(1), loc(0, 0, 2), 0).unwrap();
        q.push(req(2, 2).with_tenant(1), loc(0, 1, 3), 0).unwrap();
        assert_eq!(q.len_for_tenant(0), 1);
        assert_eq!(q.len_for_tenant(1), 2);
        assert_eq!(q.len_for_tenant(3), 0);
        assert_eq!(q.tenant_lens()[..2], [1, 2]);
        let ids: Vec<_> = q.iter_for_tenant(1).map(|e| e.request.id).collect();
        assert_eq!(ids, vec![1, 2]);
        q.remove(1).unwrap();
        assert_eq!(q.len_for_tenant(1), 1);
        // Out-of-range tenants are ignored rather than panicking.
        assert_eq!(q.len_for_tenant(99), 0);
    }

    #[test]
    fn age_uses_enqueue_cycle() {
        let mut q = RequestQueue::new(2);
        q.push(req(0, 0), loc(0, 0, 0), 10).unwrap();
        assert_eq!(q.oldest().unwrap().age(25), 15);
        assert_eq!(q.oldest().unwrap().age(5), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = RequestQueue::new(0);
    }
}
