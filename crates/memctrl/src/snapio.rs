//! Checkpoint encoding helpers shared across the controller's modules.
//!
//! Requests, DRAM locations, and completion records appear in several
//! serialized structures (pending queues, in-flight transfers, parked
//! retries); these helpers keep their wire encoding in one place.

use cloudmc_dram::Location;
use cloudmc_snap::{SnapError, SnapReader, SnapWriter};

use crate::request::{AccessKind, CompletedRequest, MemoryRequest, RowBufferOutcome, MAX_TENANTS};

/// Serializes one memory request.
pub(crate) fn write_request(w: &mut SnapWriter, req: &MemoryRequest) {
    w.u64(req.id);
    w.u8(match req.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    });
    w.u64(req.addr);
    w.usize(req.core);
    w.usize(req.tenant);
    w.u64(req.arrival);
    w.bool(req.dma);
}

/// Deserializes one memory request, validating the kind discriminant and the
/// tenant clamp invariant.
pub(crate) fn read_request(r: &mut SnapReader<'_>) -> Result<MemoryRequest, SnapError> {
    let id = r.u64()?;
    let kind = match r.u8()? {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        k => return Err(r.bad_value(format!("access kind discriminant {k}"))),
    };
    let addr = r.u64()?;
    let core = r.usize()?;
    let tenant = r.usize()?;
    if tenant >= MAX_TENANTS {
        return Err(r.bad_value(format!("tenant {tenant} >= MAX_TENANTS {MAX_TENANTS}")));
    }
    let arrival = r.u64()?;
    let dma = r.bool()?;
    Ok(MemoryRequest {
        id,
        kind,
        addr,
        core,
        tenant,
        arrival,
        dma,
    })
}

/// Serializes one DRAM location.
pub(crate) fn write_location(w: &mut SnapWriter, loc: Location) {
    w.usize(loc.rank);
    w.usize(loc.bank);
    w.u64(loc.row);
    w.u64(loc.column);
}

/// Deserializes one DRAM location. Geometry bounds are validated by the
/// caller where the channel shape is known.
pub(crate) fn read_location(r: &mut SnapReader<'_>) -> Result<Location, SnapError> {
    let rank = r.usize()?;
    let bank = r.usize()?;
    let row = r.u64()?;
    let column = r.u64()?;
    Ok(Location {
        rank,
        bank,
        row,
        column,
    })
}

/// Serializes one completion record.
pub(crate) fn write_completed(w: &mut SnapWriter, done: &CompletedRequest) {
    write_request(w, &done.request);
    w.usize(done.channel);
    write_location(w, done.location);
    w.u64(done.issue);
    w.u64(done.completion);
    w.u32(done.retries);
    w.u8(match done.outcome {
        RowBufferOutcome::Hit => 0,
        RowBufferOutcome::Miss => 1,
        RowBufferOutcome::Conflict => 2,
    });
}

/// Deserializes one completion record.
pub(crate) fn read_completed(r: &mut SnapReader<'_>) -> Result<CompletedRequest, SnapError> {
    let request = read_request(r)?;
    let channel = r.usize()?;
    let location = read_location(r)?;
    let issue = r.u64()?;
    let completion = r.u64()?;
    let retries = r.u32()?;
    let outcome = match r.u8()? {
        0 => RowBufferOutcome::Hit,
        1 => RowBufferOutcome::Miss,
        2 => RowBufferOutcome::Conflict,
        o => return Err(r.bad_value(format!("row-buffer outcome discriminant {o}"))),
    };
    Ok(CompletedRequest {
        request,
        channel,
        location,
        issue,
        completion,
        outcome,
        retries,
    })
}
