//! # cloudmc-memctrl
//!
//! Memory controller models for the `cloudmc` reproduction of *"Memory
//! Controller Design Under Cloud Workloads"* (IISWC 2016).
//!
//! This crate is the paper's primary subject: it implements the memory
//! scheduling algorithms (FCFS, FCFS-per-bank, FR-FCFS, PAR-BS, ATLAS and a
//! reinforcement-learning scheduler), the page-management policies (open,
//! close, open-adaptive, close-adaptive, RBPP, ABPP and an idle-timer
//! extension), the rank power-management policies (immediate and idle-timer
//! power-down, plus a power-aware variant that closes idle rows on the way
//! down), the multi-tenant QoS layer (tenant-tagged requests with static
//! bandwidth partitioning or a latency-critical priority boost, composing
//! with every scheduler), the four address interleaving schemes,
//! multi-channel operation, write draining and refresh handling — all on top
//! of the cycle-level DRAM device model in [`cloudmc_dram`].
//!
//! ## Quick example
//!
//! ```
//! use cloudmc_memctrl::{AccessKind, McConfig, MemoryController, MemoryRequest, SchedulerKind};
//!
//! let mut cfg = McConfig::baseline();
//! cfg.scheduler = SchedulerKind::FrFcfs;
//! let mut mc = MemoryController::new(cfg)?;
//! mc.enqueue(MemoryRequest::new(0, AccessKind::Read, 0x1000, 0, 0), 0)
//!     .expect("queue has space");
//! let mut done = Vec::new();
//! for cycle in 0..200 {
//!     mc.tick(cycle, &mut done);
//!     for d in done.drain(..) {
//!         println!("request {} finished after {} DRAM cycles", d.request.id, d.latency());
//!     }
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]

pub mod controller;
pub mod mapping;
pub mod page;
pub mod power;
pub mod qos;
pub mod queue;
pub mod request;
pub mod sched;
mod snapio;
pub mod stats;

pub use cloudmc_dram::{FaultConfig, FaultLedger, FaultModel, ReadFault, UncorrectablePolicy};
pub use controller::{is_scrub_id, McConfig, MemoryController, SCRUB_ID_BIT};
pub use mapping::{AddressMapping, DecodedAddress};
pub use page::{
    Abpp, BankDemand, CloseAdaptive, ClosePage, OpenAdaptive, OpenPage, PagePolicy, PagePolicyImpl,
    PagePolicyKind, PolicyView, Rbpp, TimerPolicy,
};
pub use power::{
    NoPowerManagement, PowerAction, PowerPolicy, PowerPolicyImpl, PowerPolicyKind, PowerTimeouts,
    TimeoutPowerDown,
};
pub use qos::{QosArbiter, QosConfig, QosPolicyKind};
pub use queue::{bank_row_key, key_bank, key_rank, QueueEntry, RequestQueue};
pub use request::{
    AccessKind, CompletedRequest, MemoryRequest, RequestId, RowBufferOutcome, TenantId, MAX_TENANTS,
};
pub use sched::{
    Atlas, AtlasConfig, Fcfs, FcfsBanks, FrFcfs, ParBs, ParBsConfig, RlConfig, RlScheduler,
    SchedContext, SchedDecision, Scheduler, SchedulerImpl, SchedulerKind,
};
pub use stats::{McStats, ACTIVATION_REUSE_BUCKETS};
