//! Memory scheduling algorithms.
//!
//! A [`Scheduler`] is asked once per DRAM cycle (per channel) for the next
//! command to issue, given the pending request queues and the device state.
//! Implemented algorithms (Section 2.1 of the paper):
//!
//! * [`fcfs::Fcfs`] — strict first-come-first-served (head-of-line blocking).
//! * [`fcfs::FcfsBanks`] — per-bank FCFS exploiting bank-level parallelism.
//! * [`frfcfs::FrFcfs`] — first-ready FCFS, the paper's baseline.
//! * [`parbs::ParBs`] — parallelism-aware batch scheduling.
//! * [`atlas::Atlas`] — adaptive per-thread least-attained-service.
//! * [`rl::RlScheduler`] — reinforcement-learning self-optimizing scheduler.

pub mod atlas;
pub mod fcfs;
pub mod frfcfs;
pub mod parbs;
pub mod rl;

use cloudmc_dram::{Command, DramChannel, DramCycles};

use crate::queue::{QueueEntry, RequestQueue};
use crate::request::{AccessKind, CompletedRequest, RequestId};

pub use atlas::{Atlas, AtlasConfig};
pub use fcfs::{Fcfs, FcfsBanks};
pub use frfcfs::FrFcfs;
pub use parbs::{ParBs, ParBsConfig};
pub use rl::{RlConfig, RlScheduler};

/// Read-only view of one channel's controller state offered to schedulers.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Current DRAM cycle.
    pub now: DramCycles,
    /// Device state of the channel.
    pub channel: &'a DramChannel,
    /// Pending reads.
    pub read_q: &'a RequestQueue,
    /// Pending writes (write-backs, DMA writes).
    pub write_q: &'a RequestQueue,
    /// Whether the controller is draining writes this cycle.
    pub write_mode: bool,
    /// Number of cores sharing the controller.
    pub num_cores: usize,
}

impl SchedContext<'_> {
    /// The queue the controller is currently serving (reads unless draining
    /// writes).
    #[must_use]
    pub fn active_queue(&self) -> &RequestQueue {
        if self.write_mode {
            self.write_q
        } else {
            self.read_q
        }
    }

    /// Whether `entry`'s target row is currently open (a row-buffer hit).
    #[must_use]
    pub fn is_row_hit(&self, entry: &QueueEntry) -> bool {
        self.channel
            .open_row(entry.location.rank, entry.location.bank)
            == Some(entry.location.row)
    }
}

/// A command chosen by a scheduler, optionally completing a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedDecision {
    /// The DRAM command to issue this cycle.
    pub command: Command,
    /// The request this command completes (set only for the column access
    /// that transfers the request's data).
    pub request_id: Option<RequestId>,
}

/// The kind of progress that can be made toward serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The data transfer itself can issue now.
    Column(SchedDecision),
    /// The bank is idle; the row can be activated now.
    Activate(SchedDecision),
    /// A different row is open; the bank can be precharged now.
    Precharge(SchedDecision),
    /// No command for this request is legal this cycle.
    Blocked,
}

impl Progress {
    /// The decision carried by this progress step, if any.
    #[must_use]
    pub fn decision(self) -> Option<SchedDecision> {
        match self {
            Self::Column(d) | Self::Activate(d) | Self::Precharge(d) => Some(d),
            Self::Blocked => None,
        }
    }
}

/// Determines which command (if any) can be issued *this cycle* to make
/// progress on `entry`. Shared by the request-ordering schedulers.
#[must_use]
pub fn progress_for(entry: &QueueEntry, ctx: &SchedContext<'_>) -> Progress {
    let loc = entry.location;
    let open = ctx.channel.open_row(loc.rank, loc.bank);
    match open {
        Some(row) if row == loc.row => {
            let command = match entry.request.kind {
                AccessKind::Read => Command::read(loc, false),
                AccessKind::Write => Command::write(loc, false),
            };
            if ctx.channel.can_issue(&command, ctx.now) {
                Progress::Column(SchedDecision {
                    command,
                    request_id: Some(entry.request.id),
                })
            } else {
                Progress::Blocked
            }
        }
        Some(_) => {
            let command = Command::precharge(loc);
            if ctx.channel.can_issue(&command, ctx.now) {
                Progress::Precharge(SchedDecision {
                    command,
                    request_id: None,
                })
            } else {
                Progress::Blocked
            }
        }
        None => {
            let command = Command::activate(loc);
            if ctx.channel.can_issue(&command, ctx.now) {
                Progress::Activate(SchedDecision {
                    command,
                    request_id: None,
                })
            } else {
                Progress::Blocked
            }
        }
    }
}

/// Picks the first entry (by the iteration order of `entries`) for which a
/// column command is ready, then the first for which an activate is ready,
/// then the first for which a precharge is ready.
///
/// This is the work-conserving "first ready" skeleton shared by FR-FCFS and
/// the ranking schedulers; they differ only in how `entries` is ordered.
#[must_use]
pub fn first_ready<'a, I>(entries: I, ctx: &SchedContext<'_>) -> Option<SchedDecision>
where
    I: IntoIterator<Item = &'a QueueEntry>,
{
    let mut best_activate = None;
    let mut best_precharge = None;
    for entry in entries {
        match progress_for(entry, ctx) {
            Progress::Column(d) => return Some(d),
            Progress::Activate(d) => {
                if best_activate.is_none() {
                    best_activate = Some(d);
                }
            }
            Progress::Precharge(d) => {
                if best_precharge.is_none() {
                    best_precharge = Some(d);
                }
            }
            Progress::Blocked => {}
        }
    }
    best_activate.or(best_precharge)
}

/// A memory scheduling algorithm.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Short human-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Chooses the command to issue this cycle, if any.
    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision>;

    /// Observes a newly enqueued request.
    fn on_enqueue(&mut self, _entry: &QueueEntry) {}

    /// Observes a completed request.
    fn on_complete(&mut self, _done: &CompletedRequest) {}

    /// Called once per cycle before `pick` (for quantum/bookkeeping updates).
    ///
    /// The simulation kernel may *skip* provably eventless cycles, so this is
    /// not guaranteed to run at every cycle: implementations must be written
    /// in catch-up style (`while now >= boundary { ... }`) so that one call
    /// at a later `now` leaves the scheduler in the same state as a call per
    /// cycle would have. Work that must happen at an exact cycle relative to
    /// request completions must additionally be announced through
    /// [`Scheduler::next_event_cycle`] so the kernel never skips past it.
    fn on_cycle(&mut self, _ctx: &SchedContext<'_>) {}

    /// The next cycle at which this scheduler changes state *on its own*
    /// (e.g. a ranking-quantum boundary), independent of queue contents.
    ///
    /// The kernel's event-horizon fast-forward never jumps past this cycle,
    /// guaranteeing that `on_cycle` runs at the exact boundary relative to
    /// the completions around it. `None` (the default) means the scheduler
    /// has no time-driven state of its own.
    fn next_event_cycle(&self) -> Option<DramCycles> {
        None
    }

    /// Whether the scheduler handles the read/write interleaving itself.
    ///
    /// When `false` (the default) the controller drains writes using
    /// high/low watermarks on the write queue and the scheduler only sees the
    /// active queue. The RL scheduler returns `true` and freely mixes reads
    /// and writes.
    fn manages_write_drain(&self) -> bool {
        false
    }
}

/// A scheduler instance behind static-or-dynamic dispatch.
///
/// The controller consults its scheduler once per DRAM cycle per channel, so
/// dispatch sits on the hottest path of the whole simulator. Every built-in
/// algorithm is a concrete variant — `pick`/`on_cycle`/`next_event_cycle`
/// compile to a jump table over inlined bodies rather than virtual calls —
/// and the `Boxed` escape hatch keeps external [`Scheduler`] implementations
/// usable.
#[derive(Debug)]
pub enum SchedulerImpl {
    /// Strict first-come-first-served, statically dispatched.
    Fcfs(Fcfs),
    /// Per-bank FCFS, statically dispatched.
    FcfsBanks(FcfsBanks),
    /// The FR-FCFS baseline, statically dispatched.
    FrFcfs(FrFcfs),
    /// Parallelism-aware batch scheduling, statically dispatched.
    ParBs(ParBs),
    /// Adaptive per-thread least-attained-service, statically dispatched.
    Atlas(Atlas),
    /// The reinforcement-learning scheduler, statically dispatched.
    Rl(RlScheduler),
    /// Any other algorithm, dynamically dispatched.
    Boxed(Box<dyn Scheduler>),
}

/// Applies `$body` to the concrete scheduler in every variant.
macro_rules! for_each_scheduler {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            SchedulerImpl::Fcfs($s) => $body,
            SchedulerImpl::FcfsBanks($s) => $body,
            SchedulerImpl::FrFcfs($s) => $body,
            SchedulerImpl::ParBs($s) => $body,
            SchedulerImpl::Atlas($s) => $body,
            SchedulerImpl::Rl($s) => $body,
            SchedulerImpl::Boxed($s) => $body,
        }
    };
}

impl SchedulerImpl {
    /// Short human-readable name (used in reports).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &'static str {
        for_each_scheduler!(self, s => s.name())
    }

    /// Chooses the command to issue this cycle, if any.
    #[inline]
    pub fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        for_each_scheduler!(self, s => s.pick(ctx))
    }

    /// Observes a newly enqueued request.
    #[inline]
    pub fn on_enqueue(&mut self, entry: &QueueEntry) {
        for_each_scheduler!(self, s => s.on_enqueue(entry));
    }

    /// Observes a completed request.
    #[inline]
    pub fn on_complete(&mut self, done: &CompletedRequest) {
        for_each_scheduler!(self, s => s.on_complete(done));
    }

    /// Called once per cycle before `pick` (quantum/bookkeeping updates).
    #[inline]
    pub fn on_cycle(&mut self, ctx: &SchedContext<'_>) {
        for_each_scheduler!(self, s => s.on_cycle(ctx));
    }

    /// The next cycle at which the scheduler changes state on its own, if any
    /// (see [`Scheduler::next_event_cycle`]).
    #[inline]
    #[must_use]
    pub fn next_event_cycle(&self) -> Option<DramCycles> {
        for_each_scheduler!(self, s => s.next_event_cycle())
    }

    /// Whether the scheduler handles read/write interleaving itself.
    #[inline]
    #[must_use]
    pub fn manages_write_drain(&self) -> bool {
        for_each_scheduler!(self, s => s.manages_write_drain())
    }

    /// Whether this scheduler's state can be checkpointed. External
    /// [`SchedulerImpl::Boxed`] implementations are opaque to the snapshot
    /// machinery; callers must gate on this before saving.
    #[must_use]
    pub fn snapshot_supported(&self) -> bool {
        !matches!(self, Self::Boxed(_))
    }

    /// Serializes the scheduler's mutable state (checkpoint support). The
    /// FCFS family is stateless and contributes no bytes; `Boxed` schedulers
    /// must be gated out via [`Self::snapshot_supported`] beforehand.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        match self {
            Self::Fcfs(_) | Self::FcfsBanks(_) | Self::FrFcfs(_) | Self::Boxed(_) => {}
            Self::ParBs(s) => s.save_state(w),
            Self::Atlas(s) => s.save_state(w),
            Self::Rl(s) => s.save_state(w),
        }
    }

    /// Restores the scheduler's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or state
    /// inconsistent with the configuration.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        match self {
            Self::Fcfs(_) | Self::FcfsBanks(_) | Self::FrFcfs(_) | Self::Boxed(_) => Ok(()),
            Self::ParBs(s) => s.load_state(r),
            Self::Atlas(s) => s.load_state(r),
            Self::Rl(s) => s.load_state(r),
        }
    }
}

/// Identifier for constructing schedulers by name, with the per-algorithm
/// parameters of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Strict first-come-first-served over a single queue.
    Fcfs,
    /// Per-bank FCFS (the paper's `FCFS_banks`).
    FcfsBanks,
    /// First-ready FCFS (the paper's baseline).
    FrFcfs,
    /// Parallelism-aware batch scheduling.
    ParBs(ParBsConfig),
    /// Adaptive per-thread least-attained-service scheduling.
    Atlas(AtlasConfig),
    /// Reinforcement-learning scheduler.
    Rl(RlConfig),
}

impl SchedulerKind {
    /// The five algorithms compared in Figures 1–7, with Table 3 parameters.
    #[must_use]
    pub fn paper_set() -> [Self; 5] {
        [
            Self::FrFcfs,
            Self::FcfsBanks,
            Self::ParBs(ParBsConfig::default()),
            Self::Atlas(AtlasConfig::default()),
            Self::Rl(RlConfig::default()),
        ]
    }

    /// Instantiates the scheduler behind the dispatch wrapper the controller
    /// uses: a concrete, statically dispatched variant for every built-in
    /// algorithm.
    #[must_use]
    pub fn build_impl(self, num_cores: usize) -> SchedulerImpl {
        match self {
            Self::Fcfs => SchedulerImpl::Fcfs(Fcfs::new()),
            Self::FcfsBanks => SchedulerImpl::FcfsBanks(FcfsBanks::new()),
            Self::FrFcfs => SchedulerImpl::FrFcfs(FrFcfs::new()),
            Self::ParBs(cfg) => SchedulerImpl::ParBs(ParBs::new(cfg, num_cores)),
            Self::Atlas(cfg) => SchedulerImpl::Atlas(Atlas::new(cfg, num_cores)),
            Self::Rl(cfg) => SchedulerImpl::Rl(RlScheduler::new(cfg)),
        }
    }

    /// Instantiates the scheduler for a controller with `num_cores` cores.
    #[must_use]
    pub fn build(self, num_cores: usize) -> Box<dyn Scheduler> {
        match self {
            Self::Fcfs => Box::new(Fcfs::new()),
            Self::FcfsBanks => Box::new(FcfsBanks::new()),
            Self::FrFcfs => Box::new(FrFcfs::new()),
            Self::ParBs(cfg) => Box::new(ParBs::new(cfg, num_cores)),
            Self::Atlas(cfg) => Box::new(Atlas::new(cfg, num_cores)),
            Self::Rl(cfg) => Box::new(RlScheduler::new(cfg)),
        }
    }

    /// Canonical short name used in figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Fcfs => "FCFS",
            Self::FcfsBanks => "FCFS_Banks",
            Self::FrFcfs => "FR-FCFS",
            Self::ParBs(_) => "PAR-BS",
            Self::Atlas(_) => "ATLAS",
            Self::Rl(_) => "RL",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(Self::Fcfs),
            "fcfs_banks" | "fcfs-banks" => Ok(Self::FcfsBanks),
            "fr-fcfs" | "frfcfs" => Ok(Self::FrFcfs),
            "par-bs" | "parbs" => Ok(Self::ParBs(ParBsConfig::default())),
            "atlas" => Ok(Self::Atlas(AtlasConfig::default())),
            "rl" => Ok(Self::Rl(RlConfig::default())),
            other => Err(format!("unknown scheduler `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemoryRequest;
    use cloudmc_dram::{DramConfig, Location};

    fn fixture() -> (DramChannel, RequestQueue, RequestQueue) {
        let cfg = DramConfig::baseline();
        (
            DramChannel::new(&cfg),
            RequestQueue::new(16),
            RequestQueue::new(16),
        )
    }

    fn entry(id: u64, kind: AccessKind, rank: usize, bank: usize, row: u64) -> QueueEntry {
        QueueEntry {
            request: MemoryRequest::new(id, kind, 0, 0, 0),
            location: Location::new(rank, bank, row, 0),
            enqueued_at: 0,
        }
    }

    #[test]
    fn progress_for_idle_bank_is_activate() {
        let (ch, rq, wq) = fixture();
        let ctx = SchedContext {
            now: 0,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        let e = entry(1, AccessKind::Read, 0, 0, 5);
        match progress_for(&e, &ctx) {
            Progress::Activate(d) => {
                assert_eq!(d.request_id, None);
                assert_eq!(d.command, Command::activate(e.location));
            }
            other => panic!("expected Activate, got {other:?}"),
        }
    }

    #[test]
    fn progress_for_open_row_is_column_with_request_id() {
        let (mut ch, rq, wq) = fixture();
        ch.issue(&Command::activate(Location::new(0, 0, 5, 0)), 0);
        let now = ch.timing().t_rcd;
        let ctx = SchedContext {
            now,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        let e = entry(9, AccessKind::Write, 0, 0, 5);
        match progress_for(&e, &ctx) {
            Progress::Column(d) => {
                assert_eq!(d.request_id, Some(9));
                assert!(d.command.kind.is_write());
            }
            other => panic!("expected Column, got {other:?}"),
        }
        assert!(ctx.is_row_hit(&e));
    }

    #[test]
    fn progress_for_conflict_is_precharge_after_tras() {
        let (mut ch, rq, wq) = fixture();
        ch.issue(&Command::activate(Location::new(0, 0, 5, 0)), 0);
        let e = entry(2, AccessKind::Read, 0, 0, 9);
        let t_ras = ch.timing().t_ras;
        let early = SchedContext {
            now: 1,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        assert_eq!(progress_for(&e, &early), Progress::Blocked);
        let late = SchedContext {
            now: t_ras,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        match progress_for(&e, &late) {
            Progress::Precharge(d) => assert_eq!(d.command, Command::precharge(e.location)),
            other => panic!("expected Precharge, got {other:?}"),
        }
    }

    #[test]
    fn first_ready_prefers_column_over_activate() {
        let (mut ch, rq, wq) = fixture();
        ch.issue(&Command::activate(Location::new(0, 0, 5, 0)), 0);
        let now = ch.timing().t_rcd;
        let ctx = SchedContext {
            now,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        // Oldest entry needs an activate, a younger one is a ready hit.
        let miss = entry(1, AccessKind::Read, 0, 1, 7);
        let hit = entry(2, AccessKind::Read, 0, 0, 5);
        let picked = first_ready([&miss, &hit], &ctx).unwrap();
        assert_eq!(picked.request_id, Some(2));
    }

    #[test]
    fn active_queue_follows_write_mode() {
        let (ch, mut rq, mut wq) = fixture();
        rq.push(
            MemoryRequest::new(1, AccessKind::Read, 0, 0, 0),
            Location::new(0, 0, 0, 0),
            0,
        )
        .unwrap();
        wq.push(
            MemoryRequest::new(2, AccessKind::Write, 0, 0, 0),
            Location::new(0, 0, 0, 0),
            0,
        )
        .unwrap();
        let read_ctx = SchedContext {
            now: 0,
            channel: &ch,
            read_q: &rq,
            write_q: &wq,
            write_mode: false,
            num_cores: 16,
        };
        assert_eq!(read_ctx.active_queue().oldest().unwrap().request.id, 1);
        let write_ctx = SchedContext {
            write_mode: true,
            ..read_ctx
        };
        assert_eq!(write_ctx.active_queue().oldest().unwrap().request.id, 2);
    }

    #[test]
    fn scheduler_kind_labels_and_parsing() {
        for kind in SchedulerKind::paper_set() {
            let mut s = kind.build(16);
            assert!(!s.name().is_empty());
            let (ch, rq, wq) = fixture();
            let ctx = SchedContext {
                now: 0,
                channel: &ch,
                read_q: &rq,
                write_q: &wq,
                write_mode: false,
                num_cores: 16,
            };
            // Empty queues: every scheduler must return None.
            assert!(
                s.pick(&ctx).is_none(),
                "{} returned work for empty queues",
                s.name()
            );
        }
        assert_eq!(
            "fr-fcfs".parse::<SchedulerKind>().unwrap().label(),
            "FR-FCFS"
        );
        assert_eq!("atlas".parse::<SchedulerKind>().unwrap().label(), "ATLAS");
        assert!("nope".parse::<SchedulerKind>().is_err());
    }
}
