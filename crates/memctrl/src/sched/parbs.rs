//! Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda, ISCA 2008).

use std::collections::HashSet;

use crate::queue::QueueEntry;
use crate::request::{CompletedRequest, RequestId};
use crate::sched::{first_ready, SchedContext, SchedDecision, Scheduler};

/// PAR-BS parameters (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParBsConfig {
    /// Maximum number of requests marked per core per bank when a batch forms.
    pub batching_cap: usize,
}

impl Default for ParBsConfig {
    fn default() -> Self {
        Self { batching_cap: 5 }
    }
}

/// PAR-BS: groups the oldest requests of every core into a batch that is
/// prioritized over all other requests, and ranks cores within the batch
/// shortest-job-first to minimize average stall time.
#[derive(Debug)]
pub struct ParBs {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: ParBsConfig,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    num_cores: usize,
    marked: HashSet<RequestId>,
    /// `core_rank[c]` is the priority position of core `c` in the current
    /// batch (0 = highest priority).
    core_rank: Vec<usize>,
    batches_formed: u64,
}

impl ParBs {
    /// Creates a PAR-BS scheduler for `num_cores` cores.
    #[must_use]
    pub fn new(cfg: ParBsConfig, num_cores: usize) -> Self {
        Self {
            cfg,
            num_cores,
            marked: HashSet::new(),
            core_rank: vec![0; num_cores],
            batches_formed: 0,
        }
    }

    /// Number of batches formed so far (exposed for tests/diagnostics).
    #[must_use]
    pub fn batches_formed(&self) -> u64 {
        self.batches_formed
    }

    /// Whether request `id` is part of the current batch.
    #[must_use]
    pub fn is_marked(&self, id: RequestId) -> bool {
        self.marked.contains(&id)
    }

    /// Serializes the scheduler's mutable state (checkpoint support). The
    /// marked set is dumped in sorted order so identical states produce
    /// byte-identical snapshots.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        let marked = cloudmc_snap::det::sorted_items(&self.marked);
        w.u64_slice(&marked);
        w.usize(self.core_rank.len());
        for &rank in &self.core_rank {
            w.usize(rank);
        }
        w.u64(self.batches_formed);
    }

    /// Restores the scheduler's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a rank
    /// vector that does not match the configured core count.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let count = r.bounded_len(8)?;
        self.marked.clear();
        for _ in 0..count {
            self.marked.insert(r.u64()?);
        }
        let count = r.bounded_len(8)?;
        if count != self.core_rank.len() {
            return Err(r.bad_value(format!(
                "{count} core ranks, expected {}",
                self.core_rank.len()
            )));
        }
        for slot in &mut self.core_rank {
            let rank = r.usize()?;
            if rank >= self.num_cores {
                return Err(r.bad_value(format!(
                    "core rank {rank} out of range for {} cores",
                    self.num_cores
                )));
            }
            *slot = rank;
        }
        self.batches_formed = r.u64()?;
        Ok(())
    }

    fn rank_of(&self, core: usize) -> usize {
        self.core_rank.get(core).copied().unwrap_or(usize::MAX)
    }

    /// Forms a new batch from the active queue: the oldest `batching_cap`
    /// requests per (core, bank) are marked, then cores are ranked
    /// shortest-job-first (a core's "job length" is its maximum number of
    /// marked requests to any single bank).
    fn form_batch(&mut self, ctx: &SchedContext<'_>) {
        self.marked.clear();
        let banks_per_rank = ctx.channel.banks_per_rank();
        let total_banks = ctx.channel.rank_count() * banks_per_rank;
        // marked_count[core][flat_bank]
        let mut marked_count = vec![vec![0usize; total_banks]; self.num_cores];
        for entry in ctx.active_queue().iter() {
            let core = entry.request.core.min(self.num_cores.saturating_sub(1));
            let flat = entry.location.flat_bank(banks_per_rank);
            if marked_count[core][flat] < self.cfg.batching_cap {
                marked_count[core][flat] += 1;
                self.marked.insert(entry.request.id);
            }
        }
        if self.marked.is_empty() {
            return;
        }
        self.batches_formed += 1;
        // Shortest job first: rank cores by their maximum per-bank load.
        let mut loads: Vec<(usize, usize, usize)> = (0..self.num_cores)
            .map(|core| {
                let max_bank = marked_count[core].iter().copied().max().unwrap_or(0);
                let total: usize = marked_count[core].iter().sum();
                (core, max_bank, total)
            })
            .collect();
        loads.sort_by_key(|&(core, max_bank, total)| (max_bank, total, core));
        for (position, &(core, _, _)) in loads.iter().enumerate() {
            self.core_rank[core] = position;
        }
    }

    fn batch_exhausted(&self, ctx: &SchedContext<'_>) -> bool {
        if self.marked.is_empty() {
            return true;
        }
        // The batch is done when none of the marked requests is still queued.
        !ctx.active_queue()
            .iter()
            .any(|e| self.marked.contains(&e.request.id))
    }
}

impl Scheduler for ParBs {
    fn name(&self) -> &'static str {
        "PAR-BS"
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        if ctx.active_queue().is_empty() {
            return None;
        }
        if self.batch_exhausted(ctx) {
            self.form_batch(ctx);
        }
        // Priority order: batched > row-hit > core rank > age. The first two
        // passes implement "batched first"; within a pass `first_ready`
        // prefers ready column commands (row hits), and the iteration order
        // (core rank, then age) breaks the remaining ties.
        let mut batched: Vec<&QueueEntry> = Vec::new();
        let mut unbatched: Vec<&QueueEntry> = Vec::new();
        for entry in ctx.active_queue().iter() {
            if self.marked.contains(&entry.request.id) {
                batched.push(entry);
            } else {
                unbatched.push(entry);
            }
        }
        let rank_then_age = |a: &&QueueEntry, b: &&QueueEntry| {
            self.rank_of(a.request.core)
                .cmp(&self.rank_of(b.request.core))
                .then(a.enqueued_at.cmp(&b.enqueued_at))
                .then(a.request.id.cmp(&b.request.id))
        };
        batched.sort_by(rank_then_age);
        unbatched.sort_by(rank_then_age);
        first_ready(batched, ctx).or_else(|| first_ready(unbatched, ctx))
    }

    fn on_complete(&mut self, done: &CompletedRequest) {
        self.marked.remove(&done.request.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn push(q: &mut RequestQueue, id: u64, core: usize, bank: usize, row: u64, at: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, core, at),
            Location::new(0, bank, row, 0),
            at,
        )
        .unwrap();
    }

    fn ctx<'a>(
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
            write_mode: false,
            num_cores: 4,
        }
    }

    #[test]
    fn batch_caps_marked_requests_per_core_and_bank() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(32);
        let wq = RequestQueue::new(32);
        // Core 0 floods bank 0 with 8 requests; only 5 may be marked.
        for i in 0..8 {
            push(&mut rq, i, 0, 0, i, i);
        }
        let mut s = ParBs::new(ParBsConfig::default(), 4);
        let c = ctx(&ch, &rq, &wq, 10);
        let _ = s.pick(&c);
        assert_eq!(s.batches_formed(), 1);
        let marked: Vec<bool> = (0..8).map(|i| s.is_marked(i)).collect();
        assert_eq!(marked.iter().filter(|&&m| m).count(), 5);
        assert!(
            marked[..5].iter().all(|&m| m),
            "the oldest 5 must be marked"
        );
    }

    #[test]
    fn shortest_job_core_is_ranked_first() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(32);
        let wq = RequestQueue::new(32);
        // Core 1 has 3 requests to bank 0 (long job); core 2 has 1 request to
        // bank 1 (short job). All banks are closed, so everything is an
        // activate candidate and ranking decides the order.
        push(&mut rq, 0, 1, 0, 10, 0);
        push(&mut rq, 1, 1, 0, 11, 1);
        push(&mut rq, 2, 1, 0, 12, 2);
        push(&mut rq, 3, 2, 1, 20, 3);
        let mut s = ParBs::new(ParBsConfig::default(), 4);
        let d = s.pick(&ctx(&ch, &rq, &wq, 10)).unwrap();
        // Core 2 (shortest job) wins: its activate goes first despite being youngest.
        assert_eq!(d.command, Command::activate(Location::new(0, 1, 20, 0)));
    }

    #[test]
    fn batched_requests_beat_unbatched_ones() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(32);
        let wq = RequestQueue::new(32);
        push(&mut rq, 0, 0, 0, 1, 0);
        let mut s = ParBs::new(ParBsConfig::default(), 4);
        // First pick forms a batch containing request 0.
        let _ = s.pick(&ctx(&ch, &rq, &wq, 0));
        assert!(s.is_marked(0));
        // A new request arrives after batch formation: not marked.
        push(&mut rq, 1, 1, 1, 2, 1);
        let d = s.pick(&ctx(&ch, &rq, &wq, 5)).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 0, 1, 0)));
        assert!(!s.is_marked(1));
    }

    #[test]
    fn new_batch_forms_when_previous_batch_drains() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(32);
        let wq = RequestQueue::new(32);
        push(&mut rq, 0, 0, 0, 1, 0);
        let mut s = ParBs::new(ParBsConfig::default(), 4);
        let _ = s.pick(&ctx(&ch, &rq, &wq, 0));
        assert_eq!(s.batches_formed(), 1);
        // Request 0 completes and leaves the queue.
        rq.remove(0);
        push(&mut rq, 1, 1, 0, 2, 10);
        let _ = s.pick(&ctx(&ch, &rq, &wq, 10));
        assert_eq!(s.batches_formed(), 2);
        assert!(s.is_marked(1));
    }

    #[test]
    fn empty_queue_returns_none() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let rq = RequestQueue::new(4);
        let wq = RequestQueue::new(4);
        let mut s = ParBs::new(ParBsConfig::default(), 4);
        assert!(s.pick(&ctx(&ch, &rq, &wq, 0)).is_none());
    }
}
