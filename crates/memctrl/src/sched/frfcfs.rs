//! First-Ready First-Come-First-Served scheduling (Rixner et al.), the
//! paper's baseline.

use crate::sched::{first_ready, SchedContext, SchedDecision, Scheduler};

/// FR-FCFS: column commands that hit an open row are prioritized over
/// activates/precharges for older requests; within each class, older requests
/// win.
///
/// This maximizes row-buffer hit rate and DRAM throughput, which the paper
/// finds to be the best fit for scale-out workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates an FR-FCFS scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        // Queue iteration order is arrival order, so `first_ready` yields the
        // oldest ready column command, else the oldest ready activate, else
        // the oldest ready precharge: exactly FR-FCFS.
        first_ready(ctx.active_queue().iter(), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn push(q: &mut RequestQueue, id: u64, bank: usize, row: u64, at: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, 0, at),
            Location::new(0, bank, row, 0),
            at,
        )
        .unwrap();
    }

    fn ctx<'a>(
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
            write_mode: false,
            num_cores: 16,
        }
    }

    #[test]
    fn prefers_younger_row_hit_over_older_conflict() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        ch.issue(&Command::activate(Location::new(0, 0, 9, 0)), 0);
        // Older request conflicts with the open row; younger request hits it.
        push(&mut rq, 1, 0, 5, 0);
        push(&mut rq, 2, 0, 9, 1);
        let mut s = FrFcfs::new();
        let now = cfg.timing.t_ras; // precharge for request 1 would be legal
        let d = s.pick(&ctx(&ch, &rq, &wq, now)).unwrap();
        assert_eq!(d.request_id, Some(2), "FR-FCFS must promote the row hit");
    }

    #[test]
    fn falls_back_to_oldest_activate_when_no_hits() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        push(&mut rq, 1, 2, 5, 0);
        push(&mut rq, 2, 3, 7, 1);
        let mut s = FrFcfs::new();
        let d = s.pick(&ctx(&ch, &rq, &wq, 10)).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 2, 5, 0)));
    }

    #[test]
    fn ages_break_ties_between_hits() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        ch.issue(&Command::activate(Location::new(0, 0, 9, 0)), 0);
        push(&mut rq, 1, 0, 9, 0);
        push(&mut rq, 2, 0, 9, 1);
        let mut s = FrFcfs::new();
        let d = s.pick(&ctx(&ch, &rq, &wq, cfg.timing.t_rcd)).unwrap();
        assert_eq!(d.request_id, Some(1));
    }

    #[test]
    fn serves_write_queue_in_write_mode() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let rq = RequestQueue::new(16);
        let mut wq = RequestQueue::new(16);
        wq.push(
            MemoryRequest::new(7, AccessKind::Write, 0, 0, 0),
            Location::new(0, 1, 3, 0),
            0,
        )
        .unwrap();
        let mut s = FrFcfs::new();
        let c = SchedContext {
            write_mode: true,
            ..ctx(&ch, &rq, &wq, 0)
        };
        let d = s.pick(&c).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 1, 3, 0)));
    }
}
