//! Reinforcement-learning (self-optimizing) memory scheduler, after
//! Ipek et al., ISCA 2008.
//!
//! The scheduler treats command selection as a Markov decision process. Each
//! cycle it enumerates the legal commands derivable from the pending
//! requests, estimates a Q-value for every candidate with a set of hashed
//! feature tables (a CMAC-style tile coding), picks the best one
//! ε-greedily, and updates the previous decision's Q-value with a SARSA rule
//! using a reward of 1 for data-transferring commands (READ/WRITE) and 0
//! otherwise.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_dram::{CommandKind, DramCycles};

use crate::queue::QueueEntry;
use crate::sched::{progress_for, Progress, SchedContext, SchedDecision, Scheduler};

/// RL scheduler parameters (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlConfig {
    /// Number of hashed Q-value tables (tilings).
    pub num_tables: usize,
    /// Entries per Q-value table.
    pub table_size: usize,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount rate γ.
    pub gamma: f64,
    /// Probability ε of taking a random (exploratory) action.
    pub epsilon: f64,
    /// Requests older than this are scheduled unconditionally.
    pub starvation_threshold: DramCycles,
    /// Seed for the exploration random number generator.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        Self {
            num_tables: 32,
            table_size: 256,
            alpha: 0.1,
            gamma: 0.95,
            epsilon: 0.05,
            starvation_threshold: 10_000,
            seed: 0xC10D_DC0D,
        }
    }
}

/// Feature vector describing one (state, action) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Features {
    action: u8,
    row_hit: bool,
    read_q_bucket: u8,
    write_q_bucket: u8,
    same_row_pending: u8,
    age_bucket: u8,
    is_write_request: bool,
}

/// Self-optimizing RL memory scheduler.
#[derive(Debug)]
pub struct RlScheduler {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: RlConfig,
    tables: Vec<Vec<f64>>,
    rng: StdRng,
    /// Previous decision awaiting its SARSA update: table indices, Q estimate
    /// and immediate reward.
    prev: Option<(Vec<usize>, f64, f64)>,
    decisions: u64,
    exploratory_decisions: u64,
}

impl RlScheduler {
    /// Creates an RL scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables` or `table_size` is zero.
    #[must_use]
    pub fn new(cfg: RlConfig) -> Self {
        assert!(cfg.num_tables > 0, "num_tables must be non-zero");
        assert!(cfg.table_size > 0, "table_size must be non-zero");
        Self {
            tables: vec![vec![0.0; cfg.table_size]; cfg.num_tables],
            rng: StdRng::seed_from_u64(cfg.seed),
            prev: None,
            decisions: 0,
            exploratory_decisions: 0,
            cfg,
        }
    }

    /// Total decisions taken.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that were exploratory (random) rather than greedy.
    #[must_use]
    pub fn exploratory_decisions(&self) -> u64 {
        self.exploratory_decisions
    }

    /// Serializes the scheduler's mutable state — Q-tables, RNG stream,
    /// pending SARSA update, decision counters (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.usize(self.tables.len());
        for table in &self.tables {
            w.f64_slice(table);
        }
        w.u64_slice(&self.rng.state());
        match &self.prev {
            None => w.u8(0),
            Some((indices, q_prev, reward)) => {
                w.u8(1);
                w.usize(indices.len());
                for &i in indices {
                    w.usize(i);
                }
                w.f64(*q_prev);
                w.f64(*reward);
            }
        }
        w.u64(self.decisions);
        w.u64(self.exploratory_decisions);
    }

    /// Restores the scheduler's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or table
    /// shapes and indices inconsistent with the configuration.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let tables = r.bounded_len(8)?;
        if tables != self.cfg.num_tables {
            return Err(r.bad_value(format!(
                "{tables} Q-tables, expected {}",
                self.cfg.num_tables
            )));
        }
        for table in &mut self.tables {
            let entries = r.bounded_len(8)?;
            if entries != self.cfg.table_size {
                return Err(r.bad_value(format!(
                    "{entries} Q-table entries, expected {}",
                    self.cfg.table_size
                )));
            }
            for slot in table.iter_mut() {
                *slot = r.f64()?;
            }
        }
        let state_len = r.bounded_len(8)?;
        if state_len != 4 {
            return Err(r.bad_value(format!("{state_len} RNG state words, expected 4")));
        }
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng.set_state(state);
        self.prev = match r.u8()? {
            0 => None,
            1 => {
                let count = r.bounded_len(8)?;
                if count != self.cfg.num_tables {
                    return Err(r.bad_value(format!(
                        "{count} pending indices, expected {}",
                        self.cfg.num_tables
                    )));
                }
                let mut indices = Vec::with_capacity(count);
                for _ in 0..count {
                    let i = r.usize()?;
                    if i >= self.cfg.table_size {
                        return Err(r.bad_value(format!(
                            "pending index {i} out of range for table size {}",
                            self.cfg.table_size
                        )));
                    }
                    indices.push(i);
                }
                let q_prev = r.f64()?;
                let reward = r.f64()?;
                Some((indices, q_prev, reward))
            }
            t => return Err(r.bad_value(format!("pending-update tag {t}"))),
        };
        self.decisions = r.u64()?;
        self.exploratory_decisions = r.u64()?;
        Ok(())
    }

    fn bucket(len: usize) -> u8 {
        match len {
            0 => 0,
            1..=2 => 1,
            3..=5 => 2,
            6..=10 => 3,
            11..=20 => 4,
            21..=40 => 5,
            _ => 6,
        }
    }

    fn age_bucket(age: DramCycles) -> u8 {
        match age {
            0..=63 => 0,
            64..=255 => 1,
            256..=1023 => 2,
            1024..=4095 => 3,
            _ => 4,
        }
    }

    fn features(
        &self,
        ctx: &SchedContext<'_>,
        entry: &QueueEntry,
        decision: &SchedDecision,
    ) -> Features {
        let action = match decision.command.kind {
            CommandKind::Activate => 0,
            CommandKind::Precharge => 1,
            CommandKind::Read { .. } => 2,
            CommandKind::Write { .. } => 3,
            CommandKind::Refresh => 4,
        };
        let loc = entry.location;
        let same_row_pending = (ctx.read_q.iter().chain(ctx.write_q.iter()))
            .filter(|e| {
                e.location.rank == loc.rank
                    && e.location.bank == loc.bank
                    && e.location.row == loc.row
            })
            .count()
            .min(3) as u8;
        Features {
            action,
            row_hit: matches!(
                decision.command.kind,
                CommandKind::Read { .. } | CommandKind::Write { .. }
            ),
            read_q_bucket: Self::bucket(ctx.read_q.len()),
            write_q_bucket: Self::bucket(ctx.write_q.len()),
            same_row_pending,
            age_bucket: Self::age_bucket(entry.age(ctx.now)),
            is_write_request: !entry.request.kind.is_read(),
        }
    }

    fn table_indices(&self, features: &Features) -> Vec<usize> {
        (0..self.cfg.num_tables)
            .map(|t| {
                let mut hasher = DefaultHasher::new();
                t.hash(&mut hasher);
                features.hash(&mut hasher);
                (hasher.finish() as usize) % self.cfg.table_size
            })
            .collect()
    }

    fn q_value(&self, indices: &[usize]) -> f64 {
        indices
            .iter()
            .enumerate()
            .map(|(t, &i)| self.tables[t][i])
            .sum::<f64>()
            / self.cfg.num_tables as f64
    }

    /// SARSA update of the previous decision given the Q-value of the action
    /// just chosen.
    fn learn(&mut self, q_next: f64) {
        if let Some((indices, q_prev, reward)) = self.prev.take() {
            let delta = self.cfg.alpha * (reward + self.cfg.gamma * q_next - q_prev);
            for (t, &i) in indices.iter().enumerate() {
                self.tables[t][i] += delta;
            }
        }
    }

    fn reward_of(decision: &SchedDecision) -> f64 {
        if decision.command.kind.is_column() {
            1.0
        } else {
            0.0
        }
    }

    /// Collects all commands that could legally issue this cycle, one per
    /// pending request, from both queues.
    fn candidates<'q>(&self, ctx: &SchedContext<'q>) -> Vec<(&'q QueueEntry, SchedDecision)> {
        let mut seen_commands = Vec::new();
        let mut out = Vec::new();
        for entry in ctx.read_q.iter().chain(ctx.write_q.iter()) {
            if let Some(decision) = progress_for(entry, ctx).decision() {
                if seen_commands.contains(&decision.command) {
                    continue;
                }
                seen_commands.push(decision.command);
                out.push((entry, decision));
            }
        }
        out
    }
}

impl Scheduler for RlScheduler {
    fn name(&self) -> &'static str {
        "RL"
    }

    fn manages_write_drain(&self) -> bool {
        true
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        // Starvation guard: the oldest over-threshold request is served with
        // whatever command makes progress for it.
        let starved = ctx
            .read_q
            .iter()
            .chain(ctx.write_q.iter())
            .filter(|e| e.age(ctx.now) > self.cfg.starvation_threshold)
            .min_by_key(|e| e.enqueued_at);
        if let Some(entry) = starved {
            if let Progress::Column(d) | Progress::Activate(d) | Progress::Precharge(d) =
                progress_for(entry, ctx)
            {
                let features = self.features(ctx, entry, &d);
                let indices = self.table_indices(&features);
                let q = self.q_value(&indices);
                self.learn(q);
                self.prev = Some((indices, q, Self::reward_of(&d)));
                self.decisions += 1;
                return Some(d);
            }
        }

        let candidates = self.candidates(ctx);
        if candidates.is_empty() {
            return None;
        }
        let scored: Vec<(Vec<usize>, f64, SchedDecision)> = candidates
            .iter()
            .map(|(entry, decision)| {
                let features = self.features(ctx, entry, decision);
                let indices = self.table_indices(&features);
                let q = self.q_value(&indices);
                (indices, q, *decision)
            })
            .collect();
        let explore = self.rng.gen_bool(self.cfg.epsilon.clamp(0.0, 1.0));
        let chosen = if explore {
            self.exploratory_decisions += 1;
            self.rng.gen_range(0..scored.len())
        } else {
            scored
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1 .1
                        .partial_cmp(&b.1 .1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let (indices, q, decision) = scored
            .into_iter()
            .nth(chosen)
            // simlint: allow(panic) chosen is sampled modulo scored.len()
            .expect("chosen index in range");
        self.learn(q);
        self.prev = Some((indices, q, Self::reward_of(&decision)));
        self.decisions += 1;
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn push(q: &mut RequestQueue, id: u64, kind: AccessKind, bank: usize, row: u64, at: u64) {
        q.push(
            MemoryRequest::new(id, kind, 0, id as usize % 16, at),
            Location::new(0, bank, row, 0),
            at,
        )
        .unwrap();
    }

    fn ctx<'a>(
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
            write_mode: false,
            num_cores: 16,
        }
    }

    #[test]
    fn picks_a_legal_command_and_counts_decisions() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, AccessKind::Read, 0, 5, 0);
        let mut s = RlScheduler::new(RlConfig::default());
        let d = s.pick(&ctx(&ch, &rq, &wq, 0)).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 0, 5, 0)));
        assert!(ch.can_issue(&d.command, 0));
        assert_eq!(s.decisions(), 1);
    }

    #[test]
    fn considers_writes_without_write_mode() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let rq = RequestQueue::new(8);
        let mut wq = RequestQueue::new(8);
        push(&mut wq, 2, AccessKind::Write, 1, 7, 0);
        let mut s = RlScheduler::new(RlConfig::default());
        assert!(s.manages_write_drain());
        let d = s.pick(&ctx(&ch, &rq, &wq, 0)).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 1, 7, 0)));
    }

    #[test]
    fn learning_reinforces_data_transfers() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        ch.issue(&Command::activate(Location::new(0, 0, 5, 0)), 0);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, AccessKind::Read, 0, 5, 0);
        let mut s = RlScheduler::new(RlConfig {
            epsilon: 0.0,
            ..RlConfig::default()
        });
        // Take the same rewarding decision repeatedly; its Q-value must grow.
        let c = ctx(&ch, &rq, &wq, cfg.timing.t_rcd);
        let d = s.pick(&c).unwrap();
        assert!(d.command.kind.is_read());
        let total_before: f64 = s.tables.iter().flatten().sum();
        for _ in 0..20 {
            let _ = s.pick(&c);
        }
        let total_after: f64 = s.tables.iter().flatten().sum();
        assert!(
            total_after > total_before,
            "repeated rewarded actions must increase Q mass ({total_before} -> {total_after})"
        );
    }

    #[test]
    fn exploration_rate_roughly_matches_epsilon() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, AccessKind::Read, 0, 5, 0);
        push(&mut rq, 2, AccessKind::Read, 1, 6, 0);
        let mut s = RlScheduler::new(RlConfig {
            epsilon: 0.5,
            ..RlConfig::default()
        });
        for _ in 0..400 {
            let _ = s.pick(&ctx(&ch, &rq, &wq, 0));
        }
        let rate = s.exploratory_decisions() as f64 / s.decisions() as f64;
        assert!((0.35..0.65).contains(&rate), "exploration rate {rate}");
    }

    #[test]
    fn starved_request_is_forced() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, AccessKind::Read, 0, 5, 0);
        push(&mut rq, 2, AccessKind::Read, 1, 6, 11_000);
        let mut s = RlScheduler::new(RlConfig::default());
        let d = s.pick(&ctx(&ch, &rq, &wq, 11_050)).unwrap();
        // Request 1 is 11050 cycles old (over the 10K threshold): forced first.
        assert_eq!(d.command, Command::activate(Location::new(0, 0, 5, 0)));
    }

    #[test]
    fn empty_queues_return_none() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        let mut s = RlScheduler::new(RlConfig::default());
        assert!(s.pick(&ctx(&ch, &rq, &wq, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "num_tables must be non-zero")]
    fn zero_tables_panics() {
        let _ = RlScheduler::new(RlConfig {
            num_tables: 0,
            ..RlConfig::default()
        });
    }
}
