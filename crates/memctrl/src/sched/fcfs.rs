//! First-come-first-served schedulers.

use crate::sched::{first_ready, progress_for, SchedContext, SchedDecision, Scheduler};

/// Strict FCFS: only the oldest pending request of the active queue is ever
/// considered, so a blocked head request blocks the whole channel.
///
/// This is the simplest possible scheduler and serves as the lower bound in
/// the paper's discussion; the variant actually evaluated in the figures is
/// [`FcfsBanks`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates a strict FCFS scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        let oldest = ctx.active_queue().oldest()?;
        progress_for(oldest, ctx).decision()
    }
}

/// `FCFS_banks`: conceptually one FCFS queue per bank, so requests to
/// different banks proceed in parallel, but requests to the same bank are
/// never reordered (no row-hit promotion).
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsBanks;

impl FcfsBanks {
    /// Creates a per-bank FCFS scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for FcfsBanks {
    fn name(&self) -> &'static str {
        "FCFS_Banks"
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        // The head of each per-bank queue is the oldest pending request for
        // that (rank, bank). Collect those heads in global age order and let
        // the first-ready skeleton choose among them; because only per-bank
        // heads are candidates, no within-bank reordering can happen.
        let queue = ctx.active_queue();
        let banks_per_rank = ctx.channel.banks_per_rank();
        let total_banks = ctx.channel.rank_count() * banks_per_rank;
        let mut seen = vec![false; total_banks];
        let mut heads = Vec::with_capacity(total_banks);
        for entry in queue.iter() {
            let flat = entry.location.flat_bank(banks_per_rank);
            if !seen[flat] {
                seen[flat] = true;
                heads.push(entry);
            }
        }
        // Entries are already in arrival order, so `heads` is oldest-first.
        first_ready(heads, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn push(q: &mut RequestQueue, id: u64, bank: usize, row: u64, at: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, id as usize % 16, at),
            Location::new(0, bank, row, 0),
            at,
        )
        .unwrap();
    }

    fn ctx<'a>(
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
            write_mode: false,
            num_cores: 16,
        }
    }

    #[test]
    fn strict_fcfs_blocks_on_head_of_line() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        // Open row 9 in bank 0 so the head request (row 5) is a conflict that
        // cannot precharge before tRAS.
        ch.issue(&Command::activate(Location::new(0, 0, 9, 0)), 0);
        push(&mut rq, 1, 0, 5, 0);
        push(&mut rq, 2, 1, 7, 1); // different bank, could proceed
        let mut s = Fcfs::new();
        // Head request is blocked (tRAS not elapsed), so strict FCFS idles.
        // Cycle 5 respects tRRD after the activate at cycle 0.
        assert!(s.pick(&ctx(&ch, &rq, &wq, 5)).is_none());
        // FCFS_banks instead activates bank 1 for request 2.
        let mut sb = FcfsBanks::new();
        let d = sb.pick(&ctx(&ch, &rq, &wq, 5)).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 1, 7, 0)));
    }

    #[test]
    fn fcfs_banks_does_not_reorder_within_a_bank() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        // Row 9 open in bank 0; the oldest request for bank 0 targets row 5
        // (a conflict) while a younger one targets the open row 9 (a hit).
        ch.issue(&Command::activate(Location::new(0, 0, 9, 0)), 0);
        push(&mut rq, 1, 0, 5, 0);
        push(&mut rq, 2, 0, 9, 1);
        let mut s = FcfsBanks::new();
        let now = cfg.timing.t_ras;
        let d = s.pick(&ctx(&ch, &rq, &wq, now)).unwrap();
        // FCFS_banks serves the older conflict first (precharge), it never
        // promotes the younger hit.
        assert_eq!(d.command, Command::precharge(Location::new(0, 0, 5, 0)));
        assert_eq!(d.request_id, None);
    }

    #[test]
    fn fcfs_serves_head_when_ready() {
        let cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&cfg);
        let mut rq = RequestQueue::new(16);
        let wq = RequestQueue::new(16);
        ch.issue(&Command::activate(Location::new(0, 0, 5, 0)), 0);
        push(&mut rq, 1, 0, 5, 0);
        let mut s = Fcfs::new();
        let d = s.pick(&ctx(&ch, &rq, &wq, cfg.timing.t_rcd)).unwrap();
        assert_eq!(d.request_id, Some(1));
    }

    #[test]
    fn empty_queue_returns_none() {
        let cfg = DramConfig::baseline();
        let ch = DramChannel::new(&cfg);
        let rq = RequestQueue::new(4);
        let wq = RequestQueue::new(4);
        assert!(Fcfs::new().pick(&ctx(&ch, &rq, &wq, 0)).is_none());
        assert!(FcfsBanks::new().pick(&ctx(&ch, &rq, &wq, 0)).is_none());
    }
}
