//! ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
//! (Kim et al., HPCA 2010).

use cloudmc_dram::DramCycles;

use crate::queue::QueueEntry;
use crate::request::{CompletedRequest, RowBufferOutcome};
use crate::sched::{first_ready, SchedContext, SchedDecision, Scheduler};

/// ATLAS parameters (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasConfig {
    /// Quantum length in DRAM cycles; core ranks are recomputed at quantum
    /// boundaries. The paper uses 10 M cycles.
    pub quantum: DramCycles,
    /// Exponential-smoothing weight given to the just-finished quantum when
    /// updating the long-term attained service of a core.
    pub alpha: f64,
    /// Requests older than this many cycles are prioritized unconditionally.
    pub starvation_threshold: DramCycles,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        Self {
            quantum: 10_000_000,
            alpha: 0.875,
            starvation_threshold: 50_000,
        }
    }
}

impl AtlasConfig {
    /// A copy of the configuration with quantum and starvation threshold
    /// scaled by `factor` (used by the reduced-scale experiment harness so
    /// that several quanta still elapse within a short simulation).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            quantum: ((self.quantum as f64 * factor) as DramCycles).max(1),
            alpha: self.alpha,
            starvation_threshold: ((self.starvation_threshold as f64 * factor) as DramCycles)
                .max(1),
        }
    }
}

/// ATLAS scheduler: cores that attained the least memory service so far are
/// prioritized, on the premise that they are the most vulnerable to
/// interference. Ranking is recomputed once per quantum from exponentially
/// smoothed attained service.
#[derive(Debug)]
pub struct Atlas {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    cfg: AtlasConfig,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    num_cores: usize,
    /// Long-term (smoothed) attained service per core.
    total_service: Vec<f64>,
    /// Attained service accumulated during the current quantum.
    quantum_service: Vec<f64>,
    /// Priority position per core (0 = highest priority).
    core_rank: Vec<usize>,
    quantum_end: DramCycles,
    quanta_elapsed: u64,
}

impl Atlas {
    /// Creates an ATLAS scheduler for `num_cores` cores.
    #[must_use]
    pub fn new(cfg: AtlasConfig, num_cores: usize) -> Self {
        Self {
            cfg,
            num_cores,
            total_service: vec![0.0; num_cores],
            quantum_service: vec![0.0; num_cores],
            core_rank: vec![0; num_cores],
            quantum_end: cfg.quantum,
            quanta_elapsed: 0,
        }
    }

    /// Number of completed ranking quanta.
    #[must_use]
    pub fn quanta_elapsed(&self) -> u64 {
        self.quanta_elapsed
    }

    /// Current priority position of `core` (0 = highest priority).
    #[must_use]
    pub fn rank_of(&self, core: usize) -> usize {
        self.core_rank.get(core).copied().unwrap_or(usize::MAX)
    }

    /// Long-term attained service of `core` (exposed for diagnostics).
    #[must_use]
    pub fn attained_service(&self, core: usize) -> f64 {
        self.total_service.get(core).copied().unwrap_or(0.0)
    }

    /// Serializes the scheduler's mutable state (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.f64_slice(&self.total_service);
        w.f64_slice(&self.quantum_service);
        w.usize(self.core_rank.len());
        for &rank in &self.core_rank {
            w.usize(rank);
        }
        w.u64(self.quantum_end);
        w.u64(self.quanta_elapsed);
    }

    /// Restores the scheduler's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or a vector
    /// length that does not match the configured core count.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        for (name, vec) in [
            ("total_service", &mut self.total_service),
            ("quantum_service", &mut self.quantum_service),
        ] {
            let count = r.bounded_len(8)?;
            if count != vec.len() {
                return Err(r.bad_value(format!("{count} {name} entries, expected {}", vec.len())));
            }
            for slot in vec.iter_mut() {
                *slot = r.f64()?;
            }
        }
        let count = r.bounded_len(8)?;
        if count != self.core_rank.len() {
            return Err(r.bad_value(format!(
                "{count} core ranks, expected {}",
                self.core_rank.len()
            )));
        }
        for slot in &mut self.core_rank {
            let rank = r.usize()?;
            if rank >= self.num_cores {
                return Err(r.bad_value(format!(
                    "core rank {rank} out of range for {} cores",
                    self.num_cores
                )));
            }
            *slot = rank;
        }
        self.quantum_end = r.u64()?;
        self.quanta_elapsed = r.u64()?;
        Ok(())
    }

    fn end_quantum(&mut self) {
        self.quanta_elapsed += 1;
        for core in 0..self.num_cores {
            self.total_service[core] = self.cfg.alpha * self.quantum_service[core]
                + (1.0 - self.cfg.alpha) * self.total_service[core];
            self.quantum_service[core] = 0.0;
        }
        // Least attained service gets the highest priority (lowest rank value).
        let mut order: Vec<usize> = (0..self.num_cores).collect();
        order.sort_by(|&a, &b| {
            self.total_service[a]
                .partial_cmp(&self.total_service[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for (position, &core) in order.iter().enumerate() {
            self.core_rank[core] = position;
        }
    }

    /// Approximate bank service time of one completed request, used to charge
    /// attained service to its core.
    fn service_cost(outcome: RowBufferOutcome) -> f64 {
        match outcome {
            RowBufferOutcome::Hit => 15.0,
            RowBufferOutcome::Miss => 26.0,
            RowBufferOutcome::Conflict => 37.0,
        }
    }
}

impl Scheduler for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn on_cycle(&mut self, ctx: &SchedContext<'_>) {
        while ctx.now >= self.quantum_end {
            self.end_quantum();
            self.quantum_end += self.cfg.quantum;
        }
    }

    /// The ranking quantum must end at its exact cycle relative to request
    /// completions (service attained before the boundary belongs to the old
    /// quantum), so the kernel may never fast-forward across it.
    fn next_event_cycle(&self) -> Option<DramCycles> {
        Some(self.quantum_end)
    }

    fn on_complete(&mut self, done: &CompletedRequest) {
        let core = done.request.core;
        if let Some(s) = self.quantum_service.get_mut(core) {
            *s += Self::service_cost(done.outcome);
        }
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<SchedDecision> {
        let queue = ctx.active_queue();
        if queue.is_empty() {
            return None;
        }
        // Rule 1: requests over the starvation threshold go first, oldest first.
        let mut starved: Vec<&QueueEntry> = queue
            .iter()
            .filter(|e| e.age(ctx.now) > self.cfg.starvation_threshold)
            .collect();
        if !starved.is_empty() {
            starved.sort_by_key(|e| e.enqueued_at);
            if let Some(d) = first_ready(starved, ctx) {
                return Some(d);
            }
        }
        // Rule 2-4: higher-ranked core first, then row hit, then age.
        // (`first_ready` promotes ready column commands within the ordered
        // candidate list, giving rank > hit > age overall ordering per rank
        // class because the list is sorted by rank first.)
        let mut entries: Vec<&QueueEntry> = queue.iter().collect();
        entries.sort_by(|a, b| {
            self.rank_of(a.request.core)
                .cmp(&self.rank_of(b.request.core))
                .then(a.enqueued_at.cmp(&b.enqueued_at))
                .then(a.request.id.cmp(&b.request.id))
        });
        first_ready(entries, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestQueue;
    use crate::request::{AccessKind, MemoryRequest};
    use cloudmc_dram::{Command, DramChannel, DramConfig, Location};

    fn push(q: &mut RequestQueue, id: u64, core: usize, bank: usize, row: u64, at: u64) {
        q.push(
            MemoryRequest::new(id, AccessKind::Read, 0, core, at),
            Location::new(0, bank, row, 0),
            at,
        )
        .unwrap();
    }

    fn ctx<'a>(
        ch: &'a DramChannel,
        rq: &'a RequestQueue,
        wq: &'a RequestQueue,
        now: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now,
            channel: ch,
            read_q: rq,
            write_q: wq,
            write_mode: false,
            num_cores: 4,
        }
    }

    fn completed(core: usize, outcome: RowBufferOutcome) -> CompletedRequest {
        CompletedRequest {
            request: MemoryRequest::new(999, AccessKind::Read, 0, core, 0),
            channel: 0,
            location: Location::new(0, 0, 0, 0),
            issue: 80,
            completion: 100,
            outcome,
            retries: 0,
        }
    }

    #[test]
    fn quantum_boundary_reranks_cores() {
        let cfg = AtlasConfig {
            quantum: 1000,
            alpha: 0.875,
            starvation_threshold: 50_000,
        };
        let mut s = Atlas::new(cfg, 4);
        // Core 0 consumes a lot of service, core 1 a little.
        for _ in 0..10 {
            s.on_complete(&completed(0, RowBufferOutcome::Conflict));
        }
        s.on_complete(&completed(1, RowBufferOutcome::Hit));
        let dram_cfg = DramConfig::baseline();
        let ch = DramChannel::new(&dram_cfg);
        let rq = RequestQueue::new(4);
        let wq = RequestQueue::new(4);
        s.on_cycle(&ctx(&ch, &rq, &wq, 1000));
        assert_eq!(s.quanta_elapsed(), 1);
        // Cores 2 and 3 attained nothing: highest priority. Core 0 is last.
        assert_eq!(s.rank_of(0), 3);
        assert!(s.rank_of(1) < s.rank_of(0));
        assert!(s.attained_service(0) > s.attained_service(1));
    }

    #[test]
    fn lower_service_core_wins_after_ranking() {
        let cfg = AtlasConfig {
            quantum: 100,
            alpha: 1.0,
            starvation_threshold: 50_000,
        };
        let mut s = Atlas::new(cfg, 4);
        for _ in 0..5 {
            s.on_complete(&completed(0, RowBufferOutcome::Conflict));
        }
        let dram_cfg = DramConfig::baseline();
        let ch = DramChannel::new(&dram_cfg);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        // Older request from the heavy core 0, younger from the light core 1,
        // to different banks (both are activate candidates).
        push(&mut rq, 1, 0, 0, 5, 0);
        push(&mut rq, 2, 1, 1, 6, 10);
        let c = ctx(&ch, &rq, &wq, 150);
        s.on_cycle(&c);
        let d = s.pick(&c).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 1, 6, 0)));
    }

    #[test]
    fn starved_request_overrides_ranking() {
        let cfg = AtlasConfig {
            quantum: 100,
            alpha: 1.0,
            starvation_threshold: 500,
        };
        let mut s = Atlas::new(cfg, 4);
        for _ in 0..5 {
            s.on_complete(&completed(0, RowBufferOutcome::Conflict));
        }
        let dram_cfg = DramConfig::baseline();
        let ch = DramChannel::new(&dram_cfg);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, 0, 0, 5, 0); // heavy core, but very old
        push(&mut rq, 2, 1, 1, 6, 590);
        let c = ctx(&ch, &rq, &wq, 600);
        s.on_cycle(&c);
        let d = s.pick(&c).unwrap();
        assert_eq!(d.command, Command::activate(Location::new(0, 0, 5, 0)));
    }

    #[test]
    fn behaves_like_frfcfs_before_first_quantum() {
        let mut s = Atlas::new(AtlasConfig::default(), 4);
        let dram_cfg = DramConfig::baseline();
        let mut ch = DramChannel::new(&dram_cfg);
        ch.issue(&Command::activate(Location::new(0, 0, 9, 0)), 0);
        let mut rq = RequestQueue::new(8);
        let wq = RequestQueue::new(8);
        push(&mut rq, 1, 0, 0, 5, 0); // conflict, older
        push(&mut rq, 2, 1, 0, 9, 1); // hit, younger
        let now = dram_cfg.timing.t_ras;
        let c = ctx(&ch, &rq, &wq, now);
        s.on_cycle(&c);
        let d = s.pick(&c).unwrap();
        assert_eq!(
            d.request_id,
            Some(2),
            "row hit should win while ranks are equal"
        );
    }

    #[test]
    fn scaled_config_shrinks_quantum() {
        let cfg = AtlasConfig::default().scaled(0.01);
        assert_eq!(cfg.quantum, 100_000);
        assert_eq!(cfg.starvation_threshold, 500);
        assert!((cfg.alpha - 0.875).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = Atlas::new(AtlasConfig::default(), 4);
        let dram_cfg = DramConfig::baseline();
        let ch = DramChannel::new(&dram_cfg);
        let rq = RequestQueue::new(4);
        let wq = RequestQueue::new(4);
        assert!(s.pick(&ctx(&ch, &rq, &wq, 0)).is_none());
    }
}
