//! Property-based tests of the memory controller: address mapping is a
//! bijection, and every enqueued request completes exactly once under every
//! scheduler and page-policy combination.

use std::collections::HashSet;

use proptest::prelude::*;

use cloudmc_dram::DramConfig;
use cloudmc_memctrl::{
    AccessKind, AddressMapping, McConfig, MemoryController, MemoryRequest, PagePolicyKind,
    SchedulerKind,
};

fn mapping_strategy() -> impl Strategy<Value = AddressMapping> {
    prop_oneof![
        Just(AddressMapping::RoRaBaCoCh),
        Just(AddressMapping::RoRaBaChCo),
        Just(AddressMapping::RoRaChBaCo),
        Just(AddressMapping::RoChRaBaCo),
    ]
}

fn scheduler_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Fcfs),
        Just(SchedulerKind::FcfsBanks),
        Just(SchedulerKind::FrFcfs),
        Just("par-bs".parse::<SchedulerKind>().unwrap()),
        Just("atlas".parse::<SchedulerKind>().unwrap()),
        Just("rl".parse::<SchedulerKind>().unwrap()),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PagePolicyKind> {
    prop_oneof![
        Just(PagePolicyKind::Open),
        Just(PagePolicyKind::Close),
        Just(PagePolicyKind::OpenAdaptive),
        Just(PagePolicyKind::CloseAdaptive),
        Just(PagePolicyKind::Rbpp),
        Just(PagePolicyKind::Abpp),
        Just(PagePolicyKind::Timer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(addr) -> encode(decoded) is the identity for in-range addresses
    /// under every mapping and channel count.
    #[test]
    fn address_mapping_round_trips(
        mapping in mapping_strategy(),
        channels in prop_oneof![Just(1usize), Just(2), Just(4)],
        block in 0u64..(1 << 40) / 64,
    ) {
        let cfg = DramConfig::with_channels(channels);
        let addr = (block * 64) % cfg.capacity_bytes();
        let decoded = mapping.decode(addr, &cfg);
        prop_assert!(decoded.channel < channels);
        prop_assert!(decoded.location.rank < cfg.ranks_per_channel);
        prop_assert!(decoded.location.bank < cfg.banks_per_rank);
        prop_assert!(decoded.location.row < cfg.rows_per_bank);
        prop_assert!(decoded.location.column < cfg.columns_per_row());
        prop_assert_eq!(mapping.encode(&decoded, &cfg), addr);
    }

    /// Two distinct block addresses never decode to the same coordinates.
    #[test]
    fn address_mapping_is_injective_on_blocks(
        mapping in mapping_strategy(),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        prop_assume!(a != b);
        let cfg = DramConfig::with_channels(4);
        let da = mapping.decode(a * 64, &cfg);
        let db = mapping.decode(b * 64, &cfg);
        prop_assert_ne!((da.channel, da.location), (db.channel, db.location));
    }
}

proptest! {
    // End-to-end controller runs are slower; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every enqueued request completes exactly once, regardless of the
    /// scheduler, page policy, mapping and channel count in use.
    #[test]
    fn requests_are_conserved(
        scheduler in scheduler_strategy(),
        policy in policy_strategy(),
        mapping in mapping_strategy(),
        channels in prop_oneof![Just(1usize), Just(2)],
        requests in proptest::collection::vec(
            (0u64..1 << 26, any::<bool>(), 0usize..16, 0u64..64),
            1..48,
        ),
    ) {
        let mut cfg = McConfig::baseline();
        cfg.scheduler = scheduler;
        cfg.page_policy = policy;
        cfg.mapping = mapping;
        cfg.dram.channels = channels;
        let mut mc = MemoryController::new(cfg).expect("valid config");
        let mut pending = std::collections::VecDeque::new();
        for (i, &(block, write, core, offset)) in requests.iter().enumerate() {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let addr = (block * 64) % cfg.dram.capacity_bytes();
            pending.push_back(MemoryRequest::new(i as u64, kind, addr, core, offset));
        }
        let total = pending.len();
        let mut completed = HashSet::new();
        let mut cycle = 0u64;
        while completed.len() < total {
            prop_assert!(cycle < 500_000, "requests did not drain ({}/{total})", completed.len());
            // Feed requests as queue space allows, spread over time.
            if cycle % 3 == 0 {
                if let Some(mut req) = pending.pop_front() {
                    // Arrival is the cycle the controller first sees the
                    // request; the generated offset only staggers issue order.
                    req.arrival = cycle;
                    if mc.enqueue(req, cycle).is_err() {
                        pending.push_front(req);
                    }
                }
            }
            for done in mc.tick(cycle) {
                prop_assert!(
                    completed.insert(done.request.id),
                    "request {} completed twice",
                    done.request.id
                );
                prop_assert!(done.completion >= done.request.arrival);
            }
            cycle += 1;
        }
        let stats = mc.stats();
        prop_assert_eq!(stats.completed(), total as u64);
        prop_assert_eq!(
            stats.row_hits + stats.row_misses + stats.row_conflicts,
            total as u64
        );
        prop_assert_eq!(mc.pending(), 0);
    }
}
