//! Randomized tests of the memory controller: address mapping is a bijection,
//! and every enqueued request completes exactly once under every scheduler
//! and page-policy combination.
//!
//! These were originally `proptest` properties; the build environment has no
//! registry access, so they now draw their cases from a seeded [`rand`]
//! stream — same invariants, deterministic inputs.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_dram::DramConfig;
use cloudmc_memctrl::{
    AccessKind, AddressMapping, McConfig, MemoryController, MemoryRequest, PagePolicyKind,
    SchedulerKind,
};

fn schedulers() -> [SchedulerKind; 6] {
    [
        SchedulerKind::Fcfs,
        SchedulerKind::FcfsBanks,
        SchedulerKind::FrFcfs,
        "par-bs".parse().unwrap(),
        "atlas".parse().unwrap(),
        "rl".parse().unwrap(),
    ]
}

fn policies() -> [PagePolicyKind; 7] {
    [
        PagePolicyKind::Open,
        PagePolicyKind::Close,
        PagePolicyKind::OpenAdaptive,
        PagePolicyKind::CloseAdaptive,
        PagePolicyKind::Rbpp,
        PagePolicyKind::Abpp,
        PagePolicyKind::Timer,
    ]
}

/// decode(addr) -> encode(decoded) is the identity for in-range addresses
/// under every mapping and channel count.
#[test]
fn address_mapping_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xAD0);
    for mapping in AddressMapping::all() {
        for channels in [1usize, 2, 4] {
            let cfg = DramConfig::with_channels(channels);
            for _case in 0..64 {
                let block = rng.gen_range(0..(1u64 << 40) / 64);
                let addr = (block * 64) % cfg.capacity_bytes();
                let decoded = mapping.decode(addr, &cfg);
                assert!(decoded.channel < channels);
                assert!(decoded.location.rank < cfg.ranks_per_channel);
                assert!(decoded.location.bank < cfg.banks_per_rank);
                assert!(decoded.location.row < cfg.rows_per_bank);
                assert!(decoded.location.column < cfg.columns_per_row());
                assert_eq!(mapping.encode(&decoded, &cfg), addr, "{mapping} {addr:#x}");
            }
        }
    }
}

/// Two distinct block addresses never decode to the same coordinates.
#[test]
fn address_mapping_is_injective_on_blocks() {
    let mut rng = StdRng::seed_from_u64(0x1213);
    let cfg = DramConfig::with_channels(4);
    for mapping in AddressMapping::all() {
        for _case in 0..64 {
            let a = rng.gen_range(0..1_000_000u64);
            let b = rng.gen_range(0..1_000_000u64);
            if a == b {
                continue;
            }
            let da = mapping.decode(a * 64, &cfg);
            let db = mapping.decode(b * 64, &cfg);
            assert_ne!(
                (da.channel, da.location),
                (db.channel, db.location),
                "{mapping}: blocks {a} and {b} collide"
            );
        }
    }
}

/// Every enqueued request completes exactly once, regardless of the
/// scheduler, page policy, mapping and channel count in use.
#[test]
fn requests_are_conserved() {
    let mut rng = StdRng::seed_from_u64(0xC0_1357);
    for case in 0..24 {
        let scheduler = schedulers()[case % schedulers().len()];
        let policy = policies()[rng.gen_range(0..policies().len())];
        let mapping = AddressMapping::all()[rng.gen_range(0..4usize)];
        let channels = [1usize, 2][rng.gen_range(0..2usize)];

        let mut cfg = McConfig::baseline();
        cfg.scheduler = scheduler;
        cfg.page_policy = policy;
        cfg.mapping = mapping;
        cfg.dram.channels = channels;
        let mut mc = MemoryController::new(cfg).expect("valid config");
        let mut pending = std::collections::VecDeque::new();
        let total = rng.gen_range(1..48usize);
        for i in 0..total {
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let addr = (rng.gen_range(0..1u64 << 26) * 64) % cfg.dram.capacity_bytes();
            let core = rng.gen_range(0..16usize);
            pending.push_back(MemoryRequest::new(i as u64, kind, addr, core, 0));
        }
        let mut completed = HashSet::new();
        let mut done = Vec::new();
        let mut cycle = 0u64;
        while completed.len() < total {
            assert!(
                cycle < 500_000,
                "{scheduler} / {policy} / {mapping}: requests did not drain ({}/{total})",
                completed.len()
            );
            // Feed requests as queue space allows, spread over time.
            if cycle.is_multiple_of(3) {
                if let Some(mut req) = pending.pop_front() {
                    // Arrival is the cycle the controller first sees the
                    // request; generation only staggers issue order.
                    req.arrival = cycle;
                    if mc.enqueue(req, cycle).is_err() {
                        pending.push_front(req);
                    }
                }
            }
            mc.tick(cycle, &mut done);
            for d in done.drain(..) {
                assert!(
                    completed.insert(d.request.id),
                    "request {} completed twice",
                    d.request.id
                );
                assert!(d.completion >= d.request.arrival);
            }
            cycle += 1;
        }
        let stats = mc.stats();
        assert_eq!(stats.completed(), total as u64);
        assert_eq!(
            stats.row_hits + stats.row_misses + stats.row_conflicts,
            total as u64
        );
        assert_eq!(mc.pending(), 0);
    }
}
