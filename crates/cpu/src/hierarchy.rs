//! Shared last-level cache and interconnect model.
//!
//! The paper's baseline chip has a modestly sized 4 MB, 16-way, 4-bank shared
//! L2 connected to the 16 cores by a 16x4 crossbar. The model here provides
//! the banked cache plus fixed crossbar/bank latencies; the full-system
//! simulator routes L2 misses and dirty evictions to the memory controller.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the shared L2 and the crossbar reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Geometry of one bank.
    pub bank: CacheConfig,
    /// Number of independently addressed banks.
    pub banks: usize,
    /// Access latency of a bank in CPU cycles.
    pub bank_latency: u64,
    /// One-way crossbar traversal latency in CPU cycles.
    pub crossbar_latency: u64,
}

impl L2Config {
    /// The paper's 4 MB, 16-way, 4-bank shared L2 behind a 16x4 crossbar.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            bank: CacheConfig::l2_bank_baseline(),
            banks: 4,
            bank_latency: 8,
            crossbar_latency: 4,
        }
    }

    /// Total capacity across banks in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.bank.size_bytes * self.banks as u64
    }

    /// Round-trip latency of an L2 hit in CPU cycles.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        2 * self.crossbar_latency + self.bank_latency
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for a zero or non-power-of-two
    /// bank count, or an invalid bank geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(format!(
                "bank count {} must be a non-zero power of two",
                self.banks
            ));
        }
        self.bank.validate()
    }
}

impl Default for L2Config {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Outcome of an L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Outcome {
    /// Whether the block was present.
    pub hit: bool,
    /// Dirty block evicted by the allocation, to be written back to memory.
    pub writeback: Option<u64>,
    /// Latency in CPU cycles charged to this access (crossbar + bank).
    pub latency: u64,
}

/// The shared, banked last-level cache.
///
/// # Examples
///
/// ```
/// use cloudmc_cpu::{L2Config, SharedL2};
///
/// let mut l2 = SharedL2::new(L2Config::baseline());
/// let first = l2.access(0xdead_c0, false);
/// assert!(!first.hit);
/// assert!(l2.access(0xdead_c0, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SharedL2 {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    config: L2Config,
    banks: Vec<Cache>,
}

impl SharedL2 {
    /// Creates an empty shared L2.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    #[must_use]
    pub fn new(config: L2Config) -> Self {
        // simlint: allow(panic) documented constructor contract: config must validate
        config.validate().expect("invalid L2 configuration");
        Self {
            config,
            banks: (0..config.banks).map(|_| Cache::new(config.bank)).collect(),
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    /// Which bank serves `addr` (block-address interleaving).
    #[must_use]
    pub fn bank_for(&self, addr: u64) -> usize {
        ((addr / self.config.bank.block_bytes) % self.config.banks as u64) as usize
    }

    /// Address as seen inside one bank: the bank-selection bits are removed so
    /// that every set of the bank is usable regardless of the interleaving.
    fn bank_local_addr(&self, addr: u64) -> u64 {
        let block_bytes = self.config.bank.block_bytes;
        let block = addr / block_bytes;
        (block / self.config.banks as u64) * block_bytes + (addr % block_bytes)
    }

    /// Converts a bank-local block address back to the global address space.
    fn global_addr(&self, bank: usize, local_addr: u64) -> u64 {
        let block_bytes = self.config.bank.block_bytes;
        let local_block = local_addr / block_bytes;
        (local_block * self.config.banks as u64 + bank as u64) * block_bytes
    }

    /// Performs an access on behalf of a core refill (`is_write == false`) or
    /// an L1 write-back (`is_write == true`).
    pub fn access(&mut self, addr: u64, is_write: bool) -> L2Outcome {
        let bank = self.bank_for(addr);
        let local = self.bank_local_addr(addr);
        let result = self.banks[bank].access(local, is_write);
        L2Outcome {
            hit: result.hit,
            writeback: result.writeback.map(|w| self.global_addr(bank, w)),
            latency: self.config.hit_latency(),
        }
    }

    /// Whether the block containing `addr` is resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let local = self.bank_local_addr(addr);
        self.banks[self.bank_for(addr)].contains(local)
    }

    /// Aggregated counters across banks.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for bank in &self.banks {
            total.hits += bank.stats().hits;
            total.misses += bank.stats().misses;
            total.writebacks += bank.stats().writebacks;
        }
        total
    }

    /// Counters of one bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_stats(&self, bank: usize) -> &CacheStats {
        self.banks[bank].stats()
    }

    /// Serializes every bank's mutable state (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("shared-l2");
        for bank in &self.banks {
            bank.save_state(w);
        }
    }

    /// Restores every bank's mutable state from a checkpoint. The L2 must
    /// have been built with the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or
    /// impossible values.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("shared-l2")?;
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l2() -> SharedL2 {
        SharedL2::new(L2Config {
            bank: CacheConfig {
                size_bytes: 4096,
                associativity: 4,
                block_bytes: 64,
            },
            banks: 2,
            bank_latency: 8,
            crossbar_latency: 4,
        })
    }

    #[test]
    fn baseline_is_4mb_16way_4banks() {
        let cfg = L2Config::baseline();
        cfg.validate().unwrap();
        assert_eq!(cfg.capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(cfg.banks, 4);
        assert_eq!(cfg.bank.associativity, 16);
        assert_eq!(cfg.hit_latency(), 16);
    }

    #[test]
    fn blocks_interleave_across_banks() {
        let l2 = small_l2();
        assert_eq!(l2.bank_for(0x000), 0);
        assert_eq!(l2.bank_for(0x040), 1);
        assert_eq!(l2.bank_for(0x080), 0);
    }

    #[test]
    fn miss_then_hit_and_stats_aggregate() {
        let mut l2 = small_l2();
        assert!(!l2.access(0x000, false).hit);
        assert!(!l2.access(0x040, false).hit);
        assert!(l2.access(0x000, false).hit);
        assert!(l2.contains(0x040));
        let s = l2.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(l2.bank_stats(0).misses, 1);
        assert_eq!(l2.bank_stats(1).misses, 1);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut l2 = small_l2();
        // Bank 0, one set has 4 ways; 4096/64/4 = 16 sets per bank.
        // Blocks in bank 0 mapping to set 0: block index multiples of 32.
        let addrs: Vec<u64> = (0..5).map(|i| i * 32 * 64).collect();
        l2.access(addrs[0], true); // dirty
        for &a in &addrs[1..4] {
            l2.access(a, false);
        }
        let out = l2.access(addrs[4], false); // evicts addrs[0]
        assert_eq!(out.writeback, Some(addrs[0]));
    }

    #[test]
    fn invalid_bank_count_rejected() {
        let mut cfg = L2Config::baseline();
        cfg.banks = 3;
        assert!(cfg.validate().is_err());
    }
}
