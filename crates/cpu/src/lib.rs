//! # cloudmc-cpu
//!
//! Processor-side substrate for the `cloudmc` memory controller study: simple
//! in-order cores with private L1 instruction/data caches, a banked shared
//! L2 behind a crossbar, and MSHR-based miss tracking.
//!
//! The models are deliberately minimal — the paper's conclusions rest on the
//! memory access stream that reaches the controller (miss rates, memory-level
//! parallelism, read/write mix and per-core balance), all of which these
//! components reproduce, rather than on core microarchitecture detail.
//!
//! ```
//! use cloudmc_cpu::{CoreConfig, CoreOp, InOrderCore, MemOp, OpKind};
//!
//! let mut core = InOrderCore::new(0, CoreConfig::default());
//! let mut ops = vec![CoreOp::Mem(MemOp { kind: OpKind::Load, addr: 0x1000, overlappable: false })]
//!     .into_iter();
//! let mut source = move || ops.next().unwrap_or(CoreOp::Compute(1));
//! let refills = core.tick(&mut source);
//! assert_eq!(refills.len(), 1); // cold L1 miss goes to the next level
//! core.fill(0x1000);
//! assert_eq!(core.committed(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod core;
pub mod hierarchy;
pub mod mshr;

pub use crate::core::{
    CoreConfig, CoreOp, CoreRequest, CoreStats, InOrderCore, MemOp, OpKind, TenantId,
};
pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
pub use hierarchy::{L2Config, L2Outcome, SharedL2};
pub use mshr::{Mshr, MshrOutcome};
