//! In-order core model.
//!
//! The paper's baseline CMP uses simple in-order cores (the "scale-out
//! processor" pod of Lotfi-Kamran et al.). The model here captures exactly
//! what matters to the memory controller study: one instruction per cycle
//! unless waiting on memory, private L1 instruction/data caches, a bounded
//! number of outstanding misses (the workload's memory-level parallelism) and
//! dirty write-backs.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::{Mshr, MshrOutcome};

/// The kind of a memory operation executed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
    /// Instruction fetch (goes through the L1-I).
    Ifetch,
}

/// One memory operation of the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Virtual == physical byte address in this model.
    pub addr: u64,
    /// Whether the core may continue past a miss on this operation
    /// (memory-level parallelism), subject to MSHR availability.
    pub overlappable: bool,
}

/// One slot of the instruction stream handed to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreOp {
    /// `n` back-to-back non-memory instructions (`n >= 1`).
    Compute(u32),
    /// A memory operation.
    Mem(MemOp),
}

/// Identifier of the tenant a core (and thus its traffic) belongs to in a
/// consolidated multi-tenant run. Single-tenant runs use tenant `0`.
pub type TenantId = usize;

/// A request the core sends down the hierarchy (an L1 miss refill or a dirty
/// write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreRequest {
    /// Issuing core.
    pub core: usize,
    /// Tenant the issuing core is bound to; rides along through the L2 and
    /// the MSHR path so the memory controller can attribute the miss.
    pub tenant: TenantId,
    /// Block-aligned address.
    pub addr: u64,
    /// `true` for write-backs, `false` for refills.
    pub write: bool,
}

/// Static configuration of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Maximum outstanding misses (MSHR entries); bounds the core's MLP.
    pub max_outstanding_misses: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1_baseline(),
            l1d: CacheConfig::l1_baseline(),
            max_outstanding_misses: 4,
        }
    }
}

/// Per-core performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed (user) instructions.
    pub committed: u64,
    /// Cycles spent stalled waiting for memory.
    pub stall_cycles: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Demand misses sent below the L1s.
    pub l1_demand_misses: u64,
    /// Write-backs sent below the L1s.
    pub l1_writebacks: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// What blocks the core right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    /// Waiting for the refill of a specific block (blocking miss).
    Miss { block: u64, commits_on_fill: bool },
    /// Waiting for any MSHR entry to free up, then retry the saved op.
    MshrFull(MemOp),
}

/// A simple in-order core with private L1 caches.
///
/// The caller drives it one CPU cycle at a time via [`InOrderCore::tick`],
/// supplying instruction-stream slots on demand, and delivers refills via
/// [`InOrderCore::fill`].
#[derive(Debug)]
pub struct InOrderCore {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    id: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    tenant: TenantId,
    l1i: Cache,
    l1d: Cache,
    mshr: Mshr,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    block_bytes: u64,
    pending_compute: u32,
    stall: Option<Stall>,
    stats: CoreStats,
}

impl InOrderCore {
    /// Creates core `id` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the cache configurations are invalid or use different block
    /// sizes.
    #[must_use]
    pub fn new(id: usize, config: CoreConfig) -> Self {
        assert_eq!(
            config.l1i.block_bytes, config.l1d.block_bytes,
            "L1-I and L1-D must use the same block size"
        );
        Self {
            id,
            tenant: 0,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            mshr: Mshr::new(config.max_outstanding_misses, config.l1d.block_bytes),
            block_bytes: config.l1d.block_bytes,
            pending_compute: 0,
            stall: None,
            stats: CoreStats::default(),
        }
    }

    /// Binds the core to `tenant`; every downstream request it emits carries
    /// the tag. Defaults to tenant 0 (single-tenant operation).
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Core index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Tenant the core is bound to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Performance counters.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// L1 instruction cache counters.
    #[must_use]
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L1 data cache counters.
    #[must_use]
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// Whether the core is stalled waiting on memory.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stall.is_some()
    }

    /// Committed user instructions so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    fn block(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// Handles a memory operation. Returns downstream requests.
    fn execute_mem(&mut self, op: MemOp, out: &mut Vec<CoreRequest>) {
        let is_ifetch = op.kind == OpKind::Ifetch;
        let is_store = op.kind == OpKind::Store;
        // Check for structural stall before touching cache state so that the
        // operation can be retried unchanged once an MSHR frees up.
        let would_hit = if is_ifetch {
            self.l1i.contains(op.addr)
        } else {
            self.l1d.contains(op.addr)
        };
        if !would_hit && self.mshr.is_full() && !self.mshr.contains(op.addr) {
            self.stall = Some(Stall::MshrFull(op));
            return;
        }
        let cache = if is_ifetch {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let access = cache.access(op.addr, is_store);
        if let Some(victim) = access.writeback {
            self.stats.l1_writebacks += 1;
            out.push(CoreRequest {
                core: self.id,
                tenant: self.tenant,
                addr: victim,
                write: true,
            });
        }
        if access.hit {
            if !is_ifetch {
                self.stats.committed += 1;
            }
            return;
        }
        // Miss: try to allocate an MSHR and send the refill downstream.
        match self.mshr.allocate(op.addr) {
            MshrOutcome::Allocated => {
                self.stats.l1_demand_misses += 1;
                out.push(CoreRequest {
                    core: self.id,
                    tenant: self.tenant,
                    addr: self.block(op.addr),
                    write: false,
                });
            }
            MshrOutcome::Merged => {}
            MshrOutcome::Full => unreachable!("structural stall is checked before cache access"),
        }
        // Stores retire into the store buffer; loads marked overlappable keep
        // the core running (limited MLP); everything else blocks until fill.
        if is_store || (op.kind == OpKind::Load && op.overlappable) {
            self.stats.committed += 1;
        } else {
            self.stall = Some(Stall::Miss {
                block: self.block(op.addr),
                commits_on_fill: !is_ifetch,
            });
        }
    }

    /// Advances the core by one CPU cycle. `next_op` is called at most once,
    /// when the core needs the next instruction-stream slot. Returns the
    /// requests (refills and write-backs) to inject into the next level.
    pub fn tick(&mut self, next_op: &mut dyn FnMut() -> CoreOp) -> Vec<CoreRequest> {
        self.stats.cycles += 1;
        let mut out = Vec::new();
        match self.stall {
            Some(Stall::Miss { .. }) => {
                self.stats.stall_cycles += 1;
                return out;
            }
            Some(Stall::MshrFull(op)) => {
                if self.mshr.is_full() {
                    self.stats.stall_cycles += 1;
                    return out;
                }
                self.stall = None;
                self.execute_mem(op, &mut out);
                return out;
            }
            None => {}
        }
        if self.pending_compute > 0 {
            self.pending_compute -= 1;
            self.stats.committed += 1;
            return out;
        }
        match next_op() {
            CoreOp::Compute(n) => {
                let n = n.max(1);
                self.stats.committed += 1;
                self.pending_compute = n - 1;
            }
            CoreOp::Mem(op) => self.execute_mem(op, &mut out),
        }
        out
    }

    /// How many upcoming cycles this core is *provably deterministic* for —
    /// the per-core ingredient of the kernel's event-horizon fast-forward.
    ///
    /// * `None` — the core needs its instruction stream on the very next
    ///   tick; nothing can be skipped.
    /// * `Some(u64::MAX)` — the core is blocked until a fill arrives; every
    ///   cycle until then is a stall cycle.
    /// * `Some(k)` — the next `k` ticks each retire one buffered compute
    ///   instruction and touch nothing else.
    ///
    /// [`InOrderCore::skip_cycles`] applies up to that many cycles in bulk
    /// with effects identical to calling [`InOrderCore::tick`] per cycle.
    #[must_use]
    pub fn runway(&self) -> Option<u64> {
        match self.stall {
            Some(Stall::Miss { .. }) => Some(u64::MAX),
            // A core parked on a full MSHR file stays parked until a fill
            // frees an entry; if the file has space it retries next tick.
            Some(Stall::MshrFull(_)) => self.mshr.is_full().then_some(u64::MAX),
            None => (self.pending_compute > 0).then(|| u64::from(self.pending_compute)),
        }
    }

    /// Advances the core by `cycles` cycles in bulk. Exactly equivalent to
    /// `cycles` calls of [`InOrderCore::tick`], valid only while the core is
    /// inside the window reported by [`InOrderCore::runway`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `cycles` exceeds the current runway.
    pub fn skip_cycles(&mut self, cycles: u64) {
        debug_assert!(
            self.runway().is_some_and(|r| r >= cycles),
            "skip of {cycles} cycles exceeds the core's runway"
        );
        self.stats.cycles += cycles;
        if self.stall.is_some() {
            self.stats.stall_cycles += cycles;
        } else {
            self.stats.committed += cycles;
            self.pending_compute -= cycles as u32;
        }
    }

    /// Delivers the refill of `block_addr`; wakes the core if it was blocked
    /// on that block.
    pub fn fill(&mut self, block_addr: u64) {
        let block = self.block(block_addr);
        let _waiters = self.mshr.complete(block);
        if let Some(Stall::Miss {
            block: waiting,
            commits_on_fill,
        }) = self.stall
        {
            if waiting == block {
                if commits_on_fill {
                    self.stats.committed += 1;
                }
                self.stall = None;
            }
        }
    }

    /// Number of misses currently outstanding below the L1s.
    #[must_use]
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.outstanding()
    }

    /// Serializes the core's mutable state: both L1s, the MSHR file, the
    /// compute buffer, the stall condition and the counters (checkpoint
    /// support). Identity and geometry are config-derived and not
    /// serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("core");
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.mshr.save_state(w);
        w.u32(self.pending_compute);
        match self.stall {
            None => w.u8(0),
            Some(Stall::Miss {
                block,
                commits_on_fill,
            }) => {
                w.u8(1);
                w.u64(block);
                w.bool(commits_on_fill);
            }
            Some(Stall::MshrFull(op)) => {
                w.u8(2);
                w.u8(match op.kind {
                    OpKind::Load => 0,
                    OpKind::Store => 1,
                    OpKind::Ifetch => 2,
                });
                w.u64(op.addr);
                w.bool(op.overlappable);
            }
        }
        w.u64(self.stats.committed);
        w.u64(self.stats.stall_cycles);
        w.u64(self.stats.cycles);
        w.u64(self.stats.l1_demand_misses);
        w.u64(self.stats.l1_writebacks);
    }

    /// Restores the core's mutable state from a checkpoint. The core must
    /// have been built with the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or
    /// impossible discriminants.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("core")?;
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.mshr.load_state(r)?;
        self.pending_compute = r.u32()?;
        self.stall = match r.u8()? {
            0 => None,
            1 => Some(Stall::Miss {
                block: r.u64()?,
                commits_on_fill: r.bool()?,
            }),
            2 => {
                let kind = match r.u8()? {
                    0 => OpKind::Load,
                    1 => OpKind::Store,
                    2 => OpKind::Ifetch,
                    other => return Err(r.bad_value(format!("op kind discriminant {other}"))),
                };
                Some(Stall::MshrFull(MemOp {
                    kind,
                    addr: r.u64()?,
                    overlappable: r.bool()?,
                }))
            }
            other => return Err(r.bad_value(format!("stall discriminant {other}"))),
        };
        self.stats.committed = r.u64()?;
        self.stats.stall_cycles = r.u64()?;
        self.stats.cycles = r.u64()?;
        self.stats.l1_demand_misses = r.u64()?;
        self.stats.l1_writebacks = r.u64()?;
        Ok(())
    }

    /// Functionally installs the block containing `addr` into the L1-I
    /// (`instruction == true`) or L1-D without modelling any timing.
    ///
    /// Used for cache warm-up before measurement, standing in for the long
    /// functional warm-up phase of full-system simulation.
    pub fn prewarm(&mut self, addr: u64, instruction: bool) {
        if instruction {
            self.l1i.access(addr, false);
        } else {
            self.l1d.access(addr, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_core() -> InOrderCore {
        let l1 = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            block_bytes: 64,
        };
        InOrderCore::new(
            0,
            CoreConfig {
                l1i: l1,
                l1d: l1,
                max_outstanding_misses: 2,
            },
        )
    }

    fn compute_stream() -> impl FnMut() -> CoreOp {
        || CoreOp::Compute(1)
    }

    #[test]
    fn compute_instructions_commit_one_per_cycle() {
        let mut core = tiny_core();
        let mut src = compute_stream();
        for _ in 0..10 {
            assert!(core.tick(&mut src).is_empty());
        }
        assert_eq!(core.committed(), 10);
        assert!((core.stats().ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_burst_spans_multiple_cycles() {
        let mut core = tiny_core();
        let mut ops = vec![CoreOp::Compute(3)].into_iter();
        let mut src = move || ops.next().unwrap_or(CoreOp::Compute(1));
        for _ in 0..3 {
            core.tick(&mut src);
        }
        assert_eq!(core.committed(), 3);
    }

    #[test]
    fn blocking_load_miss_stalls_until_fill() {
        let mut core = tiny_core();
        let op = CoreOp::Mem(MemOp {
            kind: OpKind::Load,
            addr: 0x1000,
            overlappable: false,
        });
        let mut first = Some(op);
        let mut src = move || first.take().unwrap_or(CoreOp::Compute(1));
        let reqs = core.tick(&mut src);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, 0x1000);
        assert!(!reqs[0].write);
        assert!(core.is_stalled());
        // Stalled cycles commit nothing.
        for _ in 0..5 {
            assert!(core.tick(&mut src).is_empty());
        }
        assert_eq!(core.committed(), 0);
        core.fill(0x1000);
        assert!(!core.is_stalled());
        assert_eq!(core.committed(), 1, "the stalled load commits on fill");
        core.tick(&mut src);
        assert_eq!(core.committed(), 2);
        assert!(core.stats().stall_cycles >= 5);
    }

    #[test]
    fn overlappable_loads_exploit_mlp_until_mshrs_full() {
        let mut core = tiny_core();
        let mk = |addr| {
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr,
                overlappable: true,
            })
        };
        let mut ops = vec![mk(0x1000), mk(0x2000), mk(0x3000)].into_iter();
        let mut src = move || ops.next().unwrap_or(CoreOp::Compute(1));
        assert_eq!(core.tick(&mut src).len(), 1);
        assert!(!core.is_stalled());
        assert_eq!(core.tick(&mut src).len(), 1);
        assert!(!core.is_stalled());
        assert_eq!(core.committed(), 2);
        // Third miss: MSHRs (2 entries) are full, the core must wait.
        assert!(core.tick(&mut src).is_empty());
        assert!(core.is_stalled());
        core.fill(0x1000);
        // Retry succeeds next cycle.
        let reqs = core.tick(&mut src);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, 0x3000);
        assert_eq!(core.committed(), 3);
    }

    #[test]
    fn downstream_requests_carry_the_tenant_tag() {
        let mut core = tiny_core().with_tenant(2);
        assert_eq!(core.tenant(), 2);
        let mut first = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Load,
            addr: 0x1000,
            overlappable: false,
        }));
        let mut src = move || first.take().unwrap_or(CoreOp::Compute(1));
        let reqs = core.tick(&mut src);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].tenant, 2);
        // The default binding is tenant 0.
        assert_eq!(tiny_core().tenant(), 0);
    }

    #[test]
    fn store_misses_do_not_stall() {
        let mut core = tiny_core();
        let mut first = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Store,
            addr: 0x4000,
            overlappable: false,
        }));
        let mut src = move || first.take().unwrap_or(CoreOp::Compute(1));
        let reqs = core.tick(&mut src);
        assert_eq!(reqs.len(), 1);
        assert!(!core.is_stalled());
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn ifetch_miss_stalls_without_committing() {
        let mut core = tiny_core();
        let mut first = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Ifetch,
            addr: 0x8000,
            overlappable: false,
        }));
        let mut src = move || first.take().unwrap_or(CoreOp::Compute(1));
        core.tick(&mut src);
        assert!(core.is_stalled());
        core.fill(0x8000);
        assert!(!core.is_stalled());
        assert_eq!(
            core.committed(),
            0,
            "instruction fetches are not user commits"
        );
    }

    #[test]
    fn dirty_l1_eviction_emits_writeback() {
        let mut core = tiny_core();
        // Store to A (dirties it), then loads mapping to the same set to
        // force the eviction of A. Set stride is 256 bytes (4 sets).
        let ops = vec![
            CoreOp::Mem(MemOp {
                kind: OpKind::Store,
                addr: 0x000,
                overlappable: false,
            }),
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr: 0x100,
                overlappable: true,
            }),
            CoreOp::Mem(MemOp {
                kind: OpKind::Load,
                addr: 0x200,
                overlappable: true,
            }),
        ];
        let mut it = ops.into_iter();
        let mut src = move || it.next().unwrap_or(CoreOp::Compute(1));
        let mut writebacks = 0;
        for _ in 0..6 {
            for r in core.tick(&mut src) {
                if r.write {
                    writebacks += 1;
                    assert_eq!(r.addr, 0x000);
                }
            }
            core.fill(0x000);
            core.fill(0x100);
            core.fill(0x200);
        }
        assert_eq!(writebacks, 1);
        assert_eq!(core.stats().l1_writebacks, 1);
    }

    #[test]
    fn runway_and_skip_match_cycle_by_cycle_ticking() {
        // A stream with a long compute burst: skipping the burst in bulk must
        // leave the core in exactly the state per-cycle ticking would.
        let make = || {
            let mut core = tiny_core();
            let mut ops = vec![CoreOp::Compute(100)].into_iter();
            let mut src = move || ops.next().unwrap_or(CoreOp::Compute(1));
            core.tick(&mut src); // consume the burst head; 99 buffered
            core
        };
        let mut ticked = make();
        let mut src = compute_stream();
        for _ in 0..40 {
            ticked.tick(&mut src);
        }
        let mut skipped = make();
        assert_eq!(skipped.runway(), Some(99));
        skipped.skip_cycles(40);
        assert_eq!(ticked.stats(), skipped.stats());
        assert_eq!(skipped.runway(), Some(59));
    }

    #[test]
    fn runway_reflects_stall_state() {
        let mut core = tiny_core();
        // Fresh core must consult the stream immediately.
        assert_eq!(core.runway(), None);
        let mut first = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Load,
            addr: 0x1000,
            overlappable: false,
        }));
        let mut src = move || first.take().unwrap_or(CoreOp::Compute(1));
        core.tick(&mut src);
        assert!(core.is_stalled());
        assert_eq!(core.runway(), Some(u64::MAX));
        // A bulk stall advance matches per-cycle stalling.
        core.skip_cycles(25);
        assert_eq!(core.stats().stall_cycles, 25);
        assert_eq!(core.committed(), 0);
        core.fill(0x1000);
        assert_eq!(core.runway(), None, "woken core needs the stream again");
    }

    #[test]
    fn repeated_hits_do_not_go_downstream() {
        let mut core = tiny_core();
        let mut warm = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Load,
            addr: 0x40,
            overlappable: false,
        }));
        let mut src = move || warm.take().unwrap_or(CoreOp::Compute(1));
        core.tick(&mut src);
        core.fill(0x40);
        let mut hit = Some(CoreOp::Mem(MemOp {
            kind: OpKind::Load,
            addr: 0x40,
            overlappable: false,
        }));
        let mut src2 = move || hit.take().unwrap_or(CoreOp::Compute(1));
        let reqs = core.tick(&mut src2);
        assert!(reqs.is_empty());
        assert_eq!(core.l1d_stats().hits, 1);
    }
}
