//! Set-associative cache model with LRU replacement and write-back,
//! write-allocate semantics.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Cache block size in bytes.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// 32 KB, 2-way, 64 B blocks: the paper's L1 configuration (Table 2).
    #[must_use]
    pub fn l1_baseline() -> Self {
        Self {
            size_bytes: 32 * 1024,
            associativity: 2,
            block_bytes: 64,
        }
    }

    /// One bank of the paper's shared 4 MB 16-way L2 (4 banks of 1 MB each).
    #[must_use]
    pub fn l2_bank_baseline() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            associativity: 16,
            block_bytes: 64,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.block_bytes * self.associativity as u64)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when a dimension is zero, the
    /// capacity is not divisible into whole sets, or the set count is not a
    /// power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.size_bytes == 0 || self.associativity == 0 || self.block_bytes == 0 {
            return Err("cache dimensions must be non-zero".to_owned());
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(format!(
                "block size {} must be a power of two",
                self.block_bytes
            ));
        }
        if !self
            .size_bytes
            .is_multiple_of(self.block_bytes * self.associativity as u64)
        {
            return Err("capacity must divide evenly into sets".to_owned());
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the block was present.
    pub hit: bool,
    /// Block-aligned address of a dirty block evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// Event counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty blocks written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in 0.0–1.0 (0 when no accesses were made).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use cloudmc_cpu::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1_baseline());
/// assert!(!l1.access(0x1000, false).hit); // cold miss
/// assert!(l1.access(0x1000, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        // simlint: allow(panic) documented constructor contract: config must validate
        config.validate().expect("invalid cache configuration");
        let sets = config.sets() as usize;
        Self {
            config,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        last_use: 0
                    };
                    config.associativity
                ];
                sets
            ],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.config.block_bytes;
        let set = (block % self.config.sets()) as usize;
        let tag = block / self.config.sets();
        (set, tag)
    }

    /// Whether the block containing `addr` is resident (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs a load (`is_write == false`) or store (`is_write == true`) to
    /// `addr`, allocating the block on a miss and returning any dirty block
    /// evicted in the process.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let (set, tag) = self.index_and_tag(addr);
        let sets_count = self.config.sets();
        let block_bytes = self.config.block_bytes;
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        // Choose a victim: an invalid way if possible, else the LRU way.
        let victim_idx = lines.iter().position(|l| !l.valid).unwrap_or_else(|| {
            lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                // simlint: allow(panic) CacheConfig::validate rejects zero associativity
                .expect("associativity is non-zero")
        });
        let victim = lines[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some((victim.tag * sets_count + set as u64) * block_bytes)
        } else {
            None
        };
        lines[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Serializes the cache's mutable state — every line plus the counters
    /// and the LRU clock (checkpoint support). Geometry is config-derived
    /// and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        for set in &self.sets {
            for line in set {
                w.u64(line.tag);
                w.bool(line.valid);
                w.bool(line.dirty);
                w.u64(line.last_use);
            }
        }
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.writebacks);
        w.u64(self.tick);
    }

    /// Restores the cache's mutable state from a checkpoint. The cache must
    /// have been built with the same geometry as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an
    /// impossible flag byte.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        for set in &mut self.sets {
            for line in set {
                line.tag = r.u64()?;
                line.valid = r.bool()?;
                line.dirty = r.bool()?;
                line.last_use = r.u64()?;
            }
        }
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.writebacks = r.u64()?;
        self.tick = r.u64()?;
        Ok(())
    }

    /// Invalidates the block containing `addr`, returning `true` if the block
    /// was present and dirty (i.e. a writeback is required).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return std::mem::take(&mut line.dirty);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 4 sets x 2 ways x 64B = 512B
        CacheConfig {
            size_bytes: 512,
            associativity: 2,
            block_bytes: 64,
        }
    }

    #[test]
    fn baseline_configs_validate() {
        CacheConfig::l1_baseline().validate().unwrap();
        CacheConfig::l2_bank_baseline().validate().unwrap();
        assert_eq!(CacheConfig::l1_baseline().sets(), 256);
        assert_eq!(CacheConfig::l2_bank_baseline().sets(), 1024);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = tiny();
        c.block_bytes = 48;
        assert!(c.validate().is_err());
        c = tiny();
        c.size_bytes = 0;
        assert!(c.validate().is_err());
        c = tiny();
        c.size_bytes = 576; // 4.5 sets
        assert!(c.validate().is_err());
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(tiny());
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same block, different offset");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::new(tiny());
        // Three blocks mapping to the same set (set stride = 4 blocks = 256B).
        let a = 0x000;
        let b = 0x100;
        let d = 0x200;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = Cache::new(tiny());
        let a = 0x000;
        let b = 0x100;
        let d = 0x200;
        c.access(a, true); // dirty
        c.access(b, false);
        let evict = c.access(d, false); // evicts a (LRU), which is dirty
        assert_eq!(evict.writeback, Some(a));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(tiny());
        c.access(0x000, false);
        c.access(0x100, false);
        let evict = c.access(0x200, false);
        assert_eq!(evict.writeback, None);
    }

    #[test]
    fn store_hit_marks_block_dirty() {
        let mut c = Cache::new(tiny());
        c.access(0x000, false);
        c.access(0x000, true); // store hit dirties the block
        c.access(0x100, false);
        let evict = c.access(0x200, false);
        assert_eq!(evict.writeback, Some(0x000));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = Cache::new(tiny());
        c.access(0x040, true);
        assert!(c.invalidate(0x040));
        assert!(!c.contains(0x040));
        assert!(!c.invalidate(0x040));
        c.access(0x080, false);
        assert!(!c.invalidate(0x080));
    }

    #[test]
    fn miss_ratio_reflects_stream() {
        let mut c = Cache::new(tiny());
        for i in 0..8u64 {
            c.access(i * 64, false);
        }
        for i in 0..8u64 {
            c.access(i * 64, false);
        }
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(c.stats().accesses(), 16);
    }
}
