//! Miss Status Holding Registers: track outstanding cache misses and merge
//! secondary misses to the same block.

/// Result of registering a miss with the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: the miss must be sent down the hierarchy.
    Allocated,
    /// An entry for the same block already exists: the miss is merged and no
    /// new downstream request is needed.
    Merged,
    /// The MSHR file is full: the requester must stall and retry.
    Full,
}

/// A fixed-capacity MSHR file keyed by block address.
///
/// # Examples
///
/// ```
/// use cloudmc_cpu::{Mshr, MshrOutcome};
///
/// let mut mshr = Mshr::new(2, 64);
/// assert_eq!(mshr.allocate(0x1000), MshrOutcome::Allocated);
/// assert_eq!(mshr.allocate(0x1010), MshrOutcome::Merged); // same block
/// assert_eq!(mshr.allocate(0x2000), MshrOutcome::Allocated);
/// assert_eq!(mshr.allocate(0x3000), MshrOutcome::Full);
/// assert_eq!(mshr.complete(0x1000), 2); // two merged requesters woken
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    capacity: usize,
    // simlint: allow(snapshot-coverage) config-derived and immutable; restore rebuilds it from the same config
    block_bytes: u64,
    /// (block address, merged requester count)
    entries: Vec<(u64, u32)>,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries tracking blocks of
    /// `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block_bytes` is not a power of two.
    #[must_use]
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            capacity,
            block_bytes,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn block(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// Number of outstanding (primary) misses.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file has no free entry.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether a miss for the block containing `addr` is outstanding.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block(addr);
        self.entries.iter().any(|&(b, _)| b == block)
    }

    /// Registers a miss for `addr`.
    pub fn allocate(&mut self, addr: u64) -> MshrOutcome {
        let block = self.block(addr);
        if let Some(entry) = self.entries.iter_mut().find(|(b, _)| *b == block) {
            entry.1 += 1;
            return MshrOutcome::Merged;
        }
        if self.is_full() {
            return MshrOutcome::Full;
        }
        self.entries.push((block, 1));
        MshrOutcome::Allocated
    }

    /// Serializes the MSHR file's entries (checkpoint support). Capacity and
    /// block size are config-derived and not serialized.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.usize(self.entries.len());
        for &(block, waiters) in &self.entries {
            w.u64(block);
            w.u32(waiters);
        }
    }

    /// Restores the MSHR file's entries from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an entry
    /// count exceeding the configured capacity.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let count = r.usize()?;
        if count > self.capacity {
            return Err(r.bad_value(format!(
                "{count} MSHR entries exceed capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..count {
            let block = r.u64()?;
            let waiters = r.u32()?;
            self.entries.push((block, waiters));
        }
        Ok(())
    }

    /// Completes the outstanding miss for the block containing `addr`,
    /// returning how many merged requesters were waiting on it (0 if the
    /// block was not outstanding).
    pub fn complete(&mut self, addr: u64) -> u32 {
        let block = self.block(addr);
        if let Some(pos) = self.entries.iter().position(|&(b, _)| b == block) {
            self.entries.swap_remove(pos).1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_and_complete() {
        let mut m = Mshr::new(4, 64);
        assert!(m.is_empty());
        assert_eq!(m.allocate(0x100), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x120), MshrOutcome::Merged);
        assert_eq!(m.allocate(0x140), MshrOutcome::Allocated);
        assert_eq!(m.outstanding(), 2);
        assert!(m.contains(0x13f));
        assert_eq!(m.complete(0x100), 2);
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.complete(0x100), 0, "already completed");
    }

    #[test]
    fn full_file_rejects_new_blocks_but_merges_existing() {
        let mut m = Mshr::new(2, 64);
        m.allocate(0x000);
        m.allocate(0x040);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x080), MshrOutcome::Full);
        assert_eq!(m.allocate(0x000), MshrOutcome::Merged);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = Mshr::new(0, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_panics() {
        let _ = Mshr::new(4, 48);
    }
}
