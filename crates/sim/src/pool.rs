//! Persistent worker pool for ticking backend shards in parallel.
//!
//! The block-interleaved controller shards share no state, so their due DRAM
//! ticks can run concurrently. Rather than lock-protect the controllers, the
//! pool moves them *by value*: the backend checks a due shard's
//! [`MemoryController`] out into a [`ShardJob`], a worker ticks it, and the
//! controller comes home inside a [`ShardResult`] — no `Mutex`, no `unsafe`,
//! just `std::sync::mpsc` ownership transfer.
//!
//! Determinism is by construction:
//!
//! * shard `i` is always served by worker `i % workers`, so per-shard work is
//!   totally ordered regardless of scheduling;
//! * the backend collects *every* dispatched result before the DRAM tick ends
//!   (a barrier at the 2:5 clock-crossing boundary) and merges completions in
//!   ascending shard order — exactly the order the sequential loop produces.
//!
//! The pool is engaged only when `SystemConfig::threads > 1`; with the
//! channel round-trip costing far more than a shard tick, it pays off only
//! when many shards do real work on as many physical cores.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

use cloudmc_dram::DramCycles;
use cloudmc_memctrl::{CompletedRequest, MemoryController};

/// One due shard tick: the controller travels to the worker by value.
pub(crate) struct ShardJob {
    pub shard: usize,
    pub mc: MemoryController,
    pub now: DramCycles,
}

/// The controller coming home after its tick, with everything the backend
/// needs to update its cached readiness bound without touching the shard.
pub(crate) struct ShardResult {
    pub shard: usize,
    pub mc: MemoryController,
    pub done: Vec<CompletedRequest>,
    pub next_due: DramCycles,
}

/// What a worker sends home for one job: the finished result, or the panic
/// message of a tick that blew up. Capturing the panic in the worker and
/// re-raising it in [`WorkerPool::collect`] turns what would otherwise be a
/// coordinator deadlock (a result that never arrives) into an immediate,
/// attributed failure of the owning run — e.g. one errored sweep cell —
/// while the rest of the pool keeps serving.
// The large variant IS the common case (every healthy job); boxing it would
// buy a smaller rare-panic variant at the cost of an allocation per tick.
#[allow(clippy::large_enum_variant)]
enum ShardOutcome {
    Done(ShardResult),
    Panicked { shard: usize, message: String },
}

/// Fixed set of worker threads, one job channel each plus a shared result
/// channel. Dropping the pool closes the job channels and joins the workers.
pub(crate) struct WorkerPool {
    senders: Vec<mpsc::Sender<ShardJob>>,
    results: mpsc::Receiver<ShardOutcome>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) running the real shard tick.
    pub fn new(workers: usize) -> Self {
        Self::with_runner(workers, run_job)
    }

    /// Spawns `workers` threads running `run` per job. Split out from
    /// [`WorkerPool::new`] so tests can inject a job body that panics on
    /// demand.
    fn with_runner<F>(workers: usize, run: F) -> Self
    where
        F: Fn(ShardJob) -> ShardResult + Clone + Send + 'static,
    {
        let workers = workers.max(1);
        let (result_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let result_tx = result_tx.clone();
            let run = run.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cloudmc-shard-{i}"))
                .spawn(move || worker_loop(&rx, &result_tx, &run))
                // simlint: allow(panic) thread-spawn failure at startup is unrecoverable
                .expect("spawn backend worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            results,
            handles,
        }
    }

    /// Hands a job to its shard's fixed worker (`shard % workers`).
    pub fn dispatch(&self, job: ShardJob) {
        let worker = job.shard % self.senders.len();
        self.senders[worker]
            .send(job)
            // simlint: allow(panic) a dead worker already poisoned the run; propagate
            .expect("backend worker thread alive");
    }

    /// Receives one finished job, in whatever order workers complete. The
    /// caller must call this exactly once per dispatched job before the tick
    /// ends, then sort the results by shard index.
    ///
    /// # Panics
    ///
    /// Re-raises, with the shard attributed, the panic of a worker whose job
    /// blew up — the job's controller is lost with the unwound stack, so the
    /// owning run cannot continue; the remaining workers are unaffected.
    pub fn collect(&self) -> ShardResult {
        match self.results.recv() {
            Ok(ShardOutcome::Done(result)) => result,
            Ok(ShardOutcome::Panicked { shard, message }) => {
                // simlint: allow(panic) documented: re-raises the worker panic with shard attribution
                panic!("backend worker panicked ticking shard {shard}: {message}")
            }
            // simlint: allow(panic) a dead worker already poisoned the run; propagate
            Err(_) => panic!("backend worker thread alive"),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// One job, sequential semantics: tick the shard and compute its next
/// readiness bound exactly as the sequential path would
/// ([`crate::backend::bound_after_tick`]).
fn run_job(mut job: ShardJob) -> ShardResult {
    let mut done = Vec::new();
    let worked = job.mc.tick(job.now, &mut done);
    let next_due = crate::backend::bound_after_tick(&job.mc, worked, job.now);
    ShardResult {
        shard: job.shard,
        mc: job.mc,
        done,
        next_due,
    }
}

/// Worker body: run each job with the panic boundary around it, send the
/// outcome home, and retire after reporting a panic (the controller that
/// job owned is gone, so this worker's shards cannot be served again).
fn worker_loop<F>(jobs: &mpsc::Receiver<ShardJob>, results: &mpsc::Sender<ShardOutcome>, run: &F)
where
    F: Fn(ShardJob) -> ShardResult,
{
    while let Ok(job) = jobs.recv() {
        let shard = job.shard;
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(job))) {
            Ok(result) => ShardOutcome::Done(result),
            Err(payload) => ShardOutcome::Panicked {
                shard,
                message: panic_message(payload.as_ref()),
            },
        };
        let retire = matches!(outcome, ShardOutcome::Panicked { .. });
        if results.send(outcome).is_err() || retire {
            break;
        }
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or `String`
/// in practice; anything else is reported opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use cloudmc_memctrl::{AccessKind, MemoryRequest};
    use cloudmc_workloads::Workload;

    fn controller() -> MemoryController {
        let cfg = SystemConfig::baseline(Workload::TpchQ6);
        MemoryController::new(cfg.effective_mc()).unwrap()
    }

    #[test]
    fn round_trips_a_controller_through_a_worker() {
        let pool = WorkerPool::new(2);
        let mut mc = controller();
        mc.enqueue(MemoryRequest::new(0, AccessKind::Read, 0x40, 0, 0), 0)
            .unwrap();
        let mut now = 0;
        let mut done = Vec::new();
        while done.is_empty() && now < 500 {
            pool.dispatch(ShardJob { shard: 0, mc, now });
            let result = pool.collect();
            assert_eq!(result.shard, 0);
            assert!(result.next_due > now, "bound must advance past {now}");
            mc = result.mc;
            done.extend(result.done);
            now += 1;
        }
        assert_eq!(done.len(), 1, "request must complete through the pool");
        assert_eq!(mc.stats().reads_completed, 1);
    }

    #[test]
    fn threaded_bounds_match_sequential_bounds() {
        let pool = WorkerPool::new(3);
        let mut seq = controller();
        let mut thr = controller();
        for i in 0..8u64 {
            let req = MemoryRequest::new(i, AccessKind::Read, i * 0x2000, 0, 0);
            seq.enqueue(req, 0).unwrap();
            thr.enqueue(req, 0).unwrap();
        }
        let mut seq_done = Vec::new();
        for now in 0..400u64 {
            let worked = seq.tick(now, &mut seq_done);
            let seq_due = crate::backend::bound_after_tick(&seq, worked, now);
            pool.dispatch(ShardJob {
                shard: 1,
                mc: thr,
                now,
            });
            let result = pool.collect();
            thr = result.mc;
            assert_eq!(result.next_due, seq_due, "bound diverged at cycle {now}");
        }
        assert_eq!(seq.stats().reads_completed, thr.stats().reads_completed);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(4);
        pool.dispatch(ShardJob {
            shard: 2,
            mc: controller(),
            now: 0,
        });
        let _ = pool.collect();
        drop(pool); // must not hang or panic
    }

    /// A pool whose runner panics whenever the job's cycle is the poison
    /// value, standing in for a shard tick blowing up mid-run.
    fn poisoned_pool(workers: usize) -> WorkerPool {
        WorkerPool::with_runner(workers, |job| {
            assert_ne!(job.now, 13, "poisoned cycle reached shard {}", job.shard);
            run_job(job)
        })
    }

    #[test]
    #[should_panic(expected = "backend worker panicked ticking shard 1")]
    fn worker_panic_propagates_to_collect() {
        let pool = poisoned_pool(2);
        pool.dispatch(ShardJob {
            shard: 1,
            mc: controller(),
            now: 13,
        });
        // The panic must surface here, attributed to the shard, instead of
        // deadlocking on a result that will never arrive.
        let _ = pool.collect();
    }

    #[test]
    fn pool_survives_one_worker_panicking_and_shuts_down_cleanly() {
        let pool = poisoned_pool(2);
        pool.dispatch(ShardJob {
            shard: 1,
            mc: controller(),
            now: 13,
        });
        let propagated = catch_unwind(AssertUnwindSafe(|| pool.collect()));
        assert!(
            propagated.is_err(),
            "collect must re-raise the worker panic"
        );
        // The other worker is unaffected: shard 0 still round-trips.
        pool.dispatch(ShardJob {
            shard: 0,
            mc: controller(),
            now: 0,
        });
        assert_eq!(pool.collect().shard, 0);
        drop(pool); // the dead worker's join must not hang the teardown
    }
}
