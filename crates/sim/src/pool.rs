//! Persistent worker pool for ticking backend shards in parallel.
//!
//! The block-interleaved controller shards share no state, so their due DRAM
//! ticks can run concurrently. Rather than lock-protect the controllers, the
//! pool moves them *by value*: the backend checks a due shard's
//! [`MemoryController`] out into a [`ShardJob`], a worker ticks it, and the
//! controller comes home inside a [`ShardResult`] — no `Mutex`, no `unsafe`,
//! just `std::sync::mpsc` ownership transfer.
//!
//! Determinism is by construction:
//!
//! * shard `i` is always served by worker `i % workers`, so per-shard work is
//!   totally ordered regardless of scheduling;
//! * the backend collects *every* dispatched result before the DRAM tick ends
//!   (a barrier at the 2:5 clock-crossing boundary) and merges completions in
//!   ascending shard order — exactly the order the sequential loop produces.
//!
//! The pool is engaged only when `SystemConfig::threads > 1`; with the
//! channel round-trip costing far more than a shard tick, it pays off only
//! when many shards do real work on as many physical cores.

use std::sync::mpsc;
use std::thread::JoinHandle;

use cloudmc_dram::DramCycles;
use cloudmc_memctrl::{CompletedRequest, MemoryController};

/// One due shard tick: the controller travels to the worker by value.
pub(crate) struct ShardJob {
    pub shard: usize,
    pub mc: MemoryController,
    pub now: DramCycles,
}

/// The controller coming home after its tick, with everything the backend
/// needs to update its cached readiness bound without touching the shard.
pub(crate) struct ShardResult {
    pub shard: usize,
    pub mc: MemoryController,
    pub done: Vec<CompletedRequest>,
    pub next_due: DramCycles,
}

/// Fixed set of worker threads, one job channel each plus a shared result
/// channel. Dropping the pool closes the job channels and joins the workers.
pub(crate) struct WorkerPool {
    senders: Vec<mpsc::Sender<ShardJob>>,
    results: mpsc::Receiver<ShardResult>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (result_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let result_tx = result_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cloudmc-shard-{i}"))
                .spawn(move || worker_loop(&rx, &result_tx))
                .expect("spawn backend worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            results,
            handles,
        }
    }

    /// Hands a job to its shard's fixed worker (`shard % workers`).
    pub fn dispatch(&self, job: ShardJob) {
        let worker = job.shard % self.senders.len();
        self.senders[worker]
            .send(job)
            .expect("backend worker thread alive");
    }

    /// Receives one finished job, in whatever order workers complete. The
    /// caller must call this exactly once per dispatched job before the tick
    /// ends, then sort the results by shard index.
    pub fn collect(&self) -> ShardResult {
        self.results.recv().expect("backend worker thread alive")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// Worker body: tick the shard, compute its next readiness bound exactly as
/// the sequential path would ([`crate::backend::bound_after_tick`]), and send
/// everything home.
fn worker_loop(jobs: &mpsc::Receiver<ShardJob>, results: &mpsc::Sender<ShardResult>) {
    while let Ok(mut job) = jobs.recv() {
        let mut done = Vec::new();
        let worked = job.mc.tick(job.now, &mut done);
        let next_due = crate::backend::bound_after_tick(&job.mc, worked, job.now);
        let result = ShardResult {
            shard: job.shard,
            mc: job.mc,
            done,
            next_due,
        };
        if results.send(result).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use cloudmc_memctrl::{AccessKind, MemoryRequest};
    use cloudmc_workloads::Workload;

    fn controller() -> MemoryController {
        let cfg = SystemConfig::baseline(Workload::TpchQ6);
        MemoryController::new(cfg.effective_mc()).unwrap()
    }

    #[test]
    fn round_trips_a_controller_through_a_worker() {
        let pool = WorkerPool::new(2);
        let mut mc = controller();
        mc.enqueue(MemoryRequest::new(0, AccessKind::Read, 0x40, 0, 0), 0)
            .unwrap();
        let mut now = 0;
        let mut done = Vec::new();
        while done.is_empty() && now < 500 {
            pool.dispatch(ShardJob { shard: 0, mc, now });
            let result = pool.collect();
            assert_eq!(result.shard, 0);
            assert!(result.next_due > now, "bound must advance past {now}");
            mc = result.mc;
            done.extend(result.done);
            now += 1;
        }
        assert_eq!(done.len(), 1, "request must complete through the pool");
        assert_eq!(mc.stats().reads_completed, 1);
    }

    #[test]
    fn threaded_bounds_match_sequential_bounds() {
        let pool = WorkerPool::new(3);
        let mut seq = controller();
        let mut thr = controller();
        for i in 0..8u64 {
            let req = MemoryRequest::new(i, AccessKind::Read, i * 0x2000, 0, 0);
            seq.enqueue(req, 0).unwrap();
            thr.enqueue(req, 0).unwrap();
        }
        let mut seq_done = Vec::new();
        for now in 0..400u64 {
            let worked = seq.tick(now, &mut seq_done);
            let seq_due = crate::backend::bound_after_tick(&seq, worked, now);
            pool.dispatch(ShardJob {
                shard: 1,
                mc: thr,
                now,
            });
            let result = pool.collect();
            thr = result.mc;
            assert_eq!(result.next_due, seq_due, "bound diverged at cycle {now}");
        }
        assert_eq!(seq.stats().reads_completed, thr.stats().reads_completed);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(4);
        pool.dispatch(ShardJob {
            shard: 2,
            mc: controller(),
            now: 0,
        });
        let _ = pool.collect();
        drop(pool); // must not hang or panic
    }
}
