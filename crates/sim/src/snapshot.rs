//! Whole-system checkpoints: an opaque byte image of a [`System`]'s mutable
//! state, restorable onto a freshly built system under the *same*
//! configuration.
//!
//! A snapshot captures every bit of architectural and micro-architectural
//! state a run accumulates — core pipelines and caches, workload-generator
//! RNG streams, DMA credit, controller queues, scheduler/page/power policy
//! state, DRAM bank timing and power states, the fault-injection ledger, and
//! all statistics counters — but none of the state that is a pure function of
//! the configuration (geometries, timing tables, worker pools). Restoring
//! therefore means: build a fresh [`System`] from the configuration, then
//! overlay the saved mutable state. The restored system continues
//! *bit-identically* to the original: running it to the end of the
//! measurement produces exactly the [`SimStats`](crate::SimStats) the
//! uninterrupted run would have produced, on any kernel and thread count.
//!
//! The wire format (little-endian throughout) is a versioned envelope from
//! the `cloudmc-snap` crate:
//!
//! ```text
//! magic "CMCSNAP1" | format version u32 | config fingerprint u64
//!   | body (tagged sections) | FNV-1a checksum u64 over all prior bytes
//! ```
//!
//! The config fingerprint is an FNV-1a hash of the [`SystemConfig`]'s `Debug`
//! rendering; restoring under any differing configuration fails with a typed
//! [`SimError::Snapshot`] before a single body byte is parsed, as do
//! truncation and corruption (checksum first, then per-field bounds checks
//! naming the failing section and byte offset). Snapshots are not portable
//! across format versions.
//!
//! Systems with attached trace taps ([`WorkloadSource::Trace`] replay or
//! [`SystemConfig::trace_record`] capture) or dynamically dispatched (boxed)
//! scheduler/policy plugins cannot be snapshotted; both are reported as
//! typed errors, never silently dropped state.
//!
//! [`System`]: crate::System
//! [`SystemConfig`]: crate::SystemConfig
//! [`SystemConfig::trace_record`]: crate::SystemConfig::trace_record
//! [`SimError::Snapshot`]: crate::SimError::Snapshot
//! [`WorkloadSource::Trace`]: cloudmc_workloads::WorkloadSource::Trace

use std::path::Path;

use cloudmc_snap::fnv1a;

use crate::config::SystemConfig;
use crate::error::SimError;

/// An opaque, self-validating byte image of a [`System`](crate::System)'s
/// mutable state at one instant, produced by
/// [`System::snapshot`](crate::System::snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw snapshot bytes (e.g. read from storage). Validation happens
    /// on restore, not here.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The raw snapshot bytes (envelope included).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the raw bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the snapshot image in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty (an empty image is never a valid snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes the snapshot image to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] if the file cannot be written.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), SimError> {
        let path = path.as_ref();
        // simlint: allow(io-access) caller-directed persistence API, typed error path
        std::fs::write(path, &self.bytes)
            .map_err(|e| SimError::Snapshot(format!("writing {}: {e}", path.display())))
    }

    /// Reads a snapshot image from `path`. Validation happens on restore.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] if the file cannot be read.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, SimError> {
        let path = path.as_ref();
        // simlint: allow(io-access) caller-directed persistence API, typed error path
        let bytes = std::fs::read(path)
            .map_err(|e| SimError::Snapshot(format!("reading {}: {e}", path.display())))?;
        Ok(Self { bytes })
    }
}

/// The configuration fingerprint embedded in every snapshot: an FNV-1a hash
/// of the configuration's `Debug` rendering. Two configurations that differ
/// in *any* field — including ones that only affect performance, like the
/// kernel choice — fingerprint differently, which is deliberately
/// conservative: a snapshot is only ever restored onto the exact
/// configuration that produced it.
#[must_use]
pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}
