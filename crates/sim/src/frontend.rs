//! The CPU-side frontend: in-order cores, their workload streams, the shared
//! L2 and the DMA traffic injector.
//!
//! The frontend owns everything clocked by the 2 GHz core clock. Each
//! [`Tick::tick`] call advances every core by one CPU cycle, routes the L1
//! refills and write-backs they produce through the shared L2, and injects
//! this cycle's DMA traffic; whatever must leave the chip is reported as
//! [`FrontendEvent`]s for the kernel to hand to the memory
//! [`backend`](crate::backend). The frontend never sees DRAM cycles — the
//! clock-ratio bookkeeping (`DRAM_CYCLES_PER_5_CPU_CYCLES`) lives entirely in
//! [`kernel::ClockCrossing`](crate::kernel::ClockCrossing).
//!
//! Returning data to a core goes the other way: the kernel calls
//! [`Frontend::fill`] once a block's delivery cycle arrives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_cpu::{CacheStats, CoreStats, InOrderCore, SharedL2};
use cloudmc_workloads::WorkloadStreams;

use crate::config::SystemConfig;
use crate::kernel::Tick;

/// Off-chip traffic (or an L2 hit in flight) produced by one frontend cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendEvent {
    /// A demand access that hit in the shared L2; the data must be delivered
    /// to `core` after `ready_in` further CPU cycles.
    L2Hit {
        /// Requesting core.
        core: usize,
        /// Block address.
        addr: u64,
        /// L2 access latency in CPU cycles.
        ready_in: u64,
    },
    /// A demand read that missed the L2 and must go to memory.
    Read {
        /// Requesting core.
        core: usize,
        /// Block address.
        addr: u64,
    },
    /// A write leaving the chip (L2 victim write-back or DMA write).
    Write {
        /// Core the write is attributed to.
        core: usize,
        /// Block address.
        addr: u64,
        /// Whether a DMA engine (not a core) produced the write.
        dma: bool,
    },
    /// A read issued by a DMA engine (no core is stalled on it).
    DmaRead {
        /// Core the read is attributed to for fairness accounting.
        core: usize,
        /// Block address.
        addr: u64,
    },
}

/// Cores, workload streams, shared L2 and the DMA injector.
#[derive(Debug)]
pub struct Frontend {
    cores: Vec<InOrderCore>,
    streams: WorkloadStreams,
    l2: SharedL2,
    rng: StdRng,
    dma_per_kcycle: f64,
    dma_accumulator: f64,
    dma_cursor: u64,
}

impl Frontend {
    /// Builds the frontend described by `cfg`.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        let streams = WorkloadStreams::from_spec(cfg.workload, cfg.seed);
        let cores = (0..cfg.workload.cores)
            .map(|i| InOrderCore::new(i, cfg.core))
            .collect();
        Self {
            cores,
            streams,
            l2: SharedL2::new(cfg.l2),
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD3A),
            dma_per_kcycle: cfg.workload.dma_per_kcycle,
            dma_accumulator: 0.0,
            dma_cursor: 0,
        }
    }

    /// Functionally installs each core's instruction working set and hot data
    /// region into the L1s and the shared L2 (no timing is modelled).
    ///
    /// This mirrors the effect of the paper's one-billion-instruction warm-up:
    /// measurement starts with the code resident in the LLC so that the
    /// off-chip traffic seen by the memory controller is the steady-state
    /// data-miss stream, not a cold-start transient.
    pub fn prewarm(&mut self) {
        let block = 64u64;
        for core_idx in 0..self.cores.len() {
            let (code_base, code_size) = self.streams.stream(core_idx).code_region();
            for offset in (0..code_size).step_by(block as usize) {
                let addr = code_base + offset;
                self.cores[core_idx].prewarm(addr, true);
                self.l2.access(addr, false);
            }
            let (hot_base, hot_size) = self.streams.stream(core_idx).hot_region();
            for offset in (0..hot_size).step_by(block as usize) {
                let addr = hot_base + offset;
                self.cores[core_idx].prewarm(addr, false);
                self.l2.access(addr, false);
            }
        }
    }

    /// Delivers a block to a core (memory fill or delayed L2 hit).
    pub fn fill(&mut self, core: usize, addr: u64) {
        self.cores[core].fill(addr);
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Committed user instructions per core so far.
    #[must_use]
    pub fn committed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(InOrderCore::committed).collect()
    }

    /// Performance counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> &CoreStats {
        self.cores[core].stats()
    }

    /// L1 instruction-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1i_stats()
    }

    /// L1 data-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1d_stats()
    }

    /// Aggregated shared-L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Routes one L1-level request (refill or write-back) through the L2.
    fn handle_core_request(
        &mut self,
        core: usize,
        addr: u64,
        is_writeback: bool,
        events: &mut Vec<FrontendEvent>,
    ) {
        let outcome = self.l2.access(addr, is_writeback);
        if let Some(victim) = outcome.writeback {
            events.push(FrontendEvent::Write {
                core,
                addr: victim,
                dma: false,
            });
        }
        if is_writeback {
            // L1 write-backs terminate at the L2 (write-allocate without
            // fetch); any capacity effect was handled via the victim above.
            return;
        }
        if outcome.hit {
            events.push(FrontendEvent::L2Hit {
                core,
                addr,
                ready_in: outcome.latency,
            });
        } else {
            events.push(FrontendEvent::Read { core, addr });
        }
    }

    fn inject_dma(&mut self, events: &mut Vec<FrontendEvent>) {
        if self.dma_per_kcycle <= 0.0 {
            return;
        }
        self.dma_accumulator += self.dma_per_kcycle / 1000.0;
        while self.dma_accumulator >= 1.0 {
            self.dma_accumulator -= 1.0;
            let core = self.rng.gen_range(0..self.cores.len());
            // DMA engines stream sequentially through I/O buffers in the
            // shared region: mostly the next cache block, occasionally a jump
            // to a fresh buffer. This gives DMA traffic the high row-buffer
            // locality the paper observes for Web Frontend's extra accesses.
            if self.dma_cursor == 0 || self.rng.gen_bool(1.0 / 24.0) {
                let base = 0x0400_0000u64;
                self.dma_cursor = base + self.rng.gen_range(0..0x0100_0000u64 / 8192) * 8192;
            } else {
                self.dma_cursor += 64;
            }
            let addr = self.dma_cursor;
            if self.rng.gen_bool(0.5) {
                events.push(FrontendEvent::DmaRead { core, addr });
            } else {
                events.push(FrontendEvent::Write {
                    core,
                    addr,
                    dma: true,
                });
            }
        }
    }
}

impl Tick for Frontend {
    type Event = FrontendEvent;

    /// Advances every core by one CPU cycle and injects DMA traffic,
    /// reporting everything that must leave the frontend this cycle.
    fn tick(&mut self, _now: u64, events: &mut Vec<FrontendEvent>) {
        for core_idx in 0..self.cores.len() {
            let requests = {
                let stream = self.streams.stream_mut(core_idx);
                let mut source = || stream.next_op();
                self.cores[core_idx].tick(&mut source)
            };
            for request in requests {
                self.handle_core_request(core_idx, request.addr, request.write, events);
            }
        }
        self.inject_dma(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn frontend(workload: Workload) -> Frontend {
        Frontend::new(&SystemConfig::baseline(workload))
    }

    #[test]
    fn cold_frontend_produces_memory_reads() {
        let mut fe = frontend(Workload::DataServing);
        let mut events = Vec::new();
        for cycle in 0..2_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FrontendEvent::Read { .. })),
            "a cold 16-core frontend must miss off-chip"
        );
    }

    #[test]
    fn prewarm_seeds_the_caches() {
        let mut cold = frontend(Workload::WebSearch);
        let mut warm = frontend(Workload::WebSearch);
        warm.prewarm();
        let run = |fe: &mut Frontend| {
            let mut events = Vec::new();
            for cycle in 0..3_000 {
                fe.tick(cycle, &mut events);
            }
            // Feed every miss straight back so the cores keep running.
            let mut reads = 0usize;
            for e in &events {
                if let FrontendEvent::Read { core, addr } = *e {
                    reads += 1;
                    fe.fill(core, addr);
                }
            }
            reads
        };
        let cold_reads = run(&mut cold);
        let warm_reads = run(&mut warm);
        assert!(
            warm_reads < cold_reads,
            "prewarmed frontend should miss less ({warm_reads} vs {cold_reads})"
        );
    }

    #[test]
    fn web_frontend_injects_dma_traffic() {
        let mut fe = frontend(Workload::WebFrontend);
        let mut events = Vec::new();
        for cycle in 0..20_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(events.iter().any(|e| matches!(
            e,
            FrontendEvent::DmaRead { .. } | FrontendEvent::Write { dma: true, .. }
        )));
    }
}
