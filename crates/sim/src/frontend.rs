//! The CPU-side frontend: in-order cores, their workload streams, the shared
//! L2 and the DMA traffic injector.
//!
//! The frontend owns everything clocked by the 2 GHz core clock and supports
//! two drive modes. The eager mode advances every core together: each
//! [`Tick::tick`] call moves every core by one CPU cycle (with
//! [`Frontend::skip_cycles`] bulk-skipping provably eventless windows), routes
//! the L1 refills and write-backs they produce through the shared L2, and
//! injects this cycle's DMA traffic. The lazy mode lets each core fall behind
//! the kernel clock individually: every core carries its own position and its
//! next *action* cycle (the next cycle its tick consumes an op rather than
//! just burning runway), [`Frontend::advance_to`] catches up exactly the due
//! cores, and [`Frontend::fill_at`] catches a blocked core up to the fill's
//! delivery cycle on demand. Both modes report whatever must leave the chip
//! as [`FrontendEvent`]s for the kernel to hand to the memory
//! [`backend`](crate::backend), and both consume ops in the same global
//! (cycle, core) order, so they produce bit-identical streams. The frontend
//! never sees DRAM cycles — the clock-ratio bookkeeping
//! (`DRAM_CYCLES_PER_5_CPU_CYCLES`) lives entirely in
//! [`kernel::ClockCrossing`](crate::kernel::ClockCrossing).
//!
//! Returning data to a core goes the other way: the kernel calls
//! [`Frontend::fill`] once a block's delivery cycle arrives.
//!
//! The frontend is also where the trace subsystem taps the op streams: with
//! [`SystemConfig::trace_record`] set, every op a core consumes is appended
//! to a [`TraceWriter`]; with [`WorkloadSource::Trace`], the synthetic
//! generators are bypassed and a streaming [`TraceStream`] supplies the
//! recorded ops instead.

// simlint: allow(io-access) trace capture/replay opens caller-named files by design
use std::fs::File;
use std::io::BufWriter;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_cpu::{CacheStats, CoreStats, InOrderCore, SharedL2};
use cloudmc_workloads::{
    TenantId, TraceRecord, TraceStream, TraceWriter, WorkloadSource, WorkloadStreams,
};

use crate::config::SystemConfig;
use crate::kernel::Tick;

/// Off-chip traffic (or an L2 hit in flight) produced by one frontend cycle.
///
/// Off-chip events carry the issuing tenant's id (minted by the workload
/// mix, carried by the core) so the memory backend can attribute every
/// request without consulting any side table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendEvent {
    /// A demand access that hit in the shared L2; the data must be delivered
    /// to `core` after `ready_in` further CPU cycles.
    L2Hit {
        /// Requesting core.
        core: usize,
        /// Block address.
        addr: u64,
        /// L2 access latency in CPU cycles.
        ready_in: u64,
    },
    /// A demand read that missed the L2 and must go to memory.
    Read {
        /// Requesting core.
        core: usize,
        /// Tenant the requesting core is bound to.
        tenant: TenantId,
        /// Block address.
        addr: u64,
    },
    /// A write leaving the chip (L2 victim write-back or DMA write).
    Write {
        /// Core the write is attributed to.
        core: usize,
        /// Tenant the write is attributed to.
        tenant: TenantId,
        /// Block address.
        addr: u64,
        /// Whether a DMA engine (not a core) produced the write.
        dma: bool,
    },
    /// A read issued by a DMA engine (no core is stalled on it).
    DmaRead {
        /// Core the read is attributed to for fairness accounting.
        core: usize,
        /// Tenant whose DMA engine issued the read.
        tenant: TenantId,
        /// Block address.
        addr: u64,
    },
}

/// Fixed-point scale of the DMA-rate accumulator: one DMA event per
/// `DMA_FP_ONE` accumulated units. Integer arithmetic makes accumulating
/// `n` cycles at once exactly equal to accumulating `n` times — the property
/// the kernel's fast-forward relies on (f64 addition is not associative).
const DMA_FP_ONE: u64 = 1 << 32;

/// One tenant's DMA/IO engine: a fixed-point rate accumulator plus the
/// sequential buffer cursor, attributed to cores of that tenant only.
#[derive(Debug)]
struct DmaInjector {
    tenant: TenantId,
    /// First core of the owning tenant's contiguous core group.
    core_lo: usize,
    /// Number of cores in the group.
    core_len: usize,
    /// DMA events accrued per CPU cycle, in `1/DMA_FP_ONE` units.
    rate_fp: u64,
    /// Accrued DMA credit, in `1/DMA_FP_ONE` units (always `< DMA_FP_ONE`
    /// right after a tick).
    acc_fp: u64,
    cursor: u64,
}

/// Resolves `path` for aliasing checks. Falls back to canonicalizing the
/// parent (a sink file may not exist yet) and, failing that, to the path as
/// given.
fn canonical_path(path: &std::path::Path) -> std::path::PathBuf {
    path.canonicalize()
        .unwrap_or_else(|_| match (path.parent(), path.file_name()) {
            (Some(parent), Some(name)) if !parent.as_os_str().is_empty() => parent
                .canonicalize()
                .map(|p| p.join(name))
                .unwrap_or_else(|_| path.to_path_buf()),
            _ => path.to_path_buf(),
        })
}

/// Cores, workload streams, shared L2 and the per-tenant DMA injectors.
#[derive(Debug)]
pub struct Frontend {
    cores: Vec<InOrderCore>,
    streams: WorkloadStreams,
    /// Trace replay supply; when set, cores consume it instead of `streams`
    /// (which is still built — the address layout it derives from the mix
    /// drives [`Frontend::prewarm`]).
    // simlint: allow(snapshot-coverage) trace I/O handle; snapshot() refuses systems holding one
    replay: Option<TraceStream>,
    /// Trace capture sink; every op any core consumes is appended.
    // simlint: allow(snapshot-coverage) trace I/O handle; snapshot() refuses systems holding one
    record: Option<TraceWriter<BufWriter<File>>>,
    /// First error the capture sink produced; recording stops at that point
    /// and the error surfaces from [`Frontend::finish_trace`].
    // simlint: allow(snapshot-coverage) latched trace-I/O error, meaningless across a restore
    record_error: Option<String>,
    /// First error the replay trace produced (I/O, parse, or a core index
    /// beyond the bound count); the affected cores idle on the exhaustion
    /// filler from then on and the error surfaces from
    /// [`Frontend::finish_trace`].
    // simlint: allow(snapshot-coverage) latched trace-I/O error, meaningless across a restore
    replay_error: Option<String>,
    l2: SharedL2,
    rng: StdRng,
    /// One injector per tenant with a non-zero DMA rate, in tenant order.
    dma: Vec<DmaInjector>,
    /// Lazy mode: per-core next unsimulated CPU cycle.
    positions: Vec<u64>,
    /// Lazy mode: per-core next action cycle (`u64::MAX` = blocked on
    /// memory, nothing to do until a fill arrives).
    next_action: Vec<u64>,
    /// Lazy mode: the DMA accumulators have accrued cycles `0..dma_pos`.
    dma_pos: u64,
}

impl Frontend {
    /// Builds the frontend described by `cfg`: one core per tenant core slot
    /// (tagged with its tenant id), the tenants' workload streams (or the
    /// replay trace of [`WorkloadSource::Trace`]), a DMA injector for every
    /// tenant that drives I/O traffic, and the capture sink of
    /// [`SystemConfig::trace_record`] if set.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the replay trace cannot be
    /// opened or the capture sink cannot be created.
    pub fn new(cfg: &SystemConfig) -> Result<Self, String> {
        let tenancy = cfg.tenancy();
        let streams = WorkloadStreams::from_mix(tenancy, cfg.seed);
        let cores: Vec<InOrderCore> = (0..tenancy.total_cores())
            .map(|i| InOrderCore::new(i, cfg.core).with_tenant(tenancy.tenant_of_core(i)))
            .collect();
        let replay = match &cfg.source {
            WorkloadSource::Synthetic => None,
            WorkloadSource::Trace(path) => {
                Some(TraceStream::open(path, cores.len()).map_err(|e| e.to_string())?)
            }
        };
        let record = match &cfg.trace_record {
            None => None,
            Some(path) => {
                // Refuse to truncate the replay input: `SystemConfig::validate`
                // compares the two paths lexically, but aliased spellings
                // (relative vs absolute, symlinks) only resolve on disk, and
                // `File::create` below would destroy the trace being read.
                if let WorkloadSource::Trace(replay_path) = &cfg.source {
                    if canonical_path(replay_path) == canonical_path(path) {
                        return Err(format!(
                            "trace_record `{}` aliases the replay source `{}`",
                            path.display(),
                            replay_path.display()
                        ));
                    }
                }
                let file = File::create(path)
                    .map_err(|e| format!("cannot create trace sink `{}`: {e}", path.display()))?;
                Some(TraceWriter::new(BufWriter::new(file)))
            }
        };
        let dma = tenancy
            .tenants()
            .enumerate()
            .filter_map(|(tenant, spec)| {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let rate_fp = (spec.workload.dma_per_kcycle.max(0.0) / 1000.0 * DMA_FP_ONE as f64)
                    .round() as u64;
                let range = tenancy.core_range(tenant);
                (rate_fp > 0).then_some(DmaInjector {
                    tenant,
                    core_lo: range.start,
                    core_len: range.len(),
                    rate_fp,
                    acc_fp: 0,
                    cursor: 0,
                })
            })
            .collect();
        let num_cores = cores.len();
        Ok(Self {
            cores,
            streams,
            replay,
            record,
            record_error: None,
            replay_error: None,
            l2: SharedL2::new(cfg.l2),
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD3A),
            dma,
            positions: vec![0; num_cores],
            next_action: vec![0; num_cores],
            dma_pos: 0,
        })
    }

    /// Whether the frontend replays a trace instead of generating ops.
    #[must_use]
    pub fn is_replaying(&self) -> bool {
        self.replay.is_some()
    }

    /// Records read off the replay trace so far (`None` when synthetic).
    #[must_use]
    pub fn replay_records_read(&self) -> Option<u64> {
        self.replay.as_ref().map(TraceStream::records_read)
    }

    /// Finishes the run's trace I/O: surfaces any replay error deferred
    /// mid-run, then flushes the capture sink (if any) and returns the
    /// number of records written (`Ok(None)` when the run was not
    /// recording).
    ///
    /// # Errors
    ///
    /// Returns the first replay read/parse error, the first capture write
    /// error, or the final capture flush error.
    pub fn finish_trace(&mut self) -> Result<Option<u64>, String> {
        if let Some(e) = self.replay_error.take() {
            self.record = None;
            return Err(format!("trace replay failed mid-run: {e}"));
        }
        if let Some(e) = self.record_error.take() {
            self.record = None;
            return Err(format!("trace capture failed mid-run: {e}"));
        }
        match self.record.take() {
            None => Ok(None),
            Some(writer) => {
                let records = writer.records();
                writer
                    .finish()
                    .map_err(|e| format!("trace capture flush failed: {e}"))?;
                Ok(Some(records))
            }
        }
    }

    /// Functionally installs each core's instruction working set and hot data
    /// region into the L1s and the shared L2 (no timing is modelled).
    ///
    /// This mirrors the effect of the paper's one-billion-instruction warm-up:
    /// measurement starts with the code resident in the LLC so that the
    /// off-chip traffic seen by the memory controller is the steady-state
    /// data-miss stream, not a cold-start transient.
    pub fn prewarm(&mut self) {
        let block = 64u64;
        for core_idx in 0..self.cores.len() {
            let (code_base, code_size) = self.streams.stream(core_idx).code_region();
            for offset in (0..code_size).step_by(block as usize) {
                let addr = code_base + offset;
                self.cores[core_idx].prewarm(addr, true);
                self.l2.access(addr, false);
            }
            let (hot_base, hot_size) = self.streams.stream(core_idx).hot_region();
            for offset in (0..hot_size).step_by(block as usize) {
                let addr = hot_base + offset;
                self.cores[core_idx].prewarm(addr, false);
                self.l2.access(addr, false);
            }
        }
    }

    /// Delivers a block to a core (memory fill or delayed L2 hit).
    pub fn fill(&mut self, core: usize, addr: u64) {
        self.cores[core].fill(addr);
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Committed user instructions per core so far.
    #[must_use]
    pub fn committed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(InOrderCore::committed).collect()
    }

    /// Performance counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> &CoreStats {
        self.cores[core].stats()
    }

    /// L1 instruction-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1i_stats()
    }

    /// L1 data-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1d_stats()
    }

    /// Aggregated shared-L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Why this frontend cannot be checkpointed, if it cannot: attached
    /// trace streams hold open file handles and cursors the snapshot format
    /// does not capture. `None` means snapshotting is supported.
    #[must_use]
    pub fn snapshot_unsupported_reason(&self) -> Option<&'static str> {
        if self.replay.is_some() {
            return Some("trace replay source");
        }
        if self.record.is_some() {
            return Some("trace capture sink");
        }
        None
    }

    /// Serializes the frontend's mutable state: cores, workload streams,
    /// shared L2, RNG stream, DMA injectors and the lazy-mode cursors
    /// (checkpoint support). Callers must gate on
    /// [`Frontend::snapshot_unsupported_reason`] first.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("frontend");
        w.usize(self.cores.len());
        for core in &self.cores {
            core.save_state(w);
        }
        self.streams.save_state(w);
        self.l2.save_state(w);
        w.u64_slice(&self.rng.state());
        w.usize(self.dma.len());
        for inj in &self.dma {
            w.u64(inj.acc_fp);
            w.u64(inj.cursor);
        }
        w.u64_slice(&self.positions);
        w.u64_slice(&self.next_action);
        w.u64(self.dma_pos);
    }

    /// Restores the frontend's mutable state from a checkpoint. The frontend
    /// must have been built from the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation, impossible
    /// values, or shapes that do not match the configuration.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("frontend")?;
        let count = r.usize()?;
        if count != self.cores.len() {
            return Err(r.bad_value(format!("{count} cores, expected {}", self.cores.len())));
        }
        for core in &mut self.cores {
            core.load_state(r)?;
        }
        self.streams.load_state(r)?;
        self.l2.load_state(r)?;
        let words = r.bounded_len(8)?;
        if words != 4 {
            return Err(r.bad_value(format!("{words} RNG state words, expected 4")));
        }
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng.set_state(state);
        let count = r.bounded_len(16)?;
        if count != self.dma.len() {
            return Err(r.bad_value(format!(
                "{count} DMA injectors, expected {}",
                self.dma.len()
            )));
        }
        for inj in &mut self.dma {
            inj.acc_fp = r.u64()?;
            inj.cursor = r.u64()?;
        }
        for (name, vec) in [
            ("core positions", &mut self.positions),
            ("core action cycles", &mut self.next_action),
        ] {
            let count = r.bounded_len(8)?;
            if count != vec.len() {
                return Err(r.bad_value(format!("{count} {name}, expected {}", vec.len())));
            }
            for slot in vec.iter_mut() {
                *slot = r.u64()?;
            }
        }
        self.dma_pos = r.u64()?;
        Ok(())
    }

    /// Re-seeds the frontend's stochastic inputs — every core's workload
    /// stream and the DMA address/core selection RNG — as if the frontend had
    /// been constructed with `seed`, without touching any architectural
    /// state. Used by sweep replicates forked from one warm snapshot.
    pub fn reseed(&mut self, seed: u64) {
        self.streams.reseed(seed);
        self.rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD3A);
    }

    /// Routes one L1-level request (refill or write-back) through the L2.
    fn handle_core_request(
        &mut self,
        core: usize,
        tenant: TenantId,
        addr: u64,
        is_writeback: bool,
        events: &mut Vec<FrontendEvent>,
    ) {
        let outcome = self.l2.access(addr, is_writeback);
        if let Some(victim) = outcome.writeback {
            events.push(FrontendEvent::Write {
                core,
                tenant,
                addr: victim,
                dma: false,
            });
        }
        if is_writeback {
            // L1 write-backs terminate at the L2 (write-allocate without
            // fetch); any capacity effect was handled via the victim above.
            return;
        }
        if outcome.hit {
            events.push(FrontendEvent::L2Hit {
                core,
                addr,
                ready_in: outcome.latency,
            });
        } else {
            events.push(FrontendEvent::Read { core, tenant, addr });
        }
    }

    fn inject_dma(&mut self, events: &mut Vec<FrontendEvent>) {
        for i in 0..self.dma.len() {
            self.dma[i].acc_fp += self.dma[i].rate_fp;
            while self.dma[i].acc_fp >= DMA_FP_ONE {
                self.dma[i].acc_fp -= DMA_FP_ONE;
                self.fire_dma_beat(i, events);
            }
        }
    }

    /// The earliest CPU cycle at or after `now` at which a frontend tick can
    /// possibly do more than bulk counter updates: a core consuming its
    /// instruction stream or retrying a structural stall, or a DMA beat
    /// firing for any tenant. `u64::MAX` means every core is blocked on
    /// memory and no DMA is configured — the frontend is fully event-driven
    /// until a fill arrives.
    ///
    /// `now` is the cycle about to be executed; returning `now` means "tick
    /// normally, nothing can be skipped".
    #[must_use]
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        let mut next = u64::MAX;
        for core in &self.cores {
            match core.runway() {
                None => return now,
                Some(u64::MAX) => {}
                Some(runway) => next = next.min(now.saturating_add(runway)),
            }
        }
        // The tick at `now + j` accrues `j + 1` rate increments; the first
        // one reaching DMA_FP_ONE fires.
        for inj in &self.dma {
            let fire_in = (DMA_FP_ONE - inj.acc_fp - 1) / inj.rate_fp;
            next = next.min(now.saturating_add(fire_in));
        }
        next
    }

    /// Advances the frontend by `cycles` CPU cycles in bulk: every core
    /// consumes runway or stalls, and DMA credit accrues without reaching a
    /// beat. Exactly equivalent to `cycles` ticks, valid only for windows
    /// ending at or before [`Frontend::next_event_cycle`].
    pub fn skip_cycles(&mut self, cycles: u64) {
        for core in &mut self.cores {
            core.skip_cycles(cycles);
        }
        for inj in &mut self.dma {
            inj.acc_fp += inj.rate_fp * cycles;
            debug_assert!(
                inj.acc_fp < DMA_FP_ONE,
                "skip of {cycles} cycles crossed a DMA beat"
            );
        }
    }

    // --- Lazy per-core drive mode (the event kernel's frontend API) ---
    //
    // The eager mode above advances every core in lockstep. The lazy mode
    // instead tracks, per core, the next cycle its tick would do real work
    // (`next_action`) and how far the core has actually been simulated
    // (`positions`); cores a fill cannot reach sleep indefinitely instead of
    // being ticked every cycle. The two modes must not be mixed on one
    // `Frontend`: eager calls do not maintain the lazy cursors.

    /// Recomputes `next_action` for one core from its runway, anchored at
    /// `from` (the core's position).
    fn reschedule(&mut self, core: usize, from: u64) {
        self.next_action[core] = match self.cores[core].runway() {
            None => from,
            Some(u64::MAX) => u64::MAX,
            Some(runway) => from.saturating_add(runway),
        };
    }

    /// Lazy mode: the earliest CPU cycle at which [`Frontend::advance_to`]
    /// would do real work — the soonest per-core action or DMA beat.
    /// `u64::MAX` means every core is blocked on memory and no DMA beat is
    /// pending; the frontend sleeps until a fill arrives.
    #[must_use]
    pub fn next_action_cycle(&self) -> u64 {
        let mut next = self.next_action.iter().copied().min().unwrap_or(u64::MAX);
        for inj in &self.dma {
            let fire_in = (DMA_FP_ONE - inj.acc_fp - 1) / inj.rate_fp;
            next = next.min(self.dma_pos.saturating_add(fire_in));
        }
        next
    }

    /// Lazy mode: runs every core whose action cycle is `now` (in ascending
    /// core order, preserving the eager mode's (cycle, core) op-consumption
    /// order) and accrues the DMA injectors through `now`, firing due beats.
    /// The caller must not jump past an action or beat cycle
    /// ([`Frontend::next_action_cycle`] reports the earliest one).
    pub fn advance_to(&mut self, now: u64, events: &mut Vec<FrontendEvent>) {
        for core in 0..self.cores.len() {
            while self.next_action[core] <= now {
                let at = self.next_action[core];
                debug_assert!(at == now, "core {core} action at {at} missed by {now}");
                let gap = at - self.positions[core];
                if gap > 0 {
                    self.cores[core].skip_cycles(gap);
                }
                self.tick_core(core, events);
                self.positions[core] = at + 1;
                self.reschedule(core, at + 1);
            }
        }
        self.advance_dma(now + 1, events);
    }

    /// Lazy mode: delivers a block to a core at `now` (memory fill or delayed
    /// L2 hit), catching the core up to `now` first. The skipped window is
    /// eventless by construction: the core has been blocked (or coasting on
    /// runway past `now`) since its position.
    pub fn fill_at(&mut self, core: usize, addr: u64, now: u64) {
        debug_assert!(self.positions[core] <= now, "fill for a core past {now}");
        let gap = now - self.positions[core];
        if gap > 0 {
            self.cores[core].skip_cycles(gap);
            self.positions[core] = now;
        }
        self.cores[core].fill(addr);
        self.reschedule(core, now);
    }

    /// Lazy mode: accrues DMA credit for all cycles below `upto`, firing any
    /// beats that come due (the caller guarantees at most the current cycle's
    /// beats do).
    fn advance_dma(&mut self, upto: u64, events: &mut Vec<FrontendEvent>) {
        let cycles = upto.saturating_sub(self.dma_pos);
        if cycles == 0 {
            return;
        }
        self.dma_pos = upto;
        for i in 0..self.dma.len() {
            let inj = &mut self.dma[i];
            inj.acc_fp += inj.rate_fp * cycles;
            while self.dma[i].acc_fp >= DMA_FP_ONE {
                self.dma[i].acc_fp -= DMA_FP_ONE;
                self.fire_dma_beat(i, events);
            }
        }
    }

    /// Emits one DMA beat for injector `i` (the rate-independent half of
    /// [`Frontend::inject_dma`]'s loop body, shared with the lazy mode).
    fn fire_dma_beat(&mut self, i: usize, events: &mut Vec<FrontendEvent>) {
        let inj = &mut self.dma[i];
        let core = inj.core_lo + self.rng.gen_range(0..inj.core_len);
        // DMA engines stream sequentially through I/O buffers in the shared
        // region: mostly the next cache block, occasionally a jump to a fresh
        // buffer. This gives DMA traffic the high row-buffer locality the
        // paper observes for Web Frontend's extra accesses.
        if inj.cursor == 0 || self.rng.gen_bool(1.0 / 24.0) {
            let base = 0x0400_0000u64;
            inj.cursor = base + self.rng.gen_range(0..0x0100_0000u64 / 8192) * 8192;
        } else {
            inj.cursor += 64;
        }
        let addr = inj.cursor;
        if self.rng.gen_bool(0.5) {
            events.push(FrontendEvent::DmaRead {
                core,
                tenant: inj.tenant,
                addr,
            });
        } else {
            events.push(FrontendEvent::Write {
                core,
                tenant: inj.tenant,
                addr,
                dma: true,
            });
        }
    }

    /// Lazy mode: flushes every core and the DMA accumulators up to (but not
    /// including) cycle `end`, so externally visible state (committed
    /// instruction counts, stall counters) reflects the full window. Valid
    /// only when no action or beat falls below `end` — i.e. `end` is at most
    /// [`Frontend::next_action_cycle`].
    pub fn sync_to(&mut self, end: u64) {
        for core in 0..self.cores.len() {
            debug_assert!(self.next_action[core] >= end, "sync_to skipped an action");
            let gap = end.saturating_sub(self.positions[core]);
            if gap > 0 {
                self.cores[core].skip_cycles(gap);
                self.positions[core] = end;
            }
        }
        let cycles = end.saturating_sub(self.dma_pos);
        if cycles > 0 {
            self.dma_pos = end;
            for inj in &mut self.dma {
                inj.acc_fp += inj.rate_fp * cycles;
                debug_assert!(
                    inj.acc_fp < DMA_FP_ONE,
                    "sync of {cycles} cycles crossed a DMA beat"
                );
            }
        }
    }
}

impl Tick for Frontend {
    type Event = FrontendEvent;

    /// Advances every core by one CPU cycle and injects DMA traffic,
    /// reporting everything that must leave the frontend this cycle.
    ///
    /// Each core's op comes from the replay trace when one is attached, and
    /// from its synthetic stream otherwise; either way the op is appended to
    /// the capture sink if the run is recording. A failing capture sink
    /// stops the capture; a failing replay trace (I/O error, parse error, or
    /// a core index beyond the bound count) parks the cores on the
    /// exhaustion filler. Both errors are deferred and surface from
    /// [`Frontend::finish_trace`], so driving the run is infallible.
    fn tick(&mut self, _now: u64, events: &mut Vec<FrontendEvent>) {
        for core_idx in 0..self.cores.len() {
            self.tick_core(core_idx, events);
        }
        self.inject_dma(events);
    }
}

impl Frontend {
    /// Advances one core by one CPU cycle: consume its next op (from the
    /// replay trace or its synthetic stream, tapped by the capture sink),
    /// or burn runway / stall, and route any L1 refills and write-backs it
    /// produces through the shared L2. The per-core body shared by the eager
    /// [`Tick::tick`] and the lazy [`Frontend::advance_to`].
    fn tick_core(&mut self, core_idx: usize, events: &mut Vec<FrontendEvent>) {
        let (requests, record_failure, replay_failure) = {
            let stream = self.streams.stream_mut(core_idx);
            let replay = &mut self.replay;
            let record = &mut self.record;
            let mut record_failure: Option<String> = None;
            let mut replay_failure: Option<String> = None;
            let mut source = || {
                let op = match replay.as_mut() {
                    Some(trace) => match trace.next_op(core_idx) {
                        Ok(op) => op,
                        Err(e) => {
                            replay_failure = Some(e.to_string());
                            TraceStream::EXHAUSTED_FILLER
                        }
                    },
                    None => stream.next_op(),
                };
                if let Some(writer) = record.as_mut() {
                    let trace_record = TraceRecord { core: core_idx, op };
                    if let Err(e) = writer.write(&trace_record) {
                        record_failure = Some(e.to_string());
                    }
                }
                op
            };
            let requests = self.cores[core_idx].tick(&mut source);
            (requests, record_failure, replay_failure)
        };
        if let Some(e) = replay_failure {
            // The stream poisoned itself: every core idles out on the
            // filler from here (never the synthetic generators — the
            // replay stays attached). The capture sink is dropped too:
            // a recording of a failed replay is garbage, and finish
            // reports the replay error regardless.
            self.replay_error.get_or_insert(e);
            self.record = None;
        }
        if let Some(e) = record_failure {
            // Keep only the first failure; later records are moot once
            // the sink is gone.
            self.record_error.get_or_insert(e);
            self.record = None;
        }
        for request in requests {
            self.handle_core_request(
                core_idx,
                request.tenant,
                request.addr,
                request.write,
                events,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn frontend(workload: Workload) -> Frontend {
        Frontend::new(&SystemConfig::baseline(workload)).unwrap()
    }

    #[test]
    fn cold_frontend_produces_memory_reads() {
        let mut fe = frontend(Workload::DataServing);
        let mut events = Vec::new();
        for cycle in 0..2_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FrontendEvent::Read { .. })),
            "a cold 16-core frontend must miss off-chip"
        );
    }

    #[test]
    fn prewarm_seeds_the_caches() {
        let mut cold = frontend(Workload::WebSearch);
        let mut warm = frontend(Workload::WebSearch);
        warm.prewarm();
        let run = |fe: &mut Frontend| {
            let mut events = Vec::new();
            for cycle in 0..3_000 {
                fe.tick(cycle, &mut events);
            }
            // Feed every miss straight back so the cores keep running.
            let mut reads = 0usize;
            for e in &events {
                if let FrontendEvent::Read { core, addr, .. } = *e {
                    reads += 1;
                    fe.fill(core, addr);
                }
            }
            reads
        };
        let cold_reads = run(&mut cold);
        let warm_reads = run(&mut warm);
        assert!(
            warm_reads < cold_reads,
            "prewarmed frontend should miss less ({warm_reads} vs {cold_reads})"
        );
    }

    /// Skipping up to the reported event horizon and then ticking must
    /// produce the same events and the same state as ticking every cycle —
    /// including the DMA accumulator, which is why it is fixed-point.
    #[test]
    fn skip_to_horizon_matches_per_cycle_ticking() {
        let make = || {
            let mut fe = frontend(Workload::WebFrontend);
            fe.prewarm();
            fe
        };
        let mut ticked = make();
        let mut jumped = make();
        let mut ticked_events = Vec::new();
        let mut jumped_events = Vec::new();
        let horizon_cycles = 30_000u64;

        let mut cycle = 0u64;
        while cycle < horizon_cycles {
            let before = ticked_events.len();
            ticked.tick(cycle, &mut ticked_events);
            for e in &ticked_events[before..] {
                if let FrontendEvent::Read { core, addr, .. }
                | FrontendEvent::L2Hit { core, addr, .. } = *e
                {
                    ticked.fill(core, addr);
                }
            }
            cycle += 1;
        }

        let mut cycle = 0u64;
        while cycle < horizon_cycles {
            let next = jumped.next_event_cycle(cycle).min(horizon_cycles);
            if next > cycle {
                jumped.skip_cycles(next - cycle);
                cycle = next;
                continue;
            }
            let before = jumped_events.len();
            jumped.tick(cycle, &mut jumped_events);
            for e in &jumped_events[before..] {
                if let FrontendEvent::Read { core, addr, .. }
                | FrontendEvent::L2Hit { core, addr, .. } = *e
                {
                    jumped.fill(core, addr);
                }
            }
            cycle += 1;
        }

        assert_eq!(ticked_events, jumped_events, "event streams must match");
        assert_eq!(ticked.committed_per_core(), jumped.committed_per_core());
        for core in 0..ticked.core_count() {
            assert_eq!(ticked.core_stats(core), jumped.core_stats(core));
        }
    }

    /// Recording a run and replaying the trace drives the cores through the
    /// exact same event stream — the frontend-level half of the record→replay
    /// equivalence guarantee.
    #[test]
    fn record_then_replay_reproduces_the_event_stream() {
        let path = std::env::temp_dir().join(format!(
            "cloudmc_frontend_roundtrip_{}.trace",
            std::process::id()
        ));
        let run = |fe: &mut Frontend| {
            let mut events = Vec::new();
            for cycle in 0..5_000 {
                let before = events.len();
                fe.tick(cycle, &mut events);
                for e in &events[before..] {
                    if let FrontendEvent::Read { core, addr, .. }
                    | FrontendEvent::L2Hit { core, addr, .. } = *e
                    {
                        fe.fill(core, addr);
                    }
                }
            }
            events
        };
        // WebFrontend exercises the DMA injector alongside the core streams.
        let mut cfg = SystemConfig::baseline(Workload::WebFrontend);
        cfg.trace_record = Some(path.clone());
        let mut recorder = Frontend::new(&cfg).unwrap();
        assert!(!recorder.is_replaying());
        let recorded_events = run(&mut recorder);
        let records = recorder.finish_trace().unwrap().expect("was recording");
        assert!(records > 0);

        let mut replay_cfg = SystemConfig::baseline(Workload::WebFrontend);
        replay_cfg.source = cloudmc_workloads::WorkloadSource::Trace(path.clone());
        let mut replayer = Frontend::new(&replay_cfg).unwrap();
        assert!(replayer.is_replaying());
        let replayed_events = run(&mut replayer);
        assert_eq!(recorded_events, replayed_events);
        assert_eq!(replayer.replay_records_read(), Some(records));
        assert_eq!(recorder.committed_per_core(), replayer.committed_per_core());
        assert_eq!(replayer.finish_trace().unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_replay_trace_is_a_clear_config_error() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        cfg.source = cloudmc_workloads::WorkloadSource::Trace("/nonexistent/never/x.trace".into());
        let err = Frontend::new(&cfg).unwrap_err();
        assert!(err.contains("x.trace"), "{err}");
    }

    #[test]
    fn web_frontend_injects_dma_traffic() {
        let mut fe = frontend(Workload::WebFrontend);
        let mut events = Vec::new();
        for cycle in 0..20_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(events.iter().any(|e| matches!(
            e,
            FrontendEvent::DmaRead { .. } | FrontendEvent::Write { dma: true, .. }
        )));
    }
}
