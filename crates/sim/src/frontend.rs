//! The CPU-side frontend: in-order cores, their workload streams, the shared
//! L2 and the DMA traffic injector.
//!
//! The frontend owns everything clocked by the 2 GHz core clock. Each
//! [`Tick::tick`] call advances every core by one CPU cycle, routes the L1
//! refills and write-backs they produce through the shared L2, and injects
//! this cycle's DMA traffic; whatever must leave the chip is reported as
//! [`FrontendEvent`]s for the kernel to hand to the memory
//! [`backend`](crate::backend). The frontend never sees DRAM cycles — the
//! clock-ratio bookkeeping (`DRAM_CYCLES_PER_5_CPU_CYCLES`) lives entirely in
//! [`kernel::ClockCrossing`](crate::kernel::ClockCrossing).
//!
//! Returning data to a core goes the other way: the kernel calls
//! [`Frontend::fill`] once a block's delivery cycle arrives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_cpu::{CacheStats, CoreStats, InOrderCore, SharedL2};
use cloudmc_workloads::WorkloadStreams;

use crate::config::SystemConfig;
use crate::kernel::Tick;

/// Off-chip traffic (or an L2 hit in flight) produced by one frontend cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendEvent {
    /// A demand access that hit in the shared L2; the data must be delivered
    /// to `core` after `ready_in` further CPU cycles.
    L2Hit {
        /// Requesting core.
        core: usize,
        /// Block address.
        addr: u64,
        /// L2 access latency in CPU cycles.
        ready_in: u64,
    },
    /// A demand read that missed the L2 and must go to memory.
    Read {
        /// Requesting core.
        core: usize,
        /// Block address.
        addr: u64,
    },
    /// A write leaving the chip (L2 victim write-back or DMA write).
    Write {
        /// Core the write is attributed to.
        core: usize,
        /// Block address.
        addr: u64,
        /// Whether a DMA engine (not a core) produced the write.
        dma: bool,
    },
    /// A read issued by a DMA engine (no core is stalled on it).
    DmaRead {
        /// Core the read is attributed to for fairness accounting.
        core: usize,
        /// Block address.
        addr: u64,
    },
}

/// Fixed-point scale of the DMA-rate accumulator: one DMA event per
/// `DMA_FP_ONE` accumulated units. Integer arithmetic makes accumulating
/// `n` cycles at once exactly equal to accumulating `n` times — the property
/// the kernel's fast-forward relies on (f64 addition is not associative).
const DMA_FP_ONE: u64 = 1 << 32;

/// Cores, workload streams, shared L2 and the DMA injector.
#[derive(Debug)]
pub struct Frontend {
    cores: Vec<InOrderCore>,
    streams: WorkloadStreams,
    l2: SharedL2,
    rng: StdRng,
    /// DMA events accrued per CPU cycle, in `1/DMA_FP_ONE` units.
    dma_rate_fp: u64,
    /// Accrued DMA credit, in `1/DMA_FP_ONE` units (always `< DMA_FP_ONE`
    /// right after a tick).
    dma_acc_fp: u64,
    dma_cursor: u64,
}

impl Frontend {
    /// Builds the frontend described by `cfg`.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        let streams = WorkloadStreams::from_spec(cfg.workload, cfg.seed);
        let cores = (0..cfg.workload.cores)
            .map(|i| InOrderCore::new(i, cfg.core))
            .collect();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let dma_rate_fp =
            (cfg.workload.dma_per_kcycle.max(0.0) / 1000.0 * DMA_FP_ONE as f64).round() as u64;
        Self {
            cores,
            streams,
            l2: SharedL2::new(cfg.l2),
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD3A),
            dma_rate_fp,
            dma_acc_fp: 0,
            dma_cursor: 0,
        }
    }

    /// Functionally installs each core's instruction working set and hot data
    /// region into the L1s and the shared L2 (no timing is modelled).
    ///
    /// This mirrors the effect of the paper's one-billion-instruction warm-up:
    /// measurement starts with the code resident in the LLC so that the
    /// off-chip traffic seen by the memory controller is the steady-state
    /// data-miss stream, not a cold-start transient.
    pub fn prewarm(&mut self) {
        let block = 64u64;
        for core_idx in 0..self.cores.len() {
            let (code_base, code_size) = self.streams.stream(core_idx).code_region();
            for offset in (0..code_size).step_by(block as usize) {
                let addr = code_base + offset;
                self.cores[core_idx].prewarm(addr, true);
                self.l2.access(addr, false);
            }
            let (hot_base, hot_size) = self.streams.stream(core_idx).hot_region();
            for offset in (0..hot_size).step_by(block as usize) {
                let addr = hot_base + offset;
                self.cores[core_idx].prewarm(addr, false);
                self.l2.access(addr, false);
            }
        }
    }

    /// Delivers a block to a core (memory fill or delayed L2 hit).
    pub fn fill(&mut self, core: usize, addr: u64) {
        self.cores[core].fill(addr);
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Committed user instructions per core so far.
    #[must_use]
    pub fn committed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(InOrderCore::committed).collect()
    }

    /// Performance counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> &CoreStats {
        self.cores[core].stats()
    }

    /// L1 instruction-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1i_stats()
    }

    /// L1 data-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1d_stats()
    }

    /// Aggregated shared-L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Routes one L1-level request (refill or write-back) through the L2.
    fn handle_core_request(
        &mut self,
        core: usize,
        addr: u64,
        is_writeback: bool,
        events: &mut Vec<FrontendEvent>,
    ) {
        let outcome = self.l2.access(addr, is_writeback);
        if let Some(victim) = outcome.writeback {
            events.push(FrontendEvent::Write {
                core,
                addr: victim,
                dma: false,
            });
        }
        if is_writeback {
            // L1 write-backs terminate at the L2 (write-allocate without
            // fetch); any capacity effect was handled via the victim above.
            return;
        }
        if outcome.hit {
            events.push(FrontendEvent::L2Hit {
                core,
                addr,
                ready_in: outcome.latency,
            });
        } else {
            events.push(FrontendEvent::Read { core, addr });
        }
    }

    fn inject_dma(&mut self, events: &mut Vec<FrontendEvent>) {
        if self.dma_rate_fp == 0 {
            return;
        }
        self.dma_acc_fp += self.dma_rate_fp;
        while self.dma_acc_fp >= DMA_FP_ONE {
            self.dma_acc_fp -= DMA_FP_ONE;
            let core = self.rng.gen_range(0..self.cores.len());
            // DMA engines stream sequentially through I/O buffers in the
            // shared region: mostly the next cache block, occasionally a jump
            // to a fresh buffer. This gives DMA traffic the high row-buffer
            // locality the paper observes for Web Frontend's extra accesses.
            if self.dma_cursor == 0 || self.rng.gen_bool(1.0 / 24.0) {
                let base = 0x0400_0000u64;
                self.dma_cursor = base + self.rng.gen_range(0..0x0100_0000u64 / 8192) * 8192;
            } else {
                self.dma_cursor += 64;
            }
            let addr = self.dma_cursor;
            if self.rng.gen_bool(0.5) {
                events.push(FrontendEvent::DmaRead { core, addr });
            } else {
                events.push(FrontendEvent::Write {
                    core,
                    addr,
                    dma: true,
                });
            }
        }
    }
    /// The earliest CPU cycle at or after `now` at which a frontend tick can
    /// possibly do more than bulk counter updates: a core consuming its
    /// instruction stream or retrying a structural stall, or a DMA beat
    /// firing. `u64::MAX` means every core is blocked on memory and no DMA is
    /// configured — the frontend is fully event-driven until a fill arrives.
    ///
    /// `now` is the cycle about to be executed; returning `now` means "tick
    /// normally, nothing can be skipped".
    #[must_use]
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        let mut next = u64::MAX;
        for core in &self.cores {
            match core.runway() {
                None => return now,
                Some(u64::MAX) => {}
                Some(runway) => next = next.min(now.saturating_add(runway)),
            }
        }
        // The tick at `now + j` accrues `j + 1` rate increments; the first
        // one reaching DMA_FP_ONE fires. (checked_div: no DMA means no beat.)
        if let Some(fire_in) = (DMA_FP_ONE - self.dma_acc_fp - 1).checked_div(self.dma_rate_fp) {
            next = next.min(now.saturating_add(fire_in));
        }
        next
    }

    /// Advances the frontend by `cycles` CPU cycles in bulk: every core
    /// consumes runway or stalls, and DMA credit accrues without reaching a
    /// beat. Exactly equivalent to `cycles` ticks, valid only for windows
    /// ending at or before [`Frontend::next_event_cycle`].
    pub fn skip_cycles(&mut self, cycles: u64) {
        for core in &mut self.cores {
            core.skip_cycles(cycles);
        }
        if self.dma_rate_fp > 0 {
            self.dma_acc_fp += self.dma_rate_fp * cycles;
            debug_assert!(
                self.dma_acc_fp < DMA_FP_ONE,
                "skip of {cycles} cycles crossed a DMA beat"
            );
        }
    }
}

impl Tick for Frontend {
    type Event = FrontendEvent;

    /// Advances every core by one CPU cycle and injects DMA traffic,
    /// reporting everything that must leave the frontend this cycle.
    fn tick(&mut self, _now: u64, events: &mut Vec<FrontendEvent>) {
        for core_idx in 0..self.cores.len() {
            let requests = {
                let stream = self.streams.stream_mut(core_idx);
                let mut source = || stream.next_op();
                self.cores[core_idx].tick(&mut source)
            };
            for request in requests {
                self.handle_core_request(core_idx, request.addr, request.write, events);
            }
        }
        self.inject_dma(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn frontend(workload: Workload) -> Frontend {
        Frontend::new(&SystemConfig::baseline(workload))
    }

    #[test]
    fn cold_frontend_produces_memory_reads() {
        let mut fe = frontend(Workload::DataServing);
        let mut events = Vec::new();
        for cycle in 0..2_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FrontendEvent::Read { .. })),
            "a cold 16-core frontend must miss off-chip"
        );
    }

    #[test]
    fn prewarm_seeds_the_caches() {
        let mut cold = frontend(Workload::WebSearch);
        let mut warm = frontend(Workload::WebSearch);
        warm.prewarm();
        let run = |fe: &mut Frontend| {
            let mut events = Vec::new();
            for cycle in 0..3_000 {
                fe.tick(cycle, &mut events);
            }
            // Feed every miss straight back so the cores keep running.
            let mut reads = 0usize;
            for e in &events {
                if let FrontendEvent::Read { core, addr } = *e {
                    reads += 1;
                    fe.fill(core, addr);
                }
            }
            reads
        };
        let cold_reads = run(&mut cold);
        let warm_reads = run(&mut warm);
        assert!(
            warm_reads < cold_reads,
            "prewarmed frontend should miss less ({warm_reads} vs {cold_reads})"
        );
    }

    /// Skipping up to the reported event horizon and then ticking must
    /// produce the same events and the same state as ticking every cycle —
    /// including the DMA accumulator, which is why it is fixed-point.
    #[test]
    fn skip_to_horizon_matches_per_cycle_ticking() {
        let make = || {
            let mut fe = frontend(Workload::WebFrontend);
            fe.prewarm();
            fe
        };
        let mut ticked = make();
        let mut jumped = make();
        let mut ticked_events = Vec::new();
        let mut jumped_events = Vec::new();
        let horizon_cycles = 30_000u64;

        let mut cycle = 0u64;
        while cycle < horizon_cycles {
            let before = ticked_events.len();
            ticked.tick(cycle, &mut ticked_events);
            for e in &ticked_events[before..] {
                if let FrontendEvent::Read { core, addr }
                | FrontendEvent::L2Hit { core, addr, .. } = *e
                {
                    ticked.fill(core, addr);
                }
            }
            cycle += 1;
        }

        let mut cycle = 0u64;
        while cycle < horizon_cycles {
            let next = jumped.next_event_cycle(cycle).min(horizon_cycles);
            if next > cycle {
                jumped.skip_cycles(next - cycle);
                cycle = next;
                continue;
            }
            let before = jumped_events.len();
            jumped.tick(cycle, &mut jumped_events);
            for e in &jumped_events[before..] {
                if let FrontendEvent::Read { core, addr }
                | FrontendEvent::L2Hit { core, addr, .. } = *e
                {
                    jumped.fill(core, addr);
                }
            }
            cycle += 1;
        }

        assert_eq!(ticked_events, jumped_events, "event streams must match");
        assert_eq!(ticked.committed_per_core(), jumped.committed_per_core());
        for core in 0..ticked.core_count() {
            assert_eq!(ticked.core_stats(core), jumped.core_stats(core));
        }
    }

    #[test]
    fn web_frontend_injects_dma_traffic() {
        let mut fe = frontend(Workload::WebFrontend);
        let mut events = Vec::new();
        for cycle in 0..20_000 {
            fe.tick(cycle, &mut events);
        }
        assert!(events.iter().any(|e| matches!(
            e,
            FrontendEvent::DmaRead { .. } | FrontendEvent::Write { dma: true, .. }
        )));
    }
}
