//! Full-system configuration.

use cloudmc_cpu::{CoreConfig, L2Config};
use cloudmc_dram::EnergyParams;
use cloudmc_memctrl::{McConfig, SchedulerKind};
use cloudmc_workloads::{Workload, WorkloadSpec};

/// Clock ratio of the model: the cores run at 2 GHz and the DRAM command
/// clock at 800 MHz (DDR3-1600), i.e. 2 DRAM cycles per 5 CPU cycles.
pub const DRAM_CYCLES_PER_5_CPU_CYCLES: u64 = 2;

/// Configuration of one full-system simulation run.
///
/// Defaults reproduce the paper's baseline (Table 2): a 16-core in-order pod
/// with 32 KB L1s and a shared 4 MB L2, an FR-FCFS single-channel controller
/// with the open-adaptive page policy, driven by one of the twelve workload
/// models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Statistical workload model driving the cores.
    pub workload: WorkloadSpec,
    /// Per-core configuration (L1 caches, MSHRs).
    pub core: CoreConfig,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// Memory controller and DRAM configuration (per backend shard).
    pub mc: McConfig,
    /// DRAM energy parameters (per-event charges and per-state background
    /// powers); pick the preset matching `mc.dram.timing`.
    pub energy: EnergyParams,
    /// Number of independent memory-controller shards in the backend.
    ///
    /// Cache blocks interleave across shards by block address, so the total
    /// channel count of the system is `num_channels * mc.dram.channels`.
    /// The default of 1 reproduces the seed single-controller system.
    pub num_channels: usize,
    /// Random seed for workload generation and DMA injection.
    pub seed: u64,
    /// CPU cycles of warm-up before statistics are collected.
    pub warmup_cpu_cycles: u64,
    /// CPU cycles of measurement after warm-up.
    pub measure_cpu_cycles: u64,
    /// Functionally install the instruction working set and hot data of each
    /// core into the caches before simulation starts, standing in for the
    /// billion-instruction functional warm-up of the paper's methodology.
    pub functional_warmup: bool,
    /// Scale ATLAS's quantum and starvation threshold down so that several
    /// ranking quanta elapse within the (reduced-scale) measurement window,
    /// preserving the algorithm's behaviour at laptop scale.
    pub scale_scheduler_time_constants: bool,
    /// Event-horizon fast-forward: let the kernel jump over cycles every
    /// layer has proven eventless (cores burning compute bursts or stalled,
    /// controllers waiting out timing fences or refresh intervals) instead of
    /// ticking through them one by one.
    ///
    /// The jump is bit-identical by construction — the final statistics match
    /// the naive cycle loop exactly for every seed (enforced by
    /// `tests/fast_forward_equivalence.rs`) — so this defaults to `true`;
    /// the knob exists to make that equivalence testable and to aid
    /// debugging of the horizon computation itself.
    pub fast_forward: bool,
}

impl SystemConfig {
    /// Baseline configuration for `workload` (Table 2 plus the calibrated
    /// workload spec).
    #[must_use]
    pub fn baseline(workload: Workload) -> Self {
        let spec = workload.spec();
        let mut mc = McConfig::baseline();
        mc.num_cores = spec.cores;
        Self {
            workload: spec,
            core: CoreConfig::default(),
            l2: L2Config::baseline(),
            mc,
            energy: EnergyParams::ddr3_1600(),
            num_channels: 1,
            seed: 1,
            warmup_cpu_cycles: 250_000,
            measure_cpu_cycles: 1_000_000,
            functional_warmup: true,
            scale_scheduler_time_constants: true,
            fast_forward: true,
        }
    }

    /// Total simulated CPU cycles (warm-up plus measurement).
    #[must_use]
    pub fn total_cpu_cycles(&self) -> u64 {
        self.warmup_cpu_cycles + self.measure_cpu_cycles
    }

    /// DRAM cycles corresponding to `cpu_cycles` under the fixed clock ratio.
    #[must_use]
    pub fn cpu_to_dram_cycles(cpu_cycles: u64) -> u64 {
        cpu_cycles * DRAM_CYCLES_PER_5_CPU_CYCLES / 5
    }

    /// The effective memory-controller configuration, with scheduler time
    /// constants scaled to the run length when requested.
    #[must_use]
    pub fn effective_mc(&self) -> McConfig {
        let mut mc = self.mc;
        mc.num_cores = self.workload.cores;
        if self.scale_scheduler_time_constants {
            if let SchedulerKind::Atlas(mut atlas) = mc.scheduler {
                let total_dram = Self::cpu_to_dram_cycles(self.total_cpu_cycles()).max(1);
                // Aim for roughly 10 quanta over the whole run, as a stand-in
                // for the hundreds of quanta of a full-length simulation. The
                // starvation threshold is deliberately *not* scaled: its ratio
                // to the memory latency (not to the quantum) is what bounds
                // how long a deprioritized core can be denied service, which
                // is the effect the paper attributes ATLAS's losses to.
                let target_quantum = (total_dram / 10).max(10_000);
                if target_quantum < atlas.quantum {
                    atlas.quantum = target_quantum;
                    mc.scheduler = SchedulerKind::Atlas(atlas);
                }
            }
        }
        mc
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.workload.validate()?;
        self.l2.validate()?;
        self.mc.validate()?;
        if self.num_channels == 0 {
            return Err("num_channels must be non-zero".to_owned());
        }
        if self.num_channels > 64 {
            return Err(format!(
                "num_channels ({}) is unreasonably large (max 64)",
                self.num_channels
            ));
        }
        if self.measure_cpu_cycles == 0 {
            return Err("measure_cpu_cycles must be non-zero".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_memctrl::AtlasConfig;

    #[test]
    fn baseline_validates_for_every_workload() {
        for w in Workload::all() {
            let cfg = SystemConfig::baseline(w);
            cfg.validate().unwrap();
            assert_eq!(cfg.mc.num_cores, w.spec().cores);
        }
    }

    #[test]
    fn clock_ratio_is_2_to_5() {
        assert_eq!(SystemConfig::cpu_to_dram_cycles(5), 2);
        assert_eq!(SystemConfig::cpu_to_dram_cycles(1_000_000), 400_000);
    }

    #[test]
    fn atlas_quantum_is_scaled_to_run_length() {
        let mut cfg = SystemConfig::baseline(Workload::MapReduce);
        cfg.mc.scheduler = SchedulerKind::Atlas(AtlasConfig::default());
        let effective = cfg.effective_mc();
        match effective.scheduler {
            SchedulerKind::Atlas(a) => {
                assert!(a.quantum < AtlasConfig::default().quantum);
                let total_dram = SystemConfig::cpu_to_dram_cycles(cfg.total_cpu_cycles());
                assert!(a.quantum <= total_dram / 5);
            }
            other => panic!("expected ATLAS, got {other:?}"),
        }
    }

    #[test]
    fn scaling_can_be_disabled() {
        let mut cfg = SystemConfig::baseline(Workload::MapReduce);
        cfg.mc.scheduler = SchedulerKind::Atlas(AtlasConfig::default());
        cfg.scale_scheduler_time_constants = false;
        match cfg.effective_mc().scheduler {
            SchedulerKind::Atlas(a) => assert_eq!(a.quantum, AtlasConfig::default().quantum),
            other => panic!("expected ATLAS, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_zero_measurement() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        cfg.measure_cpu_cycles = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_bounds_channel_count() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        assert_eq!(cfg.num_channels, 1);
        cfg.num_channels = 0;
        assert!(cfg.validate().is_err());
        cfg.num_channels = 65;
        assert!(cfg.validate().is_err());
        cfg.num_channels = 4;
        cfg.validate().unwrap();
    }
}
