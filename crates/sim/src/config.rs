//! Full-system configuration.

use std::path::PathBuf;

use cloudmc_cpu::{CoreConfig, L2Config};
use cloudmc_dram::EnergyParams;
use cloudmc_memctrl::{McConfig, SchedulerKind};
use cloudmc_telemetry::TelemetryConfig;
use cloudmc_workloads::{MixSpec, Workload, WorkloadSource, WorkloadSpec};

// The controller's per-tenant accounting arrays and the workload mix must
// agree on how many tenants can exist.
const _: () = assert!(cloudmc_workloads::MAX_TENANTS == cloudmc_memctrl::MAX_TENANTS);

/// Clock ratio of the model: the cores run at 2 GHz and the DRAM command
/// clock at 800 MHz (DDR3-1600), i.e. 2 DRAM cycles per 5 CPU cycles.
pub const DRAM_CYCLES_PER_5_CPU_CYCLES: u64 = 2;

/// Configuration of one full-system simulation run.
///
/// Defaults reproduce the paper's baseline (Table 2): a 16-core in-order pod
/// with 32 KB L1s and a shared 4 MB L2, an FR-FCFS single-channel controller
/// with the open-adaptive page policy, driven by one of the twelve workload
/// models.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Statistical workload model driving the cores (the only tenant unless
    /// [`SystemConfig::mix`] is set, in which case this mirrors tenant 0).
    pub workload: WorkloadSpec,
    /// Multi-tenant workload mix: heterogeneous workloads bound to core
    /// groups, each tagged with a tenant id that rides every request into
    /// the memory controller. `None` (the default) runs `workload` alone as
    /// tenant 0 — the pre-tenancy behaviour.
    pub mix: Option<MixSpec>,
    /// Where the per-core instruction streams come from: the synthetic
    /// generators (the default), or replay of a recorded trace file. Replay
    /// keeps the tenancy/core layout of `workload`/`mix` (which must match
    /// the recorded run) and supports the event-horizon fast-forward;
    /// replaying a trace recorded from a synthetic run reproduces its
    /// statistics bit for bit (`tests/trace_replay_equivalence.rs`).
    pub source: WorkloadSource,
    /// Record every op the cores consume (with its core binding; the tenant
    /// follows from the mix's core groups) to this trace file, enabling
    /// later [`WorkloadSource::Trace`] replay. `None` (the default) records
    /// nothing.
    pub trace_record: Option<PathBuf>,
    /// Per-core configuration (L1 caches, MSHRs).
    pub core: CoreConfig,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// Memory controller and DRAM configuration (per backend shard).
    pub mc: McConfig,
    /// DRAM energy parameters (per-event charges and per-state background
    /// powers); pick the preset matching `mc.dram.timing`.
    pub energy: EnergyParams,
    /// Number of independent memory-controller shards in the backend.
    ///
    /// Cache blocks interleave across shards by block address, so the total
    /// channel count of the system is `num_channels * mc.dram.channels`.
    /// The default of 1 reproduces the seed single-controller system.
    pub num_channels: usize,
    /// Random seed for workload generation and DMA injection.
    pub seed: u64,
    /// CPU cycles of warm-up before statistics are collected.
    pub warmup_cpu_cycles: u64,
    /// CPU cycles of measurement after warm-up.
    pub measure_cpu_cycles: u64,
    /// Functionally install the instruction working set and hot data of each
    /// core into the caches before simulation starts, standing in for the
    /// billion-instruction functional warm-up of the paper's methodology.
    pub functional_warmup: bool,
    /// Scale ATLAS's quantum and starvation threshold down so that several
    /// ranking quanta elapse within the (reduced-scale) measurement window,
    /// preserving the algorithm's behaviour at laptop scale.
    pub scale_scheduler_time_constants: bool,
    /// Event-horizon fast-forward: let the kernel jump over cycles every
    /// layer has proven eventless (cores burning compute bursts or stalled,
    /// controllers waiting out timing fences or refresh intervals) instead of
    /// ticking through them one by one.
    ///
    /// The jump is bit-identical by construction — the final statistics match
    /// the naive cycle loop exactly for every seed (enforced by
    /// `tests/fast_forward_equivalence.rs`) — so this defaults to `true`;
    /// the knob exists to make that equivalence testable and to aid
    /// debugging of the horizon computation itself.
    pub fast_forward: bool,
    /// Event-driven kernel: instead of recomputing a global event horizon
    /// and stepping through dense stretches, every layer posts its next
    /// actionable cycle once (core runway wakes, fill deliveries, per-shard
    /// DRAM readiness bounds, DMA beats) and is only re-evaluated when that
    /// cycle arrives or a dependency invalidates the bound. Bit-identical to
    /// both the naive loop and the horizon loop (enforced by
    /// `tests/fast_forward_equivalence.rs`); defaults to `true`. Only
    /// consulted when [`SystemConfig::fast_forward`] is set — with
    /// `fast_forward` off the kernel polls every cycle regardless.
    pub event_driven: bool,
    /// Worker threads for the backend shards. With more than one thread, the
    /// due DRAM ticks of the block-interleaved shards (which share no state)
    /// run on a persistent worker pool, with a deterministic barrier at the
    /// 2:5 clock-crossing boundary and completions joined in shard order —
    /// `SimStats` is bit-identical for any thread count. Only pays off with
    /// several shards (`num_channels`) on several physical cores; defaults
    /// to 1 (fully sequential, no pool).
    pub threads: usize,
    /// Telemetry layers for this run: interval time-series sampling, span
    /// tracing, and the kernel self-profiler. Defaults to everything off,
    /// which is guaranteed free on the tick path and leaves `SimStats`
    /// bit-identical (`tests/telemetry_equivalence.rs`). Systems with any
    /// layer active refuse to snapshot (`SimError::Snapshot`).
    pub telemetry: TelemetryConfig,
}

impl SystemConfig {
    /// Baseline configuration for `workload` (Table 2 plus the calibrated
    /// workload spec).
    #[must_use]
    pub fn baseline(workload: Workload) -> Self {
        let spec = workload.spec();
        let mut mc = McConfig::baseline();
        mc.num_cores = spec.cores;
        Self {
            workload: spec,
            mix: None,
            source: WorkloadSource::Synthetic,
            trace_record: None,
            core: CoreConfig::default(),
            l2: L2Config::baseline(),
            mc,
            energy: EnergyParams::ddr3_1600(),
            num_channels: 1,
            seed: 1,
            warmup_cpu_cycles: 250_000,
            measure_cpu_cycles: 1_000_000,
            functional_warmup: true,
            scale_scheduler_time_constants: true,
            fast_forward: true,
            event_driven: true,
            threads: 1,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Baseline configuration driving a multi-tenant `mix` (Table 2 system
    /// parameters; `workload` mirrors tenant 0 for labelling).
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty.
    #[must_use]
    pub fn mixed(mix: MixSpec) -> Self {
        let mut cfg = Self::baseline(mix.tenant(0).workload.workload);
        cfg.workload = mix.tenant(0).workload;
        cfg.mix = Some(mix);
        cfg.mc.num_cores = mix.total_cores();
        cfg
    }

    /// The tenancy in effect: the explicit mix, or the single workload as a
    /// solo tenant-0 mix.
    #[must_use]
    pub fn tenancy(&self) -> MixSpec {
        self.mix.unwrap_or_else(|| MixSpec::solo(self.workload))
    }

    /// Total cores over all tenants.
    #[must_use]
    pub fn core_count(&self) -> usize {
        match &self.mix {
            Some(mix) => mix.total_cores(),
            None => self.workload.cores,
        }
    }

    /// Total simulated CPU cycles (warm-up plus measurement).
    #[must_use]
    pub fn total_cpu_cycles(&self) -> u64 {
        self.warmup_cpu_cycles + self.measure_cpu_cycles
    }

    /// DRAM cycles corresponding to `cpu_cycles` under the fixed clock ratio.
    #[must_use]
    pub fn cpu_to_dram_cycles(cpu_cycles: u64) -> u64 {
        cpu_cycles * DRAM_CYCLES_PER_5_CPU_CYCLES / 5
    }

    /// The effective memory-controller configuration: scheduler time
    /// constants scaled to the run length when requested, and the QoS
    /// layer's tenant metadata (count, latency-criticality, bandwidth
    /// weights defaulting to core counts) derived from the mix. Callers only
    /// choose `mc.qos.policy`; everything else follows the tenancy.
    #[must_use]
    pub fn effective_mc(&self) -> McConfig {
        let mut mc = self.mc;
        mc.num_cores = self.core_count();
        let tenancy = self.tenancy();
        mc.qos.tenants = tenancy.tenant_count();
        for (t, tenant) in tenancy.tenants().enumerate() {
            mc.qos.latency_critical[t] = tenant.latency_critical;
            #[allow(clippy::cast_possible_truncation)]
            {
                mc.qos.share[t] = tenant.cores() as u32;
            }
        }
        if self.scale_scheduler_time_constants {
            if let SchedulerKind::Atlas(mut atlas) = mc.scheduler {
                let total_dram = Self::cpu_to_dram_cycles(self.total_cpu_cycles()).max(1);
                // Aim for roughly 10 quanta over the whole run, as a stand-in
                // for the hundreds of quanta of a full-length simulation. The
                // starvation threshold is deliberately *not* scaled: its ratio
                // to the memory latency (not to the quantum) is what bounds
                // how long a deprioritized core can be denied service, which
                // is the effect the paper attributes ATLAS's losses to.
                let target_quantum = (total_dram / 10).max(10_000);
                if target_quantum < atlas.quantum {
                    atlas.quantum = target_quantum;
                    mc.scheduler = SchedulerKind::Atlas(atlas);
                }
            }
        }
        mc
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.workload.validate()?;
        if let Some(mix) = &self.mix {
            mix.validate()?;
        }
        self.l2.validate()?;
        // Validate the controller configuration as it will actually be
        // built, with the tenant metadata filled in from the mix.
        self.effective_mc().validate()?;
        if self.num_channels == 0 {
            return Err("num_channels must be non-zero".to_owned());
        }
        if self.num_channels > 64 {
            return Err(format!(
                "num_channels ({}) is unreasonably large (max 64)",
                self.num_channels
            ));
        }
        if self.measure_cpu_cycles == 0 {
            return Err("measure_cpu_cycles must be non-zero".to_owned());
        }
        if self.threads == 0 {
            return Err("threads must be non-zero".to_owned());
        }
        if self.threads > 64 {
            return Err(format!(
                "threads ({}) is unreasonably large (max 64)",
                self.threads
            ));
        }
        self.telemetry.validate()?;
        if let (WorkloadSource::Trace(replay), Some(record)) = (&self.source, &self.trace_record) {
            if replay == record {
                return Err(format!(
                    "trace_record and the replay source are the same file `{}`",
                    replay.display()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_memctrl::AtlasConfig;

    #[test]
    fn baseline_validates_for_every_workload() {
        for w in Workload::all() {
            let cfg = SystemConfig::baseline(w);
            cfg.validate().unwrap();
            assert_eq!(cfg.mc.num_cores, w.spec().cores);
        }
    }

    #[test]
    fn clock_ratio_is_2_to_5() {
        assert_eq!(SystemConfig::cpu_to_dram_cycles(5), 2);
        assert_eq!(SystemConfig::cpu_to_dram_cycles(1_000_000), 400_000);
    }

    #[test]
    fn atlas_quantum_is_scaled_to_run_length() {
        let mut cfg = SystemConfig::baseline(Workload::MapReduce);
        cfg.mc.scheduler = SchedulerKind::Atlas(AtlasConfig::default());
        let effective = cfg.effective_mc();
        match effective.scheduler {
            SchedulerKind::Atlas(a) => {
                assert!(a.quantum < AtlasConfig::default().quantum);
                let total_dram = SystemConfig::cpu_to_dram_cycles(cfg.total_cpu_cycles());
                assert!(a.quantum <= total_dram / 5);
            }
            other => panic!("expected ATLAS, got {other:?}"),
        }
    }

    #[test]
    fn scaling_can_be_disabled() {
        let mut cfg = SystemConfig::baseline(Workload::MapReduce);
        cfg.mc.scheduler = SchedulerKind::Atlas(AtlasConfig::default());
        cfg.scale_scheduler_time_constants = false;
        match cfg.effective_mc().scheduler {
            SchedulerKind::Atlas(a) => assert_eq!(a.quantum, AtlasConfig::default().quantum),
            other => panic!("expected ATLAS, got {other:?}"),
        }
    }

    #[test]
    fn mixed_config_derives_tenancy_metadata() {
        use cloudmc_memctrl::QosPolicyKind;
        use cloudmc_workloads::TenantSpec;
        let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
            .and(TenantSpec::batch(Workload::TpchQ6, 8));
        let mut cfg = SystemConfig::mixed(mix);
        cfg.mc.qos.policy = QosPolicyKind::StaticPartition;
        cfg.validate().unwrap();
        assert_eq!(cfg.core_count(), 16);
        assert_eq!(cfg.tenancy().tenant_count(), 2);
        let mc = cfg.effective_mc();
        assert_eq!(mc.num_cores, 16);
        assert_eq!(mc.qos.tenants, 2);
        assert_eq!(mc.qos.latency_critical[..2], [true, false]);
        assert_eq!(mc.qos.share[..2], [8, 8]);
        // Solo configs reduce to a one-tenant mix with QoS inert.
        let solo = SystemConfig::baseline(Workload::WebSearch);
        assert_eq!(solo.tenancy().tenant_count(), 1);
        assert_eq!(solo.effective_mc().qos.tenants, 1);
    }

    #[test]
    fn invalid_mix_fails_validation() {
        use cloudmc_workloads::TenantSpec;
        let mut bad = Workload::WebSearch.spec();
        bad.cores = 4;
        bad.burstiness = 5.0;
        let mix = MixSpec::new(TenantSpec::batch(Workload::TpchQ6, 8)).and(TenantSpec {
            workload: bad,
            latency_critical: false,
        });
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.mix = Some(mix);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("tenant 1"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_measurement() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        cfg.measure_cpu_cycles = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_recording_over_the_replay_source() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        assert_eq!(cfg.source, WorkloadSource::Synthetic);
        assert_eq!(cfg.trace_record, None);
        cfg.source = WorkloadSource::Trace("/tmp/a.trace".into());
        cfg.trace_record = Some("/tmp/a.trace".into());
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("same file"), "{err}");
        cfg.trace_record = Some("/tmp/b.trace".into());
        // Distinct paths pass config validation (the replay file is only
        // opened when the system is built).
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_bounds_channel_count() {
        let mut cfg = SystemConfig::baseline(Workload::WebSearch);
        assert_eq!(cfg.num_channels, 1);
        cfg.num_channels = 0;
        assert!(cfg.validate().is_err());
        cfg.num_channels = 65;
        assert!(cfg.validate().is_err());
        cfg.num_channels = 4;
        cfg.validate().unwrap();
    }
}
