//! # cloudmc-sim
//!
//! Full-system cycle-level simulator for the `cloudmc` reproduction of
//! *"Memory Controller Design Under Cloud Workloads"* (IISWC 2016): it wires
//! the in-order cores and caches of [`cloudmc_cpu`], the workload models of
//! [`cloudmc_workloads`], the memory controller of [`cloudmc_memctrl`] and
//! the DRAM devices of [`cloudmc_dram`] into one simulated 16-core pod, and
//! provides the warm-up/measure methodology and the metrics the paper
//! reports.
//!
//! ```
//! use cloudmc_sim::{Simulator, SystemConfig};
//! use cloudmc_workloads::Workload;
//!
//! let mut cfg = SystemConfig::baseline(Workload::DataServing);
//! cfg.warmup_cpu_cycles = 2_000;
//! cfg.measure_cpu_cycles = 10_000;
//! let stats = Simulator::new(cfg).unwrap().run();
//! println!("user IPC = {:.2}", stats.user_ipc());
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod config;
pub mod error;
pub mod frontend;
pub mod kernel;
pub(crate) mod pool;
pub mod runner;
pub mod snapshot;
pub mod stats;
pub mod system;

pub use backend::Backend;
pub use config::{SystemConfig, DRAM_CYCLES_PER_5_CPU_CYCLES};
pub use error::SimError;
pub use frontend::{Frontend, FrontendEvent};
pub use kernel::{ClockCrossing, EventQueue, FillQueue, Tick};
pub use runner::{default_threads, run_all, run_all_with_threads};
pub use snapshot::{config_fingerprint, Snapshot};
pub use stats::{mean, SimStats};
pub use system::{run_system, Simulator, System};

// The workload-source selector is part of `SystemConfig`'s surface;
// re-exported so simulator users don't need a direct `cloudmc-workloads`
// dependency to pick trace replay.
pub use cloudmc_workloads::WorkloadSource;
