//! Parallel execution of experiment sweeps.
//!
//! The paper's figures each require dozens of simulations (12 workloads x
//! several controller configurations). Runs are independent, so the harness
//! executes them on a pool of worker threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::SystemConfig;
use crate::stats::SimStats;
use crate::system::run_system;

/// Runs every configuration and returns the results in input order.
///
/// Failures (invalid configurations) are returned in place of the stats so a
/// single bad point does not abort a long sweep.
#[must_use]
pub fn run_all(configs: &[SystemConfig]) -> Vec<Result<SimStats, String>> {
    run_all_with_threads(configs, default_threads())
}

/// Number of worker threads used by [`run_all`].
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(1, 32)
}

/// Runs every configuration on at most `threads` worker threads, returning
/// results in input order.
#[must_use]
pub fn run_all_with_threads(
    configs: &[SystemConfig],
    threads: usize,
) -> Vec<Result<SimStats, String>> {
    let threads = threads.max(1).min(configs.len().max(1));
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(|cfg| run_system(cfg.clone())).collect();
    }
    // Work stealing over an atomic cursor: each worker claims the next
    // unclaimed configuration index and writes its result into the slot
    // reserved for it, so results come back in input order with no channels.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SimStats, String>>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(i) else { break };
                let result = run_system(cfg.clone());
                // simlint: allow(panic) poisoned mutex means a sibling panicked; propagate
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // simlint: allow(panic) poisoned mutex means a worker panicked; propagate
                .expect("result slot poisoned")
                .unwrap_or_else(|| Err("worker thread dropped the run".to_owned()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn tiny(workload: Workload, seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::baseline(workload);
        cfg.warmup_cpu_cycles = 2_000;
        cfg.measure_cpu_cycles = 20_000;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn results_come_back_in_input_order() {
        let configs = vec![
            tiny(Workload::WebSearch, 1),
            tiny(Workload::DataServing, 2),
            tiny(Workload::TpchQ6, 3),
        ];
        let results = run_all_with_threads(&configs, 3);
        assert_eq!(results.len(), 3);
        let stats: Vec<_> = results.into_iter().map(Result::unwrap).collect();
        assert_eq!(stats[0].workload, "WS");
        assert_eq!(stats[1].workload, "DS");
        assert_eq!(stats[2].workload, "TPCH-Q6");
    }

    #[test]
    fn parallel_matches_serial() {
        let configs = vec![tiny(Workload::WebSearch, 7), tiny(Workload::WebSearch, 8)];
        let serial = run_all_with_threads(&configs, 1);
        let parallel = run_all_with_threads(&configs, 2);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(
                s.as_ref().unwrap().user_instructions,
                p.as_ref().unwrap().user_instructions
            );
        }
    }

    #[test]
    fn invalid_configuration_reports_error_without_aborting() {
        let mut bad = tiny(Workload::WebSearch, 1);
        bad.measure_cpu_cycles = 0;
        let configs = vec![tiny(Workload::WebSearch, 1), bad];
        let results = run_all(&configs);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
