//! Typed errors for simulation runs.
//!
//! The simulator never panics on bad input or on modeled hardware failure:
//! configuration problems, trace I/O problems and fail-stop uncorrectable
//! memory errors all surface as [`SimError`] values from
//! [`Simulator::try_run`](crate::Simulator::try_run) so harnesses (the
//! `repro` binary, CI sweeps, library users) can report them and move on to
//! the next run.

/// An error surfaced by a simulation run instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration failed validation before the run started.
    Config(String),
    /// The replay trace was unreadable or malformed mid-run, or the capture
    /// sink failed; the run's statistics would be garbage.
    Trace(String),
    /// A detected-uncorrectable memory error occurred under the fail-stop
    /// policy ([`UncorrectablePolicy::FailStop`]). The message pins the
    /// channel/rank/bank/row coordinates, the request id and the DRAM cycle
    /// of the first such error.
    ///
    /// [`UncorrectablePolicy::FailStop`]: cloudmc_memctrl::UncorrectablePolicy::FailStop
    Uncorrectable(String),
    /// A checkpoint could not be taken or restored: the bytes were truncated
    /// or corrupted (the message names the failing section and byte offset),
    /// the snapshot was taken under a different configuration (fingerprint
    /// mismatch), or the system holds state the format cannot capture (trace
    /// taps, boxed plugins, an active telemetry sink).
    Snapshot(String),
    /// Writing a telemetry output file (time series or span trace) failed;
    /// the in-memory series and spans are still intact but the on-disk
    /// artifact is incomplete.
    Telemetry(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Trace(msg) => write!(f, "trace I/O failed: {msg}"),
            Self::Uncorrectable(msg) => write!(f, "fail-stop: {msg}"),
            Self::Snapshot(msg) => write!(f, "snapshot: {msg}"),
            Self::Telemetry(msg) => write!(f, "telemetry I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for String {
    fn from(err: SimError) -> Self {
        err.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_each_variant() {
        assert_eq!(
            SimError::Config("bad".to_owned()).to_string(),
            "invalid configuration: bad"
        );
        assert_eq!(
            SimError::Trace("eof".to_owned()).to_string(),
            "trace I/O failed: eof"
        );
        assert!(SimError::Uncorrectable("rank 1".to_owned())
            .to_string()
            .starts_with("fail-stop: "));
        assert_eq!(
            SimError::Snapshot("bad magic".to_owned()).to_string(),
            "snapshot: bad magic"
        );
        assert_eq!(
            SimError::Telemetry("disk full".to_owned()).to_string(),
            "telemetry I/O failed: disk full"
        );
    }

    #[test]
    fn converts_into_string_for_legacy_callers() {
        let s: String = SimError::Trace("eof".to_owned()).into();
        assert_eq!(s, "trace I/O failed: eof");
    }
}
