//! The full-system cycle-level simulator: cores, caches, memory controller
//! and DRAM wired together.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudmc_cpu::{InOrderCore, SharedL2};
use cloudmc_memctrl::{AccessKind, McStats, MemoryController, MemoryRequest, RequestId};
use cloudmc_workloads::WorkloadStreams;

use crate::config::{SystemConfig, DRAM_CYCLES_PER_5_CPU_CYCLES};
use crate::stats::SimStats;

/// A memory read whose data is on its way back to a core.
#[derive(Debug, Clone, Copy)]
struct PendingFill {
    due_cpu_cycle: u64,
    core: usize,
    addr: u64,
}

/// A memory request waiting for space in the controller's queues.
#[derive(Debug, Clone, Copy)]
struct WaitingRequest {
    request: MemoryRequest,
}

/// Snapshot of all monotonically increasing counters, used to compute
/// measurement-window deltas after warm-up.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    cpu_cycles: u64,
    dram_cycles: u64,
    committed: Vec<u64>,
    mem_reads_sent: u64,
    mem_writes_sent: u64,
    mc: Option<McStats>,
    bus_busy: u64,
    dram_activates: u64,
    dram_reads: u64,
    dram_writes: u64,
    dram_refreshes: u64,
    dram_precharges: u64,
}

/// The simulated 16-core pod with its memory system.
///
/// # Examples
///
/// ```
/// use cloudmc_sim::{Simulator, SystemConfig};
/// use cloudmc_workloads::Workload;
///
/// let mut cfg = SystemConfig::baseline(Workload::WebSearch);
/// cfg.warmup_cpu_cycles = 5_000;
/// cfg.measure_cpu_cycles = 20_000;
/// let stats = Simulator::new(cfg).unwrap().run();
/// assert!(stats.user_ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    cores: Vec<InOrderCore>,
    streams: WorkloadStreams,
    l2: SharedL2,
    mc: MemoryController,
    rng: StdRng,
    cpu_cycle: u64,
    dram_cycle: u64,
    clock_acc: u64,
    next_request_id: RequestId,
    /// Outstanding off-chip reads: (request id, requesting core, address).
    outstanding_reads: Vec<(RequestId, usize, u64)>,
    /// L2-hit and memory fills scheduled for delivery to cores.
    fills: Vec<PendingFill>,
    /// Requests rejected by a full controller queue, retried each DRAM cycle.
    waiting: VecDeque<WaitingRequest>,
    dma_accumulator: f64,
    dma_cursor: u64,
    mem_reads_sent: u64,
    mem_writes_sent: u64,
    /// Off-chip reads broken down by address region (code, shared, hot,
    /// private); used by diagnostics and calibration tooling.
    reads_by_region: [u64; 4],
}

impl System {
    /// Builds the system described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Self, String> {
        cfg.validate()?;
        let mc = MemoryController::new(cfg.effective_mc())?;
        let streams = WorkloadStreams::from_spec(cfg.workload, cfg.seed);
        let cores = (0..cfg.workload.cores)
            .map(|i| InOrderCore::new(i, cfg.core))
            .collect();
        let mut system = Self {
            cores,
            streams,
            l2: SharedL2::new(cfg.l2),
            mc,
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD3A),
            cpu_cycle: 0,
            dram_cycle: 0,
            clock_acc: 0,
            next_request_id: 0,
            outstanding_reads: Vec::new(),
            fills: Vec::new(),
            waiting: VecDeque::new(),
            dma_accumulator: 0.0,
            dma_cursor: 0,
            mem_reads_sent: 0,
            reads_by_region: [0; 4],
            mem_writes_sent: 0,
            cfg,
        };
        if cfg.functional_warmup {
            system.prewarm();
        }
        Ok(system)
    }

    /// Functionally installs each core's instruction working set and hot data
    /// region into the L1s and the shared L2 (no timing is modelled).
    ///
    /// This mirrors the effect of the paper's one-billion-instruction warm-up:
    /// measurement starts with the code resident in the LLC so that the
    /// off-chip traffic seen by the memory controller is the steady-state
    /// data-miss stream, not a cold-start transient.
    fn prewarm(&mut self) {
        let block = 64u64;
        for core_idx in 0..self.cores.len() {
            let (code_base, code_size) = self.streams.stream(core_idx).code_region();
            for offset in (0..code_size).step_by(block as usize) {
                let addr = code_base + offset;
                self.cores[core_idx].prewarm(addr, true);
                self.l2.access(addr, false);
            }
            let (hot_base, hot_size) = self.streams.stream(core_idx).hot_region();
            for offset in (0..hot_size).step_by(block as usize) {
                let addr = hot_base + offset;
                self.cores[core_idx].prewarm(addr, false);
                self.l2.access(addr, false);
            }
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Committed user instructions per core so far.
    #[must_use]
    pub fn committed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(InOrderCore::committed).collect()
    }

    /// Performance counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> &cloudmc_cpu::CoreStats {
        self.cores[core].stats()
    }

    /// L1 instruction-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> &cloudmc_cpu::CacheStats {
        self.cores[core].l1i_stats()
    }

    /// L1 data-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> &cloudmc_cpu::CacheStats {
        self.cores[core].l1d_stats()
    }

    /// Aggregated shared-L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> cloudmc_cpu::CacheStats {
        self.l2.stats()
    }

    /// Controller statistics accumulated since reset.
    #[must_use]
    pub fn controller_stats(&self) -> McStats {
        self.mc.stats()
    }

    fn alloc_request_id(&mut self) -> RequestId {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Classifies an address into (code, shared, hot, private) for the
    /// diagnostic read breakdown.
    fn region_of(addr: u64) -> usize {
        if (0x2000_0000..0x4000_0000).contains(&addr) {
            0
        } else if (0x0400_0000..0x1400_0000).contains(&addr) {
            1
        } else if addr >= 0x4000_0000 && (addr & 0x0FFF_FFFF) >= 0x0FFF_C000 {
            2
        } else {
            3
        }
    }

    /// Off-chip reads sent so far, broken down as (code, shared, hot, private).
    #[must_use]
    pub fn reads_by_region(&self) -> [u64; 4] {
        self.reads_by_region
    }

    fn send_memory_read(&mut self, core: usize, addr: u64) {
        let id = self.alloc_request_id();
        self.mem_reads_sent += 1;
        self.reads_by_region[Self::region_of(addr)] += 1;
        self.outstanding_reads.push((id, core, addr));
        let request = MemoryRequest::new(id, AccessKind::Read, addr, core, self.dram_cycle);
        self.try_enqueue(request);
    }

    fn send_memory_write(&mut self, core: usize, addr: u64, dma: bool) {
        let id = self.alloc_request_id();
        self.mem_writes_sent += 1;
        let request = if dma {
            MemoryRequest::dma(id, AccessKind::Write, addr, core, self.dram_cycle)
        } else {
            MemoryRequest::new(id, AccessKind::Write, addr, core, self.dram_cycle)
        };
        self.try_enqueue(request);
    }

    fn send_dma_read(&mut self, core: usize, addr: u64) {
        let id = self.alloc_request_id();
        self.mem_reads_sent += 1;
        let request = MemoryRequest::dma(id, AccessKind::Read, addr, core, self.dram_cycle);
        self.try_enqueue(request);
    }

    fn try_enqueue(&mut self, request: MemoryRequest) {
        if let Err(rejected) = self.mc.enqueue(request, self.dram_cycle) {
            self.waiting.push_back(WaitingRequest { request: rejected });
        }
    }

    fn drain_waiting(&mut self) {
        let mut remaining = VecDeque::new();
        while let Some(w) = self.waiting.pop_front() {
            if self.mc.can_accept(w.request.addr, w.request.kind) {
                // Preserve the original arrival time: queueing delay caused by
                // controller backpressure is part of the observed latency.
                self.mc
                    .enqueue(w.request, self.dram_cycle)
                    .expect("can_accept was just checked");
            } else {
                remaining.push_back(w);
            }
        }
        self.waiting = remaining;
    }

    /// Routes one L1-level request (refill or write-back) through the L2.
    fn handle_core_request(&mut self, core: usize, addr: u64, is_writeback: bool) {
        let outcome = self.l2.access(addr, is_writeback);
        if let Some(victim) = outcome.writeback {
            self.send_memory_write(core, victim, false);
        }
        if is_writeback {
            // L1 write-backs terminate at the L2 (write-allocate without
            // fetch); any capacity effect was handled via the victim above.
            return;
        }
        if outcome.hit {
            self.fills.push(PendingFill {
                due_cpu_cycle: self.cpu_cycle + outcome.latency,
                core,
                addr,
            });
        } else {
            self.send_memory_read(core, addr);
        }
    }

    fn inject_dma(&mut self) {
        let rate = self.cfg.workload.dma_per_kcycle;
        if rate <= 0.0 {
            return;
        }
        self.dma_accumulator += rate / 1000.0;
        while self.dma_accumulator >= 1.0 {
            self.dma_accumulator -= 1.0;
            let core = self.rng.gen_range(0..self.cores.len());
            // DMA engines stream sequentially through I/O buffers in the
            // shared region: mostly the next cache block, occasionally a jump
            // to a fresh buffer. This gives DMA traffic the high row-buffer
            // locality the paper observes for Web Frontend's extra accesses.
            if self.dma_cursor == 0 || self.rng.gen_bool(1.0 / 24.0) {
                let base = 0x0400_0000u64;
                self.dma_cursor = base + self.rng.gen_range(0..0x0100_0000u64 / 8192) * 8192;
            } else {
                self.dma_cursor += 64;
            }
            let addr = self.dma_cursor;
            if self.rng.gen_bool(0.5) {
                self.send_dma_read(core, addr);
            } else {
                self.send_memory_write(core, addr, true);
            }
        }
    }

    fn dram_tick(&mut self) {
        self.drain_waiting();
        let completed = self.mc.tick(self.dram_cycle);
        for done in completed {
            if done.request.kind.is_read() {
                if let Some(pos) = self
                    .outstanding_reads
                    .iter()
                    .position(|&(id, _, _)| id == done.request.id)
                {
                    let (_, core, addr) = self.outstanding_reads.swap_remove(pos);
                    // Data returns through the crossbar to the waiting core.
                    self.fills.push(PendingFill {
                        due_cpu_cycle: self.cpu_cycle + u64::from(self.cfg.l2.crossbar_latency as u32),
                        core,
                        addr,
                    });
                }
            }
        }
        self.dram_cycle += 1;
    }

    fn deliver_fills(&mut self) {
        let mut i = 0;
        while i < self.fills.len() {
            if self.fills[i].due_cpu_cycle <= self.cpu_cycle {
                let fill = self.fills.swap_remove(i);
                self.cores[fill.core].fill(fill.addr);
            } else {
                i += 1;
            }
        }
    }

    /// Advances the whole system by one CPU cycle.
    pub fn step(&mut self) {
        self.deliver_fills();
        for core_idx in 0..self.cores.len() {
            let requests = {
                let stream = self.streams.stream_mut(core_idx);
                let mut source = || stream.next_op();
                self.cores[core_idx].tick(&mut source)
            };
            for request in requests {
                self.handle_core_request(core_idx, request.addr, request.write);
            }
        }
        self.inject_dma();
        self.clock_acc += DRAM_CYCLES_PER_5_CPU_CYCLES;
        while self.clock_acc >= 5 {
            self.clock_acc -= 5;
            self.dram_tick();
        }
        self.cpu_cycle += 1;
    }

    /// Runs `cycles` CPU cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut bus_busy = 0;
        let mut activates = 0;
        let mut reads = 0;
        let mut writes = 0;
        let mut refreshes = 0;
        let mut precharges = 0;
        for ch in 0..self.mc.channel_count() {
            let s = self.mc.channel_device_stats(ch);
            bus_busy += s.data_bus_busy_cycles;
            activates += s.activates;
            reads += s.reads;
            writes += s.writes;
            refreshes += s.refreshes;
            precharges += s.precharges;
        }
        Snapshot {
            cpu_cycles: self.cpu_cycle,
            dram_cycles: self.dram_cycle,
            committed: self.committed_per_core(),
            mem_reads_sent: self.mem_reads_sent,
            mem_writes_sent: self.mem_writes_sent,
            mc: Some(self.mc.stats()),
            bus_busy,
            dram_activates: activates,
            dram_reads: reads,
            dram_writes: writes,
            dram_refreshes: refreshes,
            dram_precharges: precharges,
        }
    }

    fn stats_since(&self, start: &Snapshot) -> SimStats {
        let cfg = &self.cfg;
        let end = self.snapshot();
        let mc_end = end.mc.clone().unwrap_or_default();
        let mc_start = start.mc.clone().unwrap_or_default();
        let cpu_cycles = end.cpu_cycles - start.cpu_cycles;
        let dram_cycles = end.dram_cycles - start.dram_cycles;
        let instructions_per_core: Vec<u64> = end
            .committed
            .iter()
            .zip(start.committed.iter().chain(std::iter::repeat(&0)))
            .map(|(e, s)| e - s)
            .collect();
        let user_instructions: u64 = instructions_per_core.iter().sum();
        let reads_completed = mc_end.reads_completed - mc_start.reads_completed;
        let writes_completed = mc_end.writes_completed - mc_start.writes_completed;
        let read_latency_sum = mc_end.total_read_latency - mc_start.total_read_latency;
        let avg_read_latency_dram = if reads_completed == 0 {
            0.0
        } else {
            read_latency_sum as f64 / reads_completed as f64
        };
        let hits = mc_end.row_hits - mc_start.row_hits;
        let misses = mc_end.row_misses - mc_start.row_misses;
        let conflicts = mc_end.row_conflicts - mc_start.row_conflicts;
        let total_outcomes = hits + misses + conflicts;
        let row_buffer_hit_rate = if total_outcomes == 0 {
            0.0
        } else {
            hits as f64 / total_outcomes as f64
        };
        let mut single = 0u64;
        let mut activations_closed = 0u64;
        for (i, (e, s)) in mc_end
            .activation_reuse
            .iter()
            .zip(mc_start.activation_reuse.iter().chain(std::iter::repeat(&0)))
            .enumerate()
        {
            let d = e - s;
            activations_closed += d;
            if i == 1 {
                single = d;
            }
        }
        let single_access_activation_fraction = if activations_closed == 0 {
            0.0
        } else {
            single as f64 / activations_closed as f64
        };
        let queue_samples = mc_end.queue_samples - mc_start.queue_samples;
        let avg_read_queue_len = if queue_samples == 0 {
            0.0
        } else {
            (mc_end.read_queue_occupancy_sum - mc_start.read_queue_occupancy_sum) as f64
                / queue_samples as f64
        };
        let avg_write_queue_len = if queue_samples == 0 {
            0.0
        } else {
            (mc_end.write_queue_occupancy_sum - mc_start.write_queue_occupancy_sum) as f64
                / queue_samples as f64
        };
        let bus_busy = end.bus_busy - start.bus_busy;
        let bandwidth_utilization = if dram_cycles == 0 {
            0.0
        } else {
            bus_busy as f64 / (dram_cycles * cfg.mc.dram.channels as u64) as f64
        };
        let mem_reads_sent = end.mem_reads_sent - start.mem_reads_sent;
        let mem_writes_sent = end.mem_writes_sent - start.mem_writes_sent;
        let l2_mpki = if user_instructions == 0 {
            0.0
        } else {
            mem_reads_sent as f64 * 1000.0 / user_instructions as f64
        };
        let activations = end.dram_activates - start.dram_activates;
        let activations_per_kilo_instr = if user_instructions == 0 {
            0.0
        } else {
            activations as f64 * 1000.0 / user_instructions as f64
        };
        // Energy estimate (extension): event-based model over the deltas.
        let energy_model = cloudmc_dram::EnergyModel::default();
        let delta_channel_stats = cloudmc_dram::ChannelStats {
            activates: activations,
            precharges: end.dram_precharges - start.dram_precharges,
            reads: end.dram_reads - start.dram_reads,
            writes: end.dram_writes - start.dram_writes,
            refreshes: end.dram_refreshes - start.dram_refreshes,
            data_bus_busy_cycles: bus_busy,
        };
        let breakdown = energy_model.breakdown(
            &delta_channel_stats,
            dram_cycles.max(1) * cfg.mc.dram.channels as u64,
            bus_busy * 4,
            &cfg.mc.dram.timing,
        );
        let timing = cfg.mc.dram.timing;
        SimStats {
            workload: cfg.workload.workload.acronym().to_owned(),
            scheduler: cfg.mc.scheduler.label().to_owned(),
            page_policy: cfg.mc.page_policy.to_string(),
            mapping: cfg.mc.mapping.to_string(),
            channels: cfg.mc.dram.channels,
            cores: cfg.workload.cores,
            cpu_cycles,
            dram_cycles,
            user_instructions,
            instructions_per_core,
            memory_reads_sent: mem_reads_sent,
            memory_writes_sent: mem_writes_sent,
            reads_completed,
            writes_completed,
            avg_read_latency_dram,
            avg_read_latency_ns: timing.cycles_to_ns(avg_read_latency_dram.round() as u64),
            row_buffer_hit_rate,
            single_access_activation_fraction,
            avg_read_queue_len,
            avg_write_queue_len,
            bandwidth_utilization,
            l2_mpki,
            activations_per_kilo_instr,
            dram_energy_mj: breakdown.total_pj() * 1e-9,
        }
    }
}

/// Warm-up + measurement driver around [`System`], following the SimFlex-like
/// methodology of the paper at reduced scale.
#[derive(Debug)]
pub struct Simulator {
    system: System,
}

impl Simulator {
    /// Builds the simulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Self, String> {
        Ok(Self {
            system: System::new(cfg)?,
        })
    }

    /// Runs warm-up then measurement and returns the measured statistics.
    #[must_use]
    pub fn run(mut self) -> SimStats {
        let warmup = self.system.cfg.warmup_cpu_cycles;
        let measure = self.system.cfg.measure_cpu_cycles;
        self.system.run_cycles(warmup);
        let snapshot = self.system.snapshot();
        self.system.run_cycles(measure);
        self.system.stats_since(&snapshot)
    }

    /// Access to the underlying system (e.g. to inspect state mid-run).
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }
}

/// Convenience: run one workload under one controller configuration.
///
/// # Errors
///
/// Returns a description of the problem if the configuration is invalid.
pub fn run_system(cfg: SystemConfig) -> Result<SimStats, String> {
    Ok(Simulator::new(cfg)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_memctrl::{PagePolicyKind, SchedulerKind};
    use cloudmc_workloads::Workload;

    fn small(workload: Workload) -> SystemConfig {
        let mut cfg = SystemConfig::baseline(workload);
        cfg.warmup_cpu_cycles = 10_000;
        cfg.measure_cpu_cycles = 60_000;
        cfg
    }

    #[test]
    fn baseline_run_produces_sane_metrics() {
        let stats = run_system(small(Workload::DataServing)).unwrap();
        assert!(stats.user_ipc() > 0.5, "aggregate IPC {}", stats.user_ipc());
        assert!(stats.user_ipc() <= 16.0);
        assert!(stats.reads_completed > 50, "reads {}", stats.reads_completed);
        assert!(stats.avg_read_latency_dram > 20.0);
        assert!(stats.row_buffer_hit_rate >= 0.0 && stats.row_buffer_hit_rate <= 1.0);
        assert!(stats.bandwidth_utilization > 0.0 && stats.bandwidth_utilization < 1.0);
        assert!(stats.l2_mpki > 0.5);
        assert!(stats.dram_energy_mj > 0.0);
        assert_eq!(stats.cores, 16);
        assert_eq!(stats.cpu_cycles, 60_000);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = run_system(small(Workload::WebSearch)).unwrap();
        let b = run_system(small(Workload::WebSearch)).unwrap();
        assert_eq!(a.user_instructions, b.user_instructions);
        assert_eq!(a.reads_completed, b.reads_completed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_system(small(Workload::WebSearch)).unwrap();
        let mut cfg = small(Workload::WebSearch);
        cfg.seed = 99;
        let b = run_system(cfg).unwrap();
        assert_ne!(a.user_instructions, b.user_instructions);
    }

    #[test]
    fn web_frontend_uses_eight_cores_and_injects_dma() {
        let stats = run_system(small(Workload::WebFrontend)).unwrap();
        assert_eq!(stats.cores, 8);
        assert_eq!(stats.instructions_per_core.len(), 8);
    }

    #[test]
    fn all_schedulers_run_end_to_end() {
        for sched in SchedulerKind::paper_set() {
            let mut cfg = small(Workload::WebSearch);
            cfg.mc.scheduler = sched;
            let stats = run_system(cfg).unwrap();
            assert!(
                stats.user_ipc() > 0.1,
                "{} produced IPC {}",
                sched.label(),
                stats.user_ipc()
            );
        }
    }

    #[test]
    fn all_page_policies_run_end_to_end() {
        for policy in PagePolicyKind::paper_set() {
            let mut cfg = small(Workload::TpchQ6);
            cfg.mc.page_policy = policy;
            let stats = run_system(cfg).unwrap();
            assert!(stats.reads_completed > 0, "{policy} completed no reads");
        }
    }

    #[test]
    fn multi_channel_configurations_run() {
        for channels in [1usize, 2, 4] {
            let mut cfg = small(Workload::TpchQ6);
            cfg.mc.dram.channels = channels;
            let stats = run_system(cfg).unwrap();
            assert_eq!(stats.channels, channels);
            assert!(stats.user_ipc() > 0.1);
        }
    }

    #[test]
    fn close_page_policy_kills_row_hits() {
        let mut open = small(Workload::MediaStreaming);
        open.mc.page_policy = PagePolicyKind::OpenAdaptive;
        let mut close = small(Workload::MediaStreaming);
        close.mc.page_policy = PagePolicyKind::Close;
        let open_stats = run_system(open).unwrap();
        let close_stats = run_system(close).unwrap();
        assert!(
            close_stats.row_buffer_hit_rate < open_stats.row_buffer_hit_rate,
            "close {} vs open {}",
            close_stats.row_buffer_hit_rate,
            open_stats.row_buffer_hit_rate
        );
    }
}
