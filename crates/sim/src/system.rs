//! The full-system simulator: the [`kernel`](crate::kernel) composing a
//! CPU-side [`Frontend`] with a memory-side [`Backend`].
//!
//! [`System`] owns the cross-domain state — request-id allocation, the
//! [`FillQueue`] of data on its way back to cores, and the hash-indexed map
//! of outstanding off-chip reads — and advances the two clock domains through
//! [`ClockCrossing`]. All component behaviour lives in the frontend (cores,
//! caches, workload streams, DMA) and the backend (controller shards, DRAM).

use std::collections::HashMap;
use std::time::Instant;

use cloudmc_memctrl::{
    AccessKind, CompletedRequest, McStats, MemoryRequest, RequestId, RowBufferOutcome, MAX_TENANTS,
};
use cloudmc_telemetry::{
    KernelPhase, KernelProfile, KernelProfiler, SpanAccess, SpanOutcome, SpanRecord,
    TelemetrySample,
};

use crate::backend::Backend;
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::frontend::{Frontend, FrontendEvent};
use crate::kernel::{ClockCrossing, FillQueue, Tick};
use crate::snapshot::{config_fingerprint, Snapshot};
use crate::stats::SimStats;

/// A read that left the chip and has not returned yet.
#[derive(Debug, Clone, Copy)]
struct OutstandingRead {
    core: usize,
    addr: u64,
}

/// Baseline of all monotonically increasing counters, used to compute
/// measurement-window deltas after warm-up. (Distinct from the public
/// [`Snapshot`](crate::Snapshot) checkpoint image: this captures *derived
/// aggregates* for subtraction, not restorable state.)
#[derive(Debug, Clone, Default)]
struct CounterBaseline {
    cpu_cycles: u64,
    dram_cycles: u64,
    committed: Vec<u64>,
    mem_reads_sent: u64,
    mem_writes_sent: u64,
    mc: Option<McStats>,
    device: cloudmc_dram::ChannelStats,
}

/// All mutable telemetry state, boxed behind one `Option` so a run with
/// telemetry off carries a single `None` pointer and the tick path never
/// allocates or branches into this block.
#[derive(Debug)]
struct TelemetryState {
    /// Time-series sample period (CPU cycles); 0 when the series is off.
    interval: u64,
    /// The next CPU cycle at which a time-series sample is due; `u64::MAX`
    /// when the series is off.
    next_sample: u64,
    /// Counter values at the previous sample boundary (or system build),
    /// subtracted from the current values to produce windowed deltas.
    last: CounterBaseline,
    series: Vec<TelemetrySample>,
    /// Span-trace sampling period (request ids); 0 when tracing is off.
    span_every: u64,
    /// Backend shard of each sampled request still in flight, keyed by
    /// request id (the shard index is erased by address localization, so it
    /// is captured at dispatch).
    pending_spans: HashMap<RequestId, usize>,
    spans: Vec<SpanRecord>,
    profiler: Option<KernelProfiler>,
}

impl TelemetryState {
    fn new(cfg: &cloudmc_telemetry::TelemetryConfig, last: CounterBaseline) -> Self {
        Self {
            interval: cfg.sample_interval,
            next_sample: if cfg.sample_interval > 0 {
                cfg.sample_interval
            } else {
                u64::MAX
            },
            last,
            series: Vec::new(),
            span_every: cfg.span_sample_every,
            pending_spans: HashMap::new(),
            spans: Vec::new(),
            profiler: cfg.profile_kernel.then(KernelProfiler::default),
        }
    }
}

/// The simulated 16-core pod with its memory system.
///
/// # Examples
///
/// ```
/// use cloudmc_sim::{Simulator, SystemConfig};
/// use cloudmc_workloads::Workload;
///
/// let mut cfg = SystemConfig::baseline(Workload::WebSearch);
/// cfg.warmup_cpu_cycles = 5_000;
/// cfg.measure_cpu_cycles = 20_000;
/// let stats = Simulator::new(cfg).unwrap().run();
/// assert!(stats.user_ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    frontend: Frontend,
    backend: Backend,
    clock: ClockCrossing,
    fills: FillQueue,
    next_request_id: RequestId,
    /// Outstanding off-chip reads, indexed by request id: completion is an
    /// O(1) hash removal instead of the seed's O(outstanding) `Vec` scan.
    outstanding_reads: HashMap<RequestId, OutstandingRead>,
    mem_reads_sent: u64,
    mem_writes_sent: u64,
    /// Off-chip requests (reads plus writes) sent per tenant, for per-tenant
    /// request-conservation checks.
    mem_sent_per_tenant: [u64; MAX_TENANTS],
    /// Off-chip reads broken down by address region (code, shared, hot,
    /// private); used by diagnostics and calibration tooling.
    reads_by_region: [u64; 4],
    /// Reusable event buffers (one per clock domain).
    frontend_events: Vec<FrontendEvent>,
    completions: Vec<cloudmc_memctrl::CompletedRequest>,
    /// Telemetry state; `None` when every layer is off, in which case the
    /// per-step telemetry checks reduce to one pointer-is-null branch.
    telemetry: Option<Box<TelemetryState>>,
    /// Cached `cfg.telemetry.profile_kernel` so the hot loops can skip
    /// `Instant::now` without chasing the telemetry pointer.
    profile: bool,
}

impl System {
    /// Builds the system described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Self, String> {
        cfg.validate()?;
        let backend = Backend::new(&cfg)?;
        let mut frontend = Frontend::new(&cfg)?;
        if cfg.functional_warmup {
            frontend.prewarm();
        }
        let mut system = Self {
            frontend,
            backend,
            clock: ClockCrossing::new(),
            fills: FillQueue::new(),
            next_request_id: 0,
            outstanding_reads: HashMap::new(),
            mem_reads_sent: 0,
            mem_writes_sent: 0,
            mem_sent_per_tenant: [0; MAX_TENANTS],
            reads_by_region: [0; 4],
            frontend_events: Vec::new(),
            completions: Vec::new(),
            telemetry: None,
            profile: cfg.telemetry.profile_kernel,
            cfg,
        };
        if system.cfg.telemetry.is_active() {
            let baseline = system.counter_baseline();
            system.telemetry = Some(Box::new(TelemetryState::new(
                &system.cfg.telemetry,
                baseline,
            )));
        }
        Ok(system)
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn cpu_cycle(&self) -> u64 {
        self.clock.cpu_cycle()
    }

    /// Committed user instructions per core so far.
    #[must_use]
    pub fn committed_per_core(&self) -> Vec<u64> {
        self.frontend.committed_per_core()
    }

    /// Performance counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> &cloudmc_cpu::CoreStats {
        self.frontend.core_stats(core)
    }

    /// L1 instruction-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> &cloudmc_cpu::CacheStats {
        self.frontend.l1i_stats(core)
    }

    /// L1 data-cache counters of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> &cloudmc_cpu::CacheStats {
        self.frontend.l1d_stats(core)
    }

    /// Aggregated shared-L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> cloudmc_cpu::CacheStats {
        self.frontend.l2_stats()
    }

    /// Finishes the run's trace I/O: surfaces any replay error deferred
    /// mid-run, then flushes the capture sink of
    /// [`SystemConfig::trace_record`] (if any) and returns the number of
    /// records written (`Ok(None)` when the run was not recording). Must be
    /// called before a recorded file is replayed — dropping the system
    /// instead leaves the tail of the trace to `Drop`, which swallows write
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns the first replay read/parse error, the first capture write
    /// error, or the final capture flush error.
    pub fn finish_trace(&mut self) -> Result<Option<u64>, String> {
        self.frontend.finish_trace()
    }

    /// Whether the cores replay a recorded trace instead of the synthetic
    /// generators.
    #[must_use]
    pub fn is_replaying(&self) -> bool {
        self.frontend.is_replaying()
    }

    /// Controller statistics accumulated since reset, merged over all
    /// backend shards.
    #[must_use]
    pub fn controller_stats(&self) -> McStats {
        self.backend.stats()
    }

    /// The memory backend (shard routing, per-shard controllers).
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Memory read requests sent off-chip so far (demand plus DMA).
    #[must_use]
    pub fn memory_reads_sent(&self) -> u64 {
        self.mem_reads_sent
    }

    /// Memory write requests sent off-chip so far (write-backs plus DMA).
    #[must_use]
    pub fn memory_writes_sent(&self) -> u64 {
        self.mem_writes_sent
    }

    /// Memory requests (reads plus writes) sent off-chip so far, per tenant.
    #[must_use]
    pub fn memory_sent_per_tenant(&self) -> [u64; MAX_TENANTS] {
        self.mem_sent_per_tenant
    }

    /// Requests sent but not yet completed by the backend, wherever they
    /// currently wait (controller queues, DRAM, or retry buckets).
    #[must_use]
    pub fn requests_in_flight(&self) -> u64 {
        (self.backend.pending() + self.backend.retry_backlog()) as u64
    }

    /// Requests sent but not yet completed, per tenant (controller queues,
    /// DRAM in-flight, and retry buckets).
    #[must_use]
    pub fn requests_in_flight_per_tenant(&self) -> [u64; MAX_TENANTS] {
        self.backend.pending_per_tenant()
    }

    fn alloc_request_id(&mut self) -> RequestId {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Classifies an address into (code, shared, hot, private) for the
    /// diagnostic read breakdown.
    fn region_of(addr: u64) -> usize {
        if (0x2000_0000..0x4000_0000).contains(&addr) {
            0
        } else if (0x0400_0000..0x1400_0000).contains(&addr) {
            1
        } else if addr >= 0x4000_0000 && (addr & 0x0FFF_FFFF) >= 0x0FFF_C000 {
            2
        } else {
            3
        }
    }

    /// Off-chip reads sent so far, broken down as (code, shared, hot, private).
    #[must_use]
    pub fn reads_by_region(&self) -> [u64; 4] {
        self.reads_by_region
    }

    /// Hands one frontend event to the right destination: fills back into the
    /// fill queue, off-chip traffic into the backend.
    fn dispatch(&mut self, event: FrontendEvent) {
        let now_dram = self.clock.dram_cycle();
        match event {
            FrontendEvent::L2Hit {
                core,
                addr,
                ready_in,
            } => {
                self.fills
                    .push(self.clock.cpu_cycle() + ready_in, core, addr);
            }
            FrontendEvent::Read { core, tenant, addr } => {
                let id = self.alloc_request_id();
                self.mem_reads_sent += 1;
                self.mem_sent_per_tenant[tenant.min(MAX_TENANTS - 1)] += 1;
                self.reads_by_region[Self::region_of(addr)] += 1;
                self.outstanding_reads
                    .insert(id, OutstandingRead { core, addr });
                self.note_span_start(id, addr);
                self.backend.submit(
                    MemoryRequest::new(id, AccessKind::Read, addr, core, now_dram)
                        .with_tenant(tenant),
                    now_dram,
                );
            }
            FrontendEvent::Write {
                core,
                tenant,
                addr,
                dma,
            } => {
                let id = self.alloc_request_id();
                self.mem_writes_sent += 1;
                self.mem_sent_per_tenant[tenant.min(MAX_TENANTS - 1)] += 1;
                let request = if dma {
                    MemoryRequest::dma(id, AccessKind::Write, addr, core, now_dram)
                } else {
                    MemoryRequest::new(id, AccessKind::Write, addr, core, now_dram)
                };
                self.note_span_start(id, addr);
                self.backend.submit(request.with_tenant(tenant), now_dram);
            }
            FrontendEvent::DmaRead { core, tenant, addr } => {
                let id = self.alloc_request_id();
                self.mem_reads_sent += 1;
                self.mem_sent_per_tenant[tenant.min(MAX_TENANTS - 1)] += 1;
                self.note_span_start(id, addr);
                self.backend.submit(
                    MemoryRequest::dma(id, AccessKind::Read, addr, core, now_dram)
                        .with_tenant(tenant),
                    now_dram,
                );
            }
        }
    }

    /// Advances the whole system by one CPU cycle.
    pub fn step(&mut self) {
        let now_cpu = self.clock.cpu_cycle();
        let t0 = self.prof_start();

        // 1. Deliver data that reached its core this cycle.
        while let Some((core, addr)) = self.fills.pop_due(now_cpu) {
            self.frontend.fill(core, addr);
        }

        // 2. One frontend (CPU-domain) cycle.
        let mut events = std::mem::take(&mut self.frontend_events);
        events.clear();
        self.frontend.tick(now_cpu, &mut events);
        for event in events.drain(..) {
            self.dispatch(event);
        }
        self.frontend_events = events;
        self.prof_add(KernelPhase::Frontend, t0);
        let t0 = self.prof_start();

        // 3. As many backend (DRAM-domain) cycles as the clock ratio owes.
        for _ in 0..self.clock.accrue_cpu_cycle() {
            let now_dram = self.clock.dram_cycle();
            let mut completions = std::mem::take(&mut self.completions);
            completions.clear();
            self.backend.tick(now_dram, &mut completions);
            for done in completions.drain(..) {
                if done.request.kind.is_read() {
                    if let Some(read) = self.outstanding_reads.remove(&done.request.id) {
                        // Data returns through the crossbar to the waiting core.
                        let due = now_cpu + u64::from(self.cfg.l2.crossbar_latency as u32);
                        self.fills.push(due, read.core, read.addr);
                    }
                }
                self.note_span_completion(&done);
            }
            self.completions = completions;
            self.clock.complete_dram_tick();
        }
        self.prof_add(KernelPhase::Backend, t0);
        self.prof_cycles(1, 0);

        self.clock.complete_cpu_cycle();
    }

    /// Advances the whole system by the one CPU cycle the event kernel has
    /// proven non-empty: the event-driven counterpart of [`System::step`].
    /// The phase order within the cycle is identical (fills, frontend,
    /// accrued DRAM ticks) — only the *driving* differs: blocked cores are
    /// caught up on demand ([`Frontend::fill_at`] /
    /// [`Frontend::advance_to`]) instead of ticked, and only due backend
    /// shards run a full controller tick ([`Backend::tick_event`]).
    fn step_event(&mut self) {
        let now_cpu = self.clock.cpu_cycle();
        let t0 = self.prof_start();

        // 1. Deliver data that reached its core this cycle, catching each
        //    receiving core up to the present.
        while let Some((core, addr)) = self.fills.pop_due(now_cpu) {
            self.frontend.fill_at(core, addr, now_cpu);
        }

        // 2. Run exactly the cores whose action cycle is now, plus due DMA.
        let mut events = std::mem::take(&mut self.frontend_events);
        events.clear();
        self.frontend.advance_to(now_cpu, &mut events);
        for event in events.drain(..) {
            self.dispatch(event);
        }
        self.frontend_events = events;
        self.prof_add(KernelPhase::Frontend, t0);
        let t0 = self.prof_start();

        // 3. As many backend (DRAM-domain) cycles as the clock ratio owes.
        for _ in 0..self.clock.accrue_cpu_cycle() {
            let now_dram = self.clock.dram_cycle();
            let mut completions = std::mem::take(&mut self.completions);
            completions.clear();
            self.backend.tick_event(now_dram, &mut completions);
            for done in completions.drain(..) {
                if done.request.kind.is_read() {
                    if let Some(read) = self.outstanding_reads.remove(&done.request.id) {
                        let due = now_cpu + u64::from(self.cfg.l2.crossbar_latency as u32);
                        self.fills.push(due, read.core, read.addr);
                    }
                }
                self.note_span_completion(&done);
            }
            self.completions = completions;
            self.clock.complete_dram_tick();
        }
        self.prof_add(KernelPhase::Backend, t0);
        self.prof_cycles(1, 0);

        self.clock.complete_cpu_cycle();
    }

    /// Runs the system to CPU cycle `end` on the event kernel: every layer's
    /// posted next-actionable cycle (earliest fill delivery, earliest core
    /// action or DMA beat, earliest due backend shard mapped through the
    /// clock crossing) is consulted once per iteration, the clocks jump
    /// straight to the soonest one, and exactly that cycle is executed.
    /// Cores are left lazily behind the kernel clock throughout and synced
    /// once at `end`.
    fn run_event_driven(&mut self, end: u64) {
        while self.clock.cpu_cycle() < end {
            let now = self.clock.cpu_cycle();
            if now == self.next_sample_boundary() {
                // Every cycle below the boundary is executed (loop
                // invariant), so aligning the lazy cores here is pure
                // counter bookkeeping and the sampled counters read exactly
                // as the per-cycle kernels' would at this cycle.
                self.frontend.sync_to(now);
                self.take_sample();
                continue;
            }
            let t0 = self.prof_start();
            let fills = self.fills.next_due_cycle().unwrap_or(u64::MAX);
            let frontend = self.frontend.next_action_cycle();
            let backend = self
                .clock
                .cpu_cycle_of_dram_tick(self.backend.cached_next_due(self.clock.dram_cycle()));
            let target = fills
                .min(frontend)
                .min(backend)
                .min(end)
                .min(self.next_sample_boundary())
                .max(now);
            self.prof_add(KernelPhase::EventQueue, t0);
            if target > now {
                // Every cycle in [now, target) is provably eventless. Apply
                // the closed-form side effects the naive loop would have
                // produced — DRAM queue samples and both clocks; the lazy
                // frontend needs nothing, its cores catch up on demand.
                let cycles = target - now;
                let dram_ticks = self.clock.dram_ticks_within(cycles);
                if dram_ticks > 0 {
                    self.backend.skip_dram_cycles(dram_ticks);
                }
                self.clock.fast_forward(cycles);
                self.prof_cycles(0, cycles);
            } else {
                self.step_event();
            }
        }
        // The loop invariant guarantees no action below `end` is pending, so
        // aligning every core and DMA accumulator to `end` is pure counter
        // bookkeeping.
        self.frontend.sync_to(end);
        // A boundary landing exactly on `end` samples here, after the final
        // sync — the same cycle the per-step kernels sample it on.
        self.maybe_sample();
    }

    /// The earliest CPU cycle at or after the current one at which *any*
    /// layer can possibly act: a core consuming its stream or a DMA beat
    /// (frontend), a fill reaching its core (fill queue), or a DRAM-domain
    /// event (backend), mapped into the CPU domain through the clock
    /// crossing. Every cycle strictly before the returned one is provably a
    /// no-op apart from linear counter updates.
    fn next_event_cycle(&self) -> u64 {
        let now = self.clock.cpu_cycle();
        // Cheapest veto first: in dense phases a fill is due almost every
        // cycle, and the heap peek is O(1) while the frontend check scans
        // every core.
        let fills = self.fills.next_due_cycle().unwrap_or(u64::MAX);
        if fills <= now {
            return now;
        }
        let frontend = self.frontend.next_event_cycle(now);
        if frontend <= now {
            return now;
        }
        let near = frontend.min(fills);
        // DRAM-domain events can only occur when a DRAM tick runs; the next
        // tick's CPU cycle is therefore a free conservative stand-in for the
        // backend, exact whenever the CPU-side horizon is nearer than it.
        let next_tick_cpu = self.clock.cpu_cycle_of_dram_tick(self.clock.dram_cycle());
        if near <= next_tick_cpu {
            return near;
        }
        // Consult the exact timing-derived backend horizon only when the
        // CPU side leaves room to skip past whole DRAM ticks. While the
        // backend is busy, demand the window be worth the scan; a quiescent
        // backend's scan is cheap (empty queues: refresh + policy only).
        const BACKEND_SCAN_THRESHOLD: u64 = 8;
        let busy = self.backend.pending() + self.backend.retry_backlog() > 0;
        if busy && near - now < BACKEND_SCAN_THRESHOLD {
            return near.min(next_tick_cpu);
        }
        let backend_dram = self.backend.next_ready_dram_cycle(self.clock.dram_cycle());
        near.min(self.clock.cpu_cycle_of_dram_tick(backend_dram))
    }

    /// Jumps the whole system forward by `cycles` CPU cycles the event
    /// horizon has proven eventless, applying the per-cycle side effects
    /// (core cycle/stall/commit counters, DMA credit, controller queue
    /// samples, both clocks) in closed form.
    fn fast_forward(&mut self, cycles: u64) {
        self.frontend.skip_cycles(cycles);
        let dram_ticks = self.clock.dram_ticks_within(cycles);
        if dram_ticks > 0 {
            self.backend.skip_dram_cycles(dram_ticks);
        }
        self.clock.fast_forward(cycles);
        self.prof_cycles(0, cycles);
    }

    /// Runs `cycles` CPU cycles.
    ///
    /// With [`SystemConfig::fast_forward`] enabled (the default), the run is
    /// driven by the event kernel ([`SystemConfig::event_driven`], the
    /// default) or by the older horizon recompute-and-jump loop (kept as a
    /// bisection aid); either way stretches of cycles no layer can act in
    /// are jumped over instead of ticked through, and the result is
    /// bit-identical to the naive per-cycle loop.
    pub fn run_cycles(&mut self, cycles: u64) {
        let t0 = self.prof_start();
        self.run_cycles_inner(cycles);
        if let Some(start) = t0 {
            let barrier = self.backend.take_barrier_nanos();
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(p) = self.profiler_mut() {
                p.record_total(nanos);
                if barrier > 0 {
                    p.record(KernelPhase::Barrier, barrier);
                }
            }
        }
    }

    /// The body of [`System::run_cycles`], separated so the profiler can
    /// wrap the whole run in one wall-clock measurement.
    fn run_cycles_inner(&mut self, cycles: u64) {
        let end = self.clock.cpu_cycle().saturating_add(cycles);
        if !self.cfg.fast_forward {
            if self.telemetry.is_some() {
                for _ in 0..cycles {
                    self.step();
                    self.maybe_sample();
                }
            } else {
                for _ in 0..cycles {
                    self.step();
                }
            }
            return;
        }
        if self.cfg.event_driven {
            self.run_event_driven(end);
            return;
        }
        // Adaptive pacing of the horizon checks: a failed check costs a
        // frontend scan, so consecutive failures back off exponentially
        // (capped) and just step; a skip shorter than a handful of cycles
        // costs more than the stalled-core steps it replaces, so it is
        // declined. Skipping fewer cycles than possible is always
        // bit-identical — this trades a few forfeited skip cycles at phase
        // boundaries for near-zero overhead in dense phases.
        const MIN_PROFITABLE_SKIP: u64 = 2;
        let mut miss_streak: u32 = 0;
        while self.clock.cpu_cycle() < end {
            let now = self.clock.cpu_cycle();
            let t0 = self.prof_start();
            // Clamping the horizon to the next sample boundary keeps jumps
            // from overshooting it; the post-step/post-jump checks then see
            // the boundary on its exact cycle.
            let horizon = self
                .next_event_cycle()
                .min(end)
                .min(self.next_sample_boundary());
            self.prof_add(KernelPhase::EventQueue, t0);
            let remaining = end - now;
            if horizon - now >= MIN_PROFITABLE_SKIP.min(remaining) && horizon > now {
                self.fast_forward(horizon - now);
                self.maybe_sample();
                miss_streak = 0;
            } else {
                self.step();
                self.maybe_sample();
                // A horizon of exactly `now + 1` is the dense steady state:
                // something acts *every* cycle, so recomputing the horizon is
                // pure overhead — let the backoff grow further (64 steps per
                // recheck vs 8) before looking again.
                let cap: u32 = if horizon == now + 1 { 6 } else { 3 };
                let backoff = 1u64 << miss_streak.min(cap);
                miss_streak = miss_streak.saturating_add(1);
                for _ in 0..backoff.min(end - self.clock.cpu_cycle()) {
                    self.step();
                    self.maybe_sample();
                }
            }
        }
    }

    /// Why this system cannot be checkpointed right now, if it cannot:
    /// attached trace taps, dynamically dispatched (boxed) plugins, or an
    /// active telemetry sink hold state the snapshot format cannot capture.
    /// `None` means [`System::snapshot`] will succeed.
    #[must_use]
    pub fn snapshot_unsupported_reason(&self) -> Option<&'static str> {
        if self.telemetry.is_some() {
            // Sample cursors, pending spans and profiler accumulators are
            // deliberately outside the snapshot format; a restored replica
            // would silently produce a truncated series otherwise.
            return Some("an active telemetry sink");
        }
        self.frontend
            .snapshot_unsupported_reason()
            .or_else(|| self.backend.snapshot_unsupported_reason())
    }

    /// Captures the system's complete mutable state as an opaque,
    /// self-validating [`Snapshot`] image. Restoring it with
    /// [`System::restore`] under the same configuration yields a system that
    /// continues bit-identically to this one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] if the system holds state the format
    /// cannot capture: a trace replay source or capture sink, or a boxed
    /// scheduler/page/power plugin.
    pub fn snapshot(&self) -> Result<Snapshot, SimError> {
        if let Some(reason) = self.snapshot_unsupported_reason() {
            return Err(SimError::Snapshot(format!(
                "cannot snapshot a system with {reason}"
            )));
        }
        let mut w = cloudmc_snap::SnapWriter::new(config_fingerprint(&self.cfg));
        w.section("system");
        self.clock.save_state(&mut w);
        self.fills.save_state(&mut w);
        w.u64(self.next_request_id);
        // The map is hash-ordered; dump sorted by request id so identical
        // states always produce identical bytes.
        let reads = cloudmc_snap::det::sorted_entries(&self.outstanding_reads);
        w.usize(reads.len());
        for (id, read) in reads {
            w.u64(id);
            w.usize(read.core);
            w.u64(read.addr);
        }
        w.u64(self.mem_reads_sent);
        w.u64(self.mem_writes_sent);
        w.u64_slice(&self.mem_sent_per_tenant);
        w.u64_slice(&self.reads_by_region);
        self.frontend.save_state(&mut w);
        self.backend.save_state(&mut w);
        Ok(Snapshot::from_bytes(w.finish()))
    }

    /// Builds a fresh system from `cfg` and overlays the mutable state saved
    /// in `snapshot`. The restored system continues bit-identically to the
    /// one that produced the image — same statistics, same event order — on
    /// any kernel and thread count permitted by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation, and
    /// [`SimError::Snapshot`] if the image was produced under a different
    /// configuration (fingerprint mismatch), is truncated or corrupted
    /// (checksum or per-field validation failure naming the section and byte
    /// offset), or `cfg` requires unsupported snapshot features.
    pub fn restore(cfg: SystemConfig, snapshot: &Snapshot) -> Result<Self, SimError> {
        let fingerprint = config_fingerprint(&cfg);
        let mut system = Self::new(cfg).map_err(SimError::Config)?;
        if let Some(reason) = system.snapshot_unsupported_reason() {
            return Err(SimError::Snapshot(format!(
                "cannot restore a system with {reason}"
            )));
        }
        system
            .load_snapshot(snapshot.as_bytes(), fingerprint)
            .map_err(|e| SimError::Snapshot(e.to_string()))?;
        Ok(system)
    }

    /// The body of [`System::restore`]: parses the image and overlays every
    /// section onto `self`, keeping the typed `SnapError` for the caller to
    /// wrap.
    fn load_snapshot(
        &mut self,
        bytes: &[u8],
        fingerprint: u64,
    ) -> Result<(), cloudmc_snap::SnapError> {
        let mut r = cloudmc_snap::SnapReader::new(bytes, fingerprint)?;
        r.section("system")?;
        self.clock.load_state(&mut r)?;
        self.fills.load_state(&mut r)?;
        self.next_request_id = r.u64()?;
        let count = r.bounded_len(24)?;
        self.outstanding_reads.clear();
        for _ in 0..count {
            let id = r.u64()?;
            let core = r.usize()?;
            let addr = r.u64()?;
            if id >= self.next_request_id {
                return Err(r.bad_value(format!(
                    "outstanding read id {id} not below next request id {}",
                    self.next_request_id
                )));
            }
            if self
                .outstanding_reads
                .insert(id, OutstandingRead { core, addr })
                .is_some()
            {
                return Err(r.bad_value(format!("duplicate outstanding read id {id}")));
            }
        }
        self.mem_reads_sent = r.u64()?;
        self.mem_writes_sent = r.u64()?;
        for (name, slice) in [
            (
                "per-tenant send counters",
                &mut self.mem_sent_per_tenant[..],
            ),
            ("region read counters", &mut self.reads_by_region[..]),
        ] {
            let len = r.bounded_len(8)?;
            if len != slice.len() {
                return Err(r.bad_value(format!("{len} {name}, expected {}", slice.len())));
            }
            for slot in slice.iter_mut() {
                *slot = r.u64()?;
            }
        }
        self.frontend.load_state(&mut r)?;
        self.backend.load_state(&mut r)?;
        r.finish()
    }

    /// Re-seeds the stochastic inputs (workload streams and DMA RNG) as if
    /// the system had been built with `seed`, leaving all architectural
    /// state untouched. Sweep replicates fork one warm snapshot and diverge
    /// through this.
    pub fn reseed(&mut self, seed: u64) {
        self.frontend.reseed(seed);
    }

    /// The next CPU cycle at which a time-series sample is due; `u64::MAX`
    /// when the series layer is off.
    fn next_sample_boundary(&self) -> u64 {
        self.telemetry
            .as_deref()
            .map_or(u64::MAX, |t| t.next_sample)
    }

    /// Takes any samples whose boundary the clock has reached. With the
    /// series off this is one null-pointer branch.
    fn maybe_sample(&mut self) {
        while self.clock.cpu_cycle() >= self.next_sample_boundary() {
            self.take_sample();
        }
    }

    /// Records one time-series sample of the window since the previous
    /// boundary. The caller guarantees the system sits exactly at the
    /// boundary cycle with every layer caught up (the event kernel syncs its
    /// lazy frontend first), so the windowed counters read identically under
    /// every kernel and thread count.
    fn take_sample(&mut self) {
        let cur = self.counter_baseline();
        // Per the `TelemetrySample` contract the share vector is empty in
        // single-tenant runs (the lone tenant's share is always 1).
        let tenants = match self.cfg.tenancy().tenant_count() {
            0 | 1 => 0,
            n => n,
        };
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let mc_end = cur.mc.clone().unwrap_or_default();
        let mc_start = t.last.mc.clone().unwrap_or_default();
        let cpu_cycles = cur.cpu_cycles - t.last.cpu_cycles;
        let committed = cur.committed.iter().sum::<u64>() - t.last.committed.iter().sum::<u64>();
        let ipc = if cpu_cycles == 0 {
            0.0
        } else {
            committed as f64 / cpu_cycles as f64
        };
        let reads_completed = mc_end.reads_completed - mc_start.reads_completed;
        let writes_completed = mc_end.writes_completed - mc_start.writes_completed;
        let avg_read_latency = if reads_completed == 0 {
            0.0
        } else {
            (mc_end.total_read_latency - mc_start.total_read_latency) as f64
                / reads_completed as f64
        };
        let hits = mc_end.row_hits - mc_start.row_hits;
        let outcomes = hits
            + (mc_end.row_misses - mc_start.row_misses)
            + (mc_end.row_conflicts - mc_start.row_conflicts);
        let row_hit_rate = if outcomes == 0 {
            0.0
        } else {
            hits as f64 / outcomes as f64
        };
        let queue_samples = mc_end.queue_samples - mc_start.queue_samples;
        let avg_read_queue = if queue_samples == 0 {
            0.0
        } else {
            (mc_end.read_queue_occupancy_sum - mc_start.read_queue_occupancy_sum) as f64
                / queue_samples as f64
        };
        let completed = reads_completed + writes_completed;
        let bandwidth_share = (0..tenants)
            .map(|tn| {
                if completed == 0 {
                    0.0
                } else {
                    ((mc_end.reads_completed_per_tenant[tn]
                        - mc_start.reads_completed_per_tenant[tn])
                        + (mc_end.writes_completed_per_tenant[tn]
                            - mc_start.writes_completed_per_tenant[tn])) as f64
                        / completed as f64
                }
            })
            .collect();
        let device = cur.device.delta(&t.last.device);
        let rank_cycles = device.state_residency_cycles();
        let power_down_fraction = if rank_cycles == 0 {
            0.0
        } else {
            device.powered_down_cycles() as f64 / rank_cycles as f64
        };
        let reliability_events = (mc_end.ecc_corrected - mc_start.ecc_corrected)
            + (mc_end.ecc_detected_uncorrectable - mc_start.ecc_detected_uncorrectable)
            + (mc_end.ecc_miscorrects - mc_start.ecc_miscorrects)
            + (mc_end.scrub_corrected - mc_start.scrub_corrected)
            + (mc_end.scrub_uncorrectable - mc_start.scrub_uncorrectable)
            + (mc_end.rows_retired - mc_start.rows_retired)
            + (mc_end.lines_poisoned - mc_start.lines_poisoned);
        t.series.push(TelemetrySample {
            cycle: cur.cpu_cycles,
            ipc,
            reads_completed,
            writes_completed,
            avg_read_latency,
            row_hit_rate,
            avg_read_queue,
            bandwidth_share,
            power_down_fraction,
            reliability_events,
        });
        t.last = cur;
        t.next_sample = t.next_sample.saturating_add(t.interval.max(1));
    }

    /// Starts a sampled request span at dispatch, remembering the backend
    /// shard (address localization erases it, so the completion record alone
    /// cannot name the global channel).
    fn note_span_start(&mut self, id: RequestId, addr: u64) {
        if self.telemetry.is_none() {
            return;
        }
        let shard = self.backend.route(addr);
        if let Some(t) = self.telemetry.as_deref_mut() {
            if t.span_every > 0 && id.is_multiple_of(t.span_every) {
                t.pending_spans.insert(id, shard);
            }
        }
    }

    /// Completes a sampled request span from its backend completion record.
    fn note_span_completion(&mut self, done: &CompletedRequest) {
        let channels_per_shard = self.cfg.mc.dram.channels;
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let Some(shard) = t.pending_spans.remove(&done.request.id) else {
            return;
        };
        t.spans.push(SpanRecord {
            id: done.request.id,
            access: if done.request.kind.is_read() {
                SpanAccess::Read
            } else {
                SpanAccess::Write
            },
            core: done.request.core,
            tenant: done.request.tenant,
            channel: shard * channels_per_shard + done.channel,
            enqueue: done.request.arrival,
            issue: done.issue,
            completion: done.completion,
            outcome: match done.outcome {
                RowBufferOutcome::Hit => SpanOutcome::Hit,
                RowBufferOutcome::Miss => SpanOutcome::Miss,
                RowBufferOutcome::Conflict => SpanOutcome::Conflict,
            },
            retries: done.retries,
        });
    }

    /// Starts a wall-clock phase measurement; `None` when profiling is off,
    /// so hot loops pay a single boolean test.
    fn prof_start(&self) -> Option<Instant> {
        // simlint: allow(wall-clock) profile-gated: measures host time only, never sim state
        self.profile.then(Instant::now)
    }

    /// Folds a finished phase measurement into the profiler.
    fn prof_add(&mut self, phase: KernelPhase, start: Option<Instant>) {
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(p) = self.profiler_mut() {
                p.record(phase, nanos);
            }
        }
    }

    fn profiler_mut(&mut self) -> Option<&mut KernelProfiler> {
        self.telemetry
            .as_deref_mut()
            .and_then(|t| t.profiler.as_mut())
    }

    /// Accounts simulated CPU cycles to the profiler's stepped/jumped split.
    fn prof_cycles(&mut self, stepped: u64, jumped: u64) {
        if !self.profile {
            return;
        }
        if let Some(p) = self.profiler_mut() {
            p.record_stepped_cycles(stepped);
            p.record_jumped_cycles(jumped);
        }
    }

    /// Interval time-series samples collected so far (empty when the series
    /// layer is off).
    #[must_use]
    pub fn telemetry_series(&self) -> &[TelemetrySample] {
        self.telemetry.as_deref().map_or(&[], |t| &t.series)
    }

    /// Sampled request spans completed so far (empty when span tracing is
    /// off).
    #[must_use]
    pub fn telemetry_spans(&self) -> &[SpanRecord] {
        self.telemetry.as_deref().map_or(&[], |t| &t.spans)
    }

    /// The finished kernel self-profile up to the current cycle, or `None`
    /// when the profiler layer is off. Folds in worker-pool barrier time the
    /// backend accumulated since the last call.
    pub fn kernel_profile(&mut self) -> Option<KernelProfile> {
        let barrier = self.backend.take_barrier_nanos();
        let cpu = self.clock.cpu_cycle();
        let dram = self.clock.dram_cycle();
        let p = self.profiler_mut()?;
        if barrier > 0 {
            p.record(KernelPhase::Barrier, barrier);
        }
        Some(p.finish(cpu, dram))
    }

    /// Writes the configured telemetry output files (time series and span
    /// trace, both JSON lines). No-op when no output path is configured;
    /// call once at the end of a run — [`Simulator::run_measurement`] does.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Telemetry`] naming the file on any write failure.
    pub fn finish_telemetry(&self) -> Result<(), SimError> {
        let Some(t) = self.telemetry.as_deref() else {
            return Ok(());
        };
        if let Some(path) = &self.cfg.telemetry.series_path {
            cloudmc_telemetry::write_jsonl_file(path, t.series.iter().map(|s| s.to_jsonl()))
                .map_err(|e| {
                    SimError::Telemetry(format!("writing time series to {}: {e}", path.display()))
                })?;
        }
        if let Some(path) = &self.cfg.telemetry.span_path {
            cloudmc_telemetry::write_jsonl_file(path, t.spans.iter().map(|s| s.to_jsonl()))
                .map_err(|e| {
                    SimError::Telemetry(format!("writing span trace to {}: {e}", path.display()))
                })?;
        }
        Ok(())
    }

    fn counter_baseline(&self) -> CounterBaseline {
        CounterBaseline {
            cpu_cycles: self.clock.cpu_cycle(),
            dram_cycles: self.clock.dram_cycle(),
            committed: self.committed_per_core(),
            mem_reads_sent: self.mem_reads_sent,
            mem_writes_sent: self.mem_writes_sent,
            mc: Some(self.backend.stats()),
            device: self.backend.device_totals_at(self.clock.dram_cycle()),
        }
    }

    fn stats_since(&self, start: &CounterBaseline) -> SimStats {
        let cfg = &self.cfg;
        let total_channels = self.backend.total_channels();
        let end = self.counter_baseline();
        let mc_end = end.mc.clone().unwrap_or_default();
        let mc_start = start.mc.clone().unwrap_or_default();
        let cpu_cycles = end.cpu_cycles - start.cpu_cycles;
        let dram_cycles = end.dram_cycles - start.dram_cycles;
        let instructions_per_core: Vec<u64> = end
            .committed
            .iter()
            .zip(start.committed.iter().chain(std::iter::repeat(&0)))
            .map(|(e, s)| e - s)
            .collect();
        let user_instructions: u64 = instructions_per_core.iter().sum();
        let reads_completed = mc_end.reads_completed - mc_start.reads_completed;
        let writes_completed = mc_end.writes_completed - mc_start.writes_completed;
        let read_latency_sum = mc_end.total_read_latency - mc_start.total_read_latency;
        let avg_read_latency_dram = if reads_completed == 0 {
            0.0
        } else {
            read_latency_sum as f64 / reads_completed as f64
        };
        let hits = mc_end.row_hits - mc_start.row_hits;
        let misses = mc_end.row_misses - mc_start.row_misses;
        let conflicts = mc_end.row_conflicts - mc_start.row_conflicts;
        let total_outcomes = hits + misses + conflicts;
        let row_buffer_hit_rate = if total_outcomes == 0 {
            0.0
        } else {
            hits as f64 / total_outcomes as f64
        };
        let mut single = 0u64;
        let mut activations_closed = 0u64;
        for (i, (e, s)) in mc_end
            .activation_reuse
            .iter()
            .zip(
                mc_start
                    .activation_reuse
                    .iter()
                    .chain(std::iter::repeat(&0)),
            )
            .enumerate()
        {
            let d = e - s;
            activations_closed += d;
            if i == 1 {
                single = d;
            }
        }
        let single_access_activation_fraction = if activations_closed == 0 {
            0.0
        } else {
            single as f64 / activations_closed as f64
        };
        let queue_samples = mc_end.queue_samples - mc_start.queue_samples;
        let avg_read_queue_len = if queue_samples == 0 {
            0.0
        } else {
            (mc_end.read_queue_occupancy_sum - mc_start.read_queue_occupancy_sum) as f64
                / queue_samples as f64
        };
        let avg_write_queue_len = if queue_samples == 0 {
            0.0
        } else {
            (mc_end.write_queue_occupancy_sum - mc_start.write_queue_occupancy_sum) as f64
                / queue_samples as f64
        };
        let bus_busy = end.device.data_bus_busy_cycles - start.device.data_bus_busy_cycles;
        let bandwidth_utilization = if dram_cycles == 0 {
            0.0
        } else {
            bus_busy as f64 / (dram_cycles * total_channels as u64) as f64
        };
        let mem_reads_sent = end.mem_reads_sent - start.mem_reads_sent;
        let mem_writes_sent = end.mem_writes_sent - start.mem_writes_sent;
        let l2_mpki = if user_instructions == 0 {
            0.0
        } else {
            mem_reads_sent as f64 * 1000.0 / user_instructions as f64
        };
        let activations = end.device.activates - start.device.activates;
        let activations_per_kilo_instr = if user_instructions == 0 {
            0.0
        } else {
            activations as f64 * 1000.0 / user_instructions as f64
        };
        // Energy (extension): events priced from the command-count deltas,
        // background from the power-state residency deltas — both exact and
        // bit-identical with fast-forward on or off.
        let energy_model = cloudmc_dram::EnergyModel::new(cfg.energy);
        let delta_channel_stats = end.device.delta(&start.device);
        let timing = cfg.mc.dram.timing;
        let breakdown = energy_model.breakdown_from_residency(&delta_channel_stats, &timing);
        let rank_cycles = delta_channel_stats.state_residency_cycles();
        let power_down_fraction = if rank_cycles == 0 {
            0.0
        } else {
            delta_channel_stats.powered_down_cycles() as f64 / rank_cycles as f64
        };
        let self_refresh_fraction = if rank_cycles == 0 {
            0.0
        } else {
            delta_channel_stats.self_refresh_cycles as f64 / rank_cycles as f64
        };
        let completed = reads_completed + writes_completed;
        let energy_per_request_nj = if completed == 0 {
            0.0
        } else {
            breakdown.total_pj() * 1e-3 / completed as f64
        };
        // Per-tenant breakdown (tenancy extension): instructions partition by
        // core group, controller metrics come from the tenant-tagged deltas.
        let tenancy = cfg.tenancy();
        let tenants = tenancy.tenant_count();
        let mut instructions_per_tenant = vec![0u64; tenants];
        for (core, n) in instructions_per_core.iter().enumerate() {
            instructions_per_tenant[tenancy.tenant_of_core(core)] += n;
        }
        let mut reads_completed_per_tenant = vec![0u64; tenants];
        let mut avg_read_latency_per_tenant = vec![0.0f64; tenants];
        let mut bandwidth_share_per_tenant = vec![0.0f64; tenants];
        let mut row_hit_rate_per_tenant = vec![0.0f64; tenants];
        let mut avg_read_queue_len_per_tenant = vec![0.0f64; tenants];
        for t in 0..tenants {
            let reads_t =
                mc_end.reads_completed_per_tenant[t] - mc_start.reads_completed_per_tenant[t];
            let writes_t =
                mc_end.writes_completed_per_tenant[t] - mc_start.writes_completed_per_tenant[t];
            let latency_t = mc_end.read_latency_per_tenant[t] - mc_start.read_latency_per_tenant[t];
            reads_completed_per_tenant[t] = reads_t;
            if reads_t > 0 {
                avg_read_latency_per_tenant[t] = latency_t as f64 / reads_t as f64;
            }
            if completed > 0 {
                bandwidth_share_per_tenant[t] = (reads_t + writes_t) as f64 / completed as f64;
            }
            let hits_t = mc_end.row_hits_per_tenant[t] - mc_start.row_hits_per_tenant[t];
            let outcomes_t = hits_t
                + (mc_end.row_misses_per_tenant[t] - mc_start.row_misses_per_tenant[t])
                + (mc_end.row_conflicts_per_tenant[t] - mc_start.row_conflicts_per_tenant[t]);
            if outcomes_t > 0 {
                row_hit_rate_per_tenant[t] = hits_t as f64 / outcomes_t as f64;
            }
            if queue_samples > 0 {
                avg_read_queue_len_per_tenant[t] = (mc_end.read_queue_occupancy_per_tenant[t]
                    - mc_start.read_queue_occupancy_per_tenant[t])
                    as f64
                    / queue_samples as f64;
            }
        }
        // Latency percentiles from the window's histogram delta: the log2
        // buckets subtract exactly, so this is the distribution of only the
        // reads completed inside the window.
        let hist = mc_end.read_latency_hist.delta(&mc_start.read_latency_hist);
        let read_latency_p50_dram = hist.p50().unwrap_or(0.0);
        let read_latency_p95_dram = hist.p95().unwrap_or(0.0);
        let read_latency_p99_dram = hist.p99().unwrap_or(0.0);
        let read_latency_max_dram = hist.max().unwrap_or(0);
        let ledger = self.backend.fault_ledger();
        let rows_retired_per_rank = self.backend.rows_retired_per_rank();
        let retired_capacity_bytes = rows_retired_per_rank
            .iter()
            .sum::<u64>()
            .saturating_mul(cfg.mc.dram.row_bytes);
        SimStats {
            workload: tenancy.label(),
            scheduler: cfg.mc.scheduler.label().to_owned(),
            page_policy: cfg.mc.page_policy.to_string(),
            power_policy: cfg.mc.power_policy.to_string(),
            mapping: cfg.mc.mapping.to_string(),
            channels: total_channels,
            cores: tenancy.total_cores(),
            cpu_cycles,
            dram_cycles,
            user_instructions,
            instructions_per_core,
            memory_reads_sent: mem_reads_sent,
            memory_writes_sent: mem_writes_sent,
            reads_completed,
            writes_completed,
            avg_read_latency_dram,
            avg_read_latency_ns: timing.cycles_to_ns(avg_read_latency_dram.round() as u64),
            row_buffer_hit_rate,
            single_access_activation_fraction,
            avg_read_queue_len,
            avg_write_queue_len,
            bandwidth_utilization,
            l2_mpki,
            activations_per_kilo_instr,
            dram_energy_mj: breakdown.total_pj() * 1e-9,
            dram_background_energy_mj: breakdown.background_pj * 1e-9,
            avg_dram_power_mw: breakdown.average_power_mw(dram_cycles, &timing),
            energy_per_request_nj,
            power_down_fraction,
            self_refresh_fraction,
            power_down_entries: delta_channel_stats.power_down_entries,
            power_wakes: delta_channel_stats.power_wakes,
            qos_policy: cfg.mc.qos.policy.to_string(),
            tenants,
            tenant_workloads: (0..tenants)
                .map(|t| tenancy.tenant_label(t).to_owned())
                .collect(),
            tenant_cores: tenancy.tenants().map(|t| t.cores()).collect(),
            tenant_latency_critical: tenancy.tenants().map(|t| t.latency_critical).collect(),
            instructions_per_tenant,
            reads_completed_per_tenant,
            avg_read_latency_per_tenant,
            bandwidth_share_per_tenant,
            row_hit_rate_per_tenant,
            avg_read_queue_len_per_tenant,
            ecc_corrected: mc_end.ecc_corrected - mc_start.ecc_corrected,
            ecc_detected_uncorrectable: mc_end.ecc_detected_uncorrectable
                - mc_start.ecc_detected_uncorrectable,
            ecc_miscorrects: mc_end.ecc_miscorrects - mc_start.ecc_miscorrects,
            demand_retries: mc_end.demand_retries - mc_start.demand_retries,
            scrub_reads_issued: mc_end.scrub_reads_issued - mc_start.scrub_reads_issued,
            scrub_reads_completed: mc_end.scrub_reads_completed - mc_start.scrub_reads_completed,
            scrub_corrected: mc_end.scrub_corrected - mc_start.scrub_corrected,
            scrub_uncorrectable: mc_end.scrub_uncorrectable - mc_start.scrub_uncorrectable,
            rows_retired: mc_end.rows_retired - mc_start.rows_retired,
            lines_poisoned: mc_end.lines_poisoned - mc_start.lines_poisoned,
            poisoned_reads: mc_end.poisoned_reads - mc_start.poisoned_reads,
            // Ledger totals are whole-run, not window deltas: `latent` moves
            // both ways (latent → corrected/uncorrectable on discovery), so
            // only the end-of-run ledger satisfies the conservation
            // invariant.
            faults_injected: ledger.injected,
            faults_corrected: ledger.corrected,
            faults_uncorrectable: ledger.uncorrectable,
            faults_latent: ledger.latent,
            rows_retired_per_rank,
            retired_capacity_bytes,
            read_latency_p50_dram,
            read_latency_p95_dram,
            read_latency_p99_dram,
            read_latency_max_dram,
        }
    }
}

/// Warm-up + measurement driver around [`System`], following the SimFlex-like
/// methodology of the paper at reduced scale.
#[derive(Debug)]
pub struct Simulator {
    system: System,
}

impl Simulator {
    /// Builds the simulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Self, SimError> {
        Ok(Self {
            system: System::new(cfg).map_err(SimError::Config)?,
        })
    }

    /// Runs warm-up then measurement and returns the measured statistics.
    ///
    /// If the run records a trace ([`SystemConfig::trace_record`]), the sink
    /// is flushed before the statistics are returned, so the file is
    /// immediately replayable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] if the replay trace turned out to be
    /// unreadable or malformed mid-run, or if the capture sink failed — the
    /// statistics of such a run would be garbage (cores idle out on the
    /// exhaustion filler) or the trace file incomplete. Returns
    /// [`SimError::Uncorrectable`] if a detected-uncorrectable memory error
    /// was latched under the fail-stop policy: the run itself completes (the
    /// fault ledger and counters stay consistent) but its statistics are
    /// withheld, exactly like a machine check taking down the pod at the end
    /// of the measurement.
    pub fn try_run(mut self) -> Result<SimStats, SimError> {
        self.run_warmup();
        self.run_measurement()
    }

    /// Runs just the warm-up window ([`SystemConfig::warmup_cpu_cycles`]).
    /// Sweep harnesses call this once, snapshot the warm system, and fork
    /// measured replicates from the image instead of re-warming per cell.
    pub fn run_warmup(&mut self) {
        let warmup = self.system.cfg.warmup_cpu_cycles;
        self.system.run_cycles(warmup);
    }

    /// Runs just the measurement window ([`SystemConfig::measure_cpu_cycles`])
    /// from the system's current state and returns the window's statistics.
    /// Equivalent to the second half of [`Simulator::try_run`]; see there for
    /// the error conditions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] or [`SimError::Uncorrectable`] exactly as
    /// [`Simulator::try_run`] does, and [`SimError::Telemetry`] if a
    /// configured telemetry output file could not be written.
    pub fn run_measurement(&mut self) -> Result<SimStats, SimError> {
        let measure = self.system.cfg.measure_cpu_cycles;
        let baseline = self.system.counter_baseline();
        self.system.run_cycles(measure);
        self.system.finish_trace().map_err(SimError::Trace)?;
        self.system.finish_telemetry()?;
        let stats = self.system.stats_since(&baseline);
        if let Some(msg) = self.system.backend.fault_error() {
            return Err(SimError::Uncorrectable(msg.to_owned()));
        }
        Ok(stats)
    }

    /// Builds a simulator whose system is restored from `snapshot` (taken
    /// under the same `cfg`, typically right after warm-up). See
    /// [`System::restore`].
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`System::restore`].
    pub fn from_snapshot(cfg: SystemConfig, snapshot: &Snapshot) -> Result<Self, SimError> {
        Ok(Self {
            system: System::restore(cfg, snapshot)?,
        })
    }

    /// [`Simulator::try_run`], panicking on any [`SimError`].
    ///
    /// # Panics
    ///
    /// Panics if the replay trace or the capture sink failed mid-run, or if
    /// a fail-stop uncorrectable memory error was latched; use
    /// [`Simulator::try_run`] (or [`run_system`]) to handle those as errors.
    #[must_use]
    pub fn run(self) -> SimStats {
        match self.try_run() {
            Ok(stats) => stats,
            // simlint: allow(panic) documented: run() panics, try_run() is the typed path
            Err(err) => panic!("simulation failed: {err}"),
        }
    }

    /// Access to the underlying system (e.g. to inspect state mid-run).
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }
}

/// Convenience: run one workload under one controller configuration.
///
/// Kept at `Result<_, String>` for existing harness callers; the typed
/// error is available through [`Simulator::try_run`].
///
/// # Errors
///
/// Returns a description of the problem if the configuration is invalid,
/// the run's trace I/O (replay source or capture sink) failed, or a
/// fail-stop uncorrectable memory error was latched.
pub fn run_system(cfg: SystemConfig) -> Result<SimStats, String> {
    Ok(Simulator::new(cfg)?.try_run()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_memctrl::{PagePolicyKind, SchedulerKind};
    use cloudmc_workloads::Workload;

    fn small(workload: Workload) -> SystemConfig {
        let mut cfg = SystemConfig::baseline(workload);
        cfg.warmup_cpu_cycles = 10_000;
        cfg.measure_cpu_cycles = 60_000;
        cfg
    }

    #[test]
    fn baseline_run_produces_sane_metrics() {
        let stats = run_system(small(Workload::DataServing)).unwrap();
        assert!(stats.user_ipc() > 0.5, "aggregate IPC {}", stats.user_ipc());
        assert!(stats.user_ipc() <= 16.0);
        assert!(
            stats.reads_completed > 50,
            "reads {}",
            stats.reads_completed
        );
        assert!(stats.avg_read_latency_dram > 20.0);
        assert!(stats.row_buffer_hit_rate >= 0.0 && stats.row_buffer_hit_rate <= 1.0);
        assert!(stats.bandwidth_utilization > 0.0 && stats.bandwidth_utilization < 1.0);
        assert!(stats.l2_mpki > 0.5);
        assert!(stats.dram_energy_mj > 0.0);
        assert_eq!(stats.cores, 16);
        assert_eq!(stats.cpu_cycles, 60_000);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = run_system(small(Workload::WebSearch)).unwrap();
        let b = run_system(small(Workload::WebSearch)).unwrap();
        assert_eq!(a.user_instructions, b.user_instructions);
        assert_eq!(a.reads_completed, b.reads_completed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_system(small(Workload::WebSearch)).unwrap();
        let mut cfg = small(Workload::WebSearch);
        cfg.seed = 99;
        let b = run_system(cfg).unwrap();
        assert_ne!(a.user_instructions, b.user_instructions);
    }

    #[test]
    fn web_frontend_uses_eight_cores_and_injects_dma() {
        let stats = run_system(small(Workload::WebFrontend)).unwrap();
        assert_eq!(stats.cores, 8);
        assert_eq!(stats.instructions_per_core.len(), 8);
    }

    #[test]
    fn mixed_run_reports_per_tenant_stats() {
        use cloudmc_workloads::{MixSpec, TenantSpec};
        let mix = MixSpec::new(TenantSpec::latency_critical(Workload::WebSearch, 8))
            .and(TenantSpec::batch(Workload::TpchQ6, 8));
        let mut cfg = SystemConfig::mixed(mix);
        cfg.warmup_cpu_cycles = 10_000;
        cfg.measure_cpu_cycles = 60_000;
        let stats = run_system(cfg).unwrap();
        assert_eq!(stats.workload, "WS+TPCH-Q6");
        assert_eq!(stats.cores, 16);
        assert_eq!(stats.tenants, 2);
        assert_eq!(stats.tenant_workloads, ["WS", "TPCH-Q6"]);
        assert_eq!(stats.tenant_cores, [8, 8]);
        assert_eq!(stats.tenant_latency_critical, [true, false]);
        // Instruction counts partition exactly across tenants.
        assert_eq!(
            stats.instructions_per_tenant.iter().sum::<u64>(),
            stats.user_instructions
        );
        // Both tenants reach memory; the bandwidth-bound scan dominates.
        assert!(stats.reads_completed_per_tenant.iter().all(|&r| r > 0));
        assert!(stats.bandwidth_share_per_tenant[1] > stats.bandwidth_share_per_tenant[0]);
        let share_sum: f64 = stats.bandwidth_share_per_tenant.iter().sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "shares sum to 1: {share_sum}"
        );
        assert!(stats
            .avg_read_latency_per_tenant
            .iter()
            .all(|&l| l > 0.0 && l < 10_000.0));
    }

    #[test]
    fn all_schedulers_run_end_to_end() {
        for sched in SchedulerKind::paper_set() {
            let mut cfg = small(Workload::WebSearch);
            cfg.mc.scheduler = sched;
            let stats = run_system(cfg).unwrap();
            assert!(
                stats.user_ipc() > 0.1,
                "{} produced IPC {}",
                sched.label(),
                stats.user_ipc()
            );
        }
    }

    #[test]
    fn all_page_policies_run_end_to_end() {
        for policy in PagePolicyKind::paper_set() {
            let mut cfg = small(Workload::TpchQ6);
            cfg.mc.page_policy = policy;
            let stats = run_system(cfg).unwrap();
            assert!(stats.reads_completed > 0, "{policy} completed no reads");
        }
    }

    #[test]
    fn multi_channel_configurations_run() {
        for channels in [1usize, 2, 4] {
            let mut cfg = small(Workload::TpchQ6);
            cfg.mc.dram.channels = channels;
            let stats = run_system(cfg).unwrap();
            assert_eq!(stats.channels, channels);
            assert!(stats.user_ipc() > 0.1);
        }
    }

    #[test]
    fn sharded_backend_reports_total_channels() {
        for shards in [1usize, 2, 4] {
            let mut cfg = small(Workload::TpchQ6);
            cfg.num_channels = shards;
            let stats = run_system(cfg.clone()).unwrap();
            assert_eq!(stats.channels, shards * cfg.mc.dram.channels);
            assert!(stats.user_ipc() > 0.1);
            assert!(stats.reads_completed > 0);
        }
    }

    #[test]
    fn close_page_policy_kills_row_hits() {
        let mut open = small(Workload::MediaStreaming);
        open.mc.page_policy = PagePolicyKind::OpenAdaptive;
        let mut close = small(Workload::MediaStreaming);
        close.mc.page_policy = PagePolicyKind::Close;
        let open_stats = run_system(open).unwrap();
        let close_stats = run_system(close).unwrap();
        assert!(
            close_stats.row_buffer_hit_rate < open_stats.row_buffer_hit_rate,
            "close {} vs open {}",
            close_stats.row_buffer_hit_rate,
            open_stats.row_buffer_hit_rate
        );
    }
}
