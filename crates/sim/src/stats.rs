//! Measurement results of one simulation run.

/// Metrics collected over the measurement window of one run.
///
/// These are exactly the quantities the paper's figures report: user IPC,
/// average memory access latency, row-buffer hit rate, L2 MPKI, queue
/// occupancies, bandwidth utilization and the single-access activation
/// fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Workload acronym.
    pub workload: String,
    /// Scheduler label (e.g. "FR-FCFS").
    pub scheduler: String,
    /// Page policy name (e.g. "open-adaptive").
    pub page_policy: String,
    /// Power policy name (e.g. "idle-timer").
    pub power_policy: String,
    /// Address mapping scheme name.
    pub mapping: String,
    /// Number of memory channels.
    pub channels: usize,
    /// Number of cores simulated.
    pub cores: usize,
    /// CPU cycles in the measurement window.
    pub cpu_cycles: u64,
    /// DRAM cycles in the measurement window.
    pub dram_cycles: u64,
    /// Committed user instructions over all cores.
    pub user_instructions: u64,
    /// Committed user instructions per core.
    pub instructions_per_core: Vec<u64>,
    /// Memory read requests sent off-chip (demand L2 misses).
    pub memory_reads_sent: u64,
    /// Memory write requests sent off-chip (L2 write-backs plus DMA writes).
    pub memory_writes_sent: u64,
    /// Reads completed by the memory controller.
    pub reads_completed: u64,
    /// Writes completed by the memory controller.
    pub writes_completed: u64,
    /// Average read latency in DRAM cycles (arrival at MC to data return).
    pub avg_read_latency_dram: f64,
    /// Average read latency in nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Row-buffer hit rate (0.0–1.0).
    pub row_buffer_hit_rate: f64,
    /// Fraction of row activations with exactly one access (0.0–1.0).
    pub single_access_activation_fraction: f64,
    /// Average read-queue occupancy.
    pub avg_read_queue_len: f64,
    /// Average write-queue occupancy.
    pub avg_write_queue_len: f64,
    /// Data-bus utilization across channels (0.0–1.0).
    pub bandwidth_utilization: f64,
    /// L2 misses per kilo user instructions.
    pub l2_mpki: f64,
    /// DRAM activations per kilo user instructions.
    pub activations_per_kilo_instr: f64,
    /// Total DRAM energy in millijoules over the measurement window,
    /// computed by the event + state-residency model (the paper defers power
    /// analysis to future work; this is the extension that tests its
    /// conjecture).
    pub dram_energy_mj: f64,
    /// Background (standby + power-down + self-refresh) portion of
    /// `dram_energy_mj`.
    pub dram_background_energy_mj: f64,
    /// Average DRAM power over the window in milliwatts.
    pub avg_dram_power_mw: f64,
    /// DRAM energy per completed request in nanojoules.
    pub energy_per_request_nj: f64,
    /// Fraction of rank-cycles spent in any CKE-low state (0.0–1.0).
    pub power_down_fraction: f64,
    /// Fraction of rank-cycles spent in self-refresh (0.0–1.0).
    pub self_refresh_fraction: f64,
    /// Power-down entries (fast/slow) during the window.
    pub power_down_entries: u64,
    /// Rank wakes (demand- or refresh-triggered) during the window.
    pub power_wakes: u64,
    /// QoS policy name (e.g. "priority-boost"); "none" when QoS is off.
    pub qos_policy: String,
    /// Number of tenants in the workload mix (1 for single-tenant runs; all
    /// `*_per_tenant` vectors have this length).
    pub tenants: usize,
    /// Workload acronym per tenant.
    pub tenant_workloads: Vec<String>,
    /// Cores allocated per tenant.
    pub tenant_cores: Vec<usize>,
    /// Latency-criticality flag per tenant.
    pub tenant_latency_critical: Vec<bool>,
    /// Committed user instructions per tenant.
    pub instructions_per_tenant: Vec<u64>,
    /// Reads completed by the memory controller per tenant.
    pub reads_completed_per_tenant: Vec<u64>,
    /// Average read latency per tenant in DRAM cycles.
    pub avg_read_latency_per_tenant: Vec<f64>,
    /// Each tenant's share of the delivered data bandwidth (0.0–1.0).
    pub bandwidth_share_per_tenant: Vec<f64>,
    /// Row-buffer hit rate per tenant (0.0–1.0).
    pub row_hit_rate_per_tenant: Vec<f64>,
    /// Time-averaged read-queue occupancy attributable to each tenant.
    pub avg_read_queue_len_per_tenant: Vec<f64>,
    /// ECC single-bit corrections on demand reads during the window.
    pub ecc_corrected: u64,
    /// Detected-uncorrectable ECC events on demand reads during the window.
    pub ecc_detected_uncorrectable: u64,
    /// ECC miscorrections (multi-bit errors aliased to a valid codeword)
    /// during the window. These are silent data corruptions: no retry, no
    /// poison, no retirement evidence.
    pub ecc_miscorrects: u64,
    /// Demand reads re-issued by the bounded retry path during the window.
    pub demand_retries: u64,
    /// Patrol-scrub reads injected into the controller queues during the
    /// window.
    pub scrub_reads_issued: u64,
    /// Patrol-scrub reads serviced by the devices during the window.
    pub scrub_reads_completed: u64,
    /// Correctable errors found by the patrol scrubber during the window.
    pub scrub_corrected: u64,
    /// Detected-uncorrectable errors found by the patrol scrubber during the
    /// window.
    pub scrub_uncorrectable: u64,
    /// Rows retired (remapped out of service) during the window.
    pub rows_retired: u64,
    /// Cache lines newly poisoned under the poison-and-continue policy
    /// during the window.
    pub lines_poisoned: u64,
    /// Demand reads that hit an already-poisoned line during the window.
    pub poisoned_reads: u64,
    /// Whole-run fault-ledger total: fault events injected (not a window
    /// delta — the conservation invariant `injected == corrected +
    /// uncorrectable + latent` holds over the full run).
    pub faults_injected: u64,
    /// Whole-run fault-ledger total: faults resolved as corrected.
    pub faults_corrected: u64,
    /// Whole-run fault-ledger total: faults resolved as uncorrectable
    /// (detected or miscorrected).
    pub faults_uncorrectable: u64,
    /// Whole-run fault-ledger total: planted faults not yet discovered.
    pub faults_latent: u64,
    /// Retired-row counts per rank at the end of the run, shard-major then
    /// channel-major. All zeros when no fault model is configured.
    pub rows_retired_per_rank: Vec<u64>,
    /// Memory capacity lost to row retirement by the end of the run, in
    /// bytes (retired rows × row size).
    pub retired_capacity_bytes: u64,
    /// Median read latency over the measurement window in DRAM cycles, from
    /// the controller's log2-bucket latency histogram (linearly interpolated
    /// within a bucket; 0.0 when no reads completed).
    pub read_latency_p50_dram: f64,
    /// 95th-percentile read latency in DRAM cycles (same histogram
    /// estimate; 0.0 when no reads completed).
    pub read_latency_p95_dram: f64,
    /// 99th-percentile read latency in DRAM cycles (same histogram
    /// estimate; 0.0 when no reads completed).
    pub read_latency_p99_dram: f64,
    /// Largest read latency observed in the window, in DRAM cycles. Window
    /// deltas bound this at bucket resolution (the upper edge of the highest
    /// bucket the window touched); 0 when no reads completed.
    pub read_latency_max_dram: u64,
}

impl SimStats {
    /// Aggregate user IPC: committed user instructions per CPU cycle summed
    /// over all cores (the paper's throughput metric).
    #[must_use]
    pub fn user_ipc(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.user_instructions as f64 / self.cpu_cycles as f64
        }
    }

    /// Per-core IPC values.
    #[must_use]
    pub fn per_core_ipc(&self) -> Vec<f64> {
        self.instructions_per_core
            .iter()
            .map(|&n| {
                if self.cpu_cycles == 0 {
                    0.0
                } else {
                    n as f64 / self.cpu_cycles as f64
                }
            })
            .collect()
    }

    /// Ratio of the slowest core's IPC to the fastest core's IPC (1.0 means
    /// perfectly balanced; small values indicate unfair scheduling).
    #[must_use]
    pub fn ipc_fairness(&self) -> f64 {
        let ipcs = self.per_core_ipc();
        let max = ipcs.iter().copied().fold(f64::NAN, f64::max);
        let min = ipcs.iter().copied().fold(f64::NAN, f64::min);
        if !max.is_finite() || max <= 0.0 {
            0.0
        } else {
            min / max
        }
    }

    /// Aggregate IPC of one tenant's core group (committed instructions of
    /// that tenant per CPU cycle). Slowdown and weighted-speedup metrics are
    /// ratios of this against an alone-run baseline.
    #[must_use]
    pub fn tenant_ipc(&self, tenant: usize) -> f64 {
        match self.instructions_per_tenant.get(tenant) {
            Some(&n) if self.cpu_cycles > 0 => n as f64 / self.cpu_cycles as f64,
            _ => 0.0,
        }
    }

    /// Per-tenant aggregate IPC values.
    #[must_use]
    pub fn tenant_ipcs(&self) -> Vec<f64> {
        (0..self.tenants).map(|t| self.tenant_ipc(t)).collect()
    }

    /// This run's user IPC normalized to a baseline run.
    #[must_use]
    pub fn normalized_ipc(&self, baseline: &Self) -> f64 {
        let b = baseline.user_ipc();
        if b == 0.0 {
            0.0
        } else {
            self.user_ipc() / b
        }
    }

    /// This run's average read latency normalized to a baseline run.
    #[must_use]
    pub fn normalized_latency(&self, baseline: &Self) -> f64 {
        if baseline.avg_read_latency_dram == 0.0 {
            0.0
        } else {
            self.avg_read_latency_dram / baseline.avg_read_latency_dram
        }
    }

    /// This run's row-buffer hit rate normalized to a baseline run.
    #[must_use]
    pub fn normalized_hit_rate(&self, baseline: &Self) -> f64 {
        if baseline.row_buffer_hit_rate == 0.0 {
            0.0
        } else {
            self.row_buffer_hit_rate / baseline.row_buffer_hit_rate
        }
    }

    /// Renders the statistics as one JSON object (hand-written: the build
    /// environment has no registry access, so no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let per_core: Vec<String> = self
            .instructions_per_core
            .iter()
            .map(u64::to_string)
            .collect();
        fn join<T: std::fmt::Display>(values: &[T]) -> String {
            values
                .iter()
                .map(T::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
        // Keys are strictly additive over earlier releases: existing
        // consumers of the `BENCH_*.json` files keep parsing unchanged, the
        // energy/power keys (and after them the tenancy/QoS keys) are
        // appended at the end of the object.
        let mut json = format!(
            concat!(
                "{{\"workload\":\"{}\",\"scheduler\":\"{}\",\"page_policy\":\"{}\",",
                "\"mapping\":\"{}\",\"channels\":{},\"cores\":{},\"cpu_cycles\":{},",
                "\"dram_cycles\":{},\"user_instructions\":{},\"instructions_per_core\":[{}],",
                "\"memory_reads_sent\":{},\"memory_writes_sent\":{},\"reads_completed\":{},",
                "\"writes_completed\":{},\"avg_read_latency_dram\":{},\"avg_read_latency_ns\":{},",
                "\"row_buffer_hit_rate\":{},\"single_access_activation_fraction\":{},",
                "\"avg_read_queue_len\":{},\"avg_write_queue_len\":{},\"bandwidth_utilization\":{},",
                "\"l2_mpki\":{},\"activations_per_kilo_instr\":{},\"dram_energy_mj\":{},",
                "\"power_policy\":\"{}\",\"dram_background_energy_mj\":{},",
                "\"avg_dram_power_mw\":{},\"energy_per_request_nj\":{},",
                "\"power_down_fraction\":{},\"self_refresh_fraction\":{},",
                "\"power_down_entries\":{},\"power_wakes\":{}"
            ),
            esc(&self.workload),
            esc(&self.scheduler),
            esc(&self.page_policy),
            esc(&self.mapping),
            self.channels,
            self.cores,
            self.cpu_cycles,
            self.dram_cycles,
            self.user_instructions,
            per_core.join(","),
            self.memory_reads_sent,
            self.memory_writes_sent,
            self.reads_completed,
            self.writes_completed,
            self.avg_read_latency_dram,
            self.avg_read_latency_ns,
            self.row_buffer_hit_rate,
            self.single_access_activation_fraction,
            self.avg_read_queue_len,
            self.avg_write_queue_len,
            self.bandwidth_utilization,
            self.l2_mpki,
            self.activations_per_kilo_instr,
            self.dram_energy_mj,
            esc(&self.power_policy),
            self.dram_background_energy_mj,
            self.avg_dram_power_mw,
            self.energy_per_request_nj,
            self.power_down_fraction,
            self.self_refresh_fraction,
            self.power_down_entries,
            self.power_wakes,
        );
        let tenant_workloads: Vec<String> = self
            .tenant_workloads
            .iter()
            .map(|w| format!("\"{}\"", esc(w)))
            .collect();
        json.push_str(&format!(
            concat!(
                ",\"qos_policy\":\"{}\",\"tenants\":{},\"tenant_workloads\":[{}],",
                "\"tenant_cores\":[{}],\"tenant_latency_critical\":[{}],",
                "\"instructions_per_tenant\":[{}],\"reads_completed_per_tenant\":[{}],",
                "\"avg_read_latency_per_tenant\":[{}],\"bandwidth_share_per_tenant\":[{}],",
                "\"row_hit_rate_per_tenant\":[{}],\"avg_read_queue_len_per_tenant\":[{}]"
            ),
            esc(&self.qos_policy),
            self.tenants,
            tenant_workloads.join(","),
            join(&self.tenant_cores),
            join(&self.tenant_latency_critical),
            join(&self.instructions_per_tenant),
            join(&self.reads_completed_per_tenant),
            join(&self.avg_read_latency_per_tenant),
            join(&self.bandwidth_share_per_tenant),
            join(&self.row_hit_rate_per_tenant),
            join(&self.avg_read_queue_len_per_tenant),
        ));
        // Reliability keys (third additive block, appended after the
        // tenancy/QoS keys).
        json.push_str(&format!(
            concat!(
                ",\"ecc_corrected\":{},\"ecc_detected_uncorrectable\":{},",
                "\"ecc_miscorrects\":{},\"demand_retries\":{},",
                "\"scrub_reads_issued\":{},\"scrub_reads_completed\":{},",
                "\"scrub_corrected\":{},\"scrub_uncorrectable\":{},",
                "\"rows_retired\":{},\"lines_poisoned\":{},\"poisoned_reads\":{},",
                "\"faults_injected\":{},\"faults_corrected\":{},",
                "\"faults_uncorrectable\":{},\"faults_latent\":{},",
                "\"rows_retired_per_rank\":[{}],\"retired_capacity_bytes\":{}"
            ),
            self.ecc_corrected,
            self.ecc_detected_uncorrectable,
            self.ecc_miscorrects,
            self.demand_retries,
            self.scrub_reads_issued,
            self.scrub_reads_completed,
            self.scrub_corrected,
            self.scrub_uncorrectable,
            self.rows_retired,
            self.lines_poisoned,
            self.poisoned_reads,
            self.faults_injected,
            self.faults_corrected,
            self.faults_uncorrectable,
            self.faults_latent,
            join(&self.rows_retired_per_rank),
            self.retired_capacity_bytes,
        ));
        // Latency-percentile keys (fourth additive block, appended after the
        // reliability keys).
        json.push_str(&format!(
            concat!(
                ",\"read_latency_p50_dram\":{},\"read_latency_p95_dram\":{},",
                "\"read_latency_p99_dram\":{},\"read_latency_max_dram\":{}}}"
            ),
            self.read_latency_p50_dram,
            self.read_latency_p95_dram,
            self.read_latency_p99_dram,
            self.read_latency_max_dram,
        ));
        json
    }
}

/// Arithmetic mean of an iterator of values (0 when empty). Used when
/// averaging a metric over the workloads of one category, as the paper does
/// for the `Avg_SCO` / `Avg_TRS` / `Avg_DSP` bars.
#[must_use]
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instr: u64, cycles: u64) -> SimStats {
        SimStats {
            workload: "DS".to_owned(),
            scheduler: "FR-FCFS".to_owned(),
            page_policy: "open-adaptive".to_owned(),
            power_policy: "none".to_owned(),
            mapping: "RoRaBaCoCh".to_owned(),
            channels: 1,
            cores: 4,
            cpu_cycles: cycles,
            dram_cycles: cycles * 2 / 5,
            user_instructions: instr,
            instructions_per_core: vec![instr / 4; 4],
            memory_reads_sent: 100,
            memory_writes_sent: 40,
            reads_completed: 100,
            writes_completed: 40,
            avg_read_latency_dram: 80.0,
            avg_read_latency_ns: 100.0,
            row_buffer_hit_rate: 0.4,
            single_access_activation_fraction: 0.85,
            avg_read_queue_len: 2.0,
            avg_write_queue_len: 5.0,
            bandwidth_utilization: 0.3,
            l2_mpki: 5.0,
            activations_per_kilo_instr: 3.0,
            dram_energy_mj: 1.0,
            dram_background_energy_mj: 0.6,
            avg_dram_power_mw: 900.0,
            energy_per_request_nj: 7.0,
            power_down_fraction: 0.0,
            self_refresh_fraction: 0.0,
            power_down_entries: 0,
            power_wakes: 0,
            qos_policy: "none".to_owned(),
            tenants: 2,
            tenant_workloads: vec!["DS".to_owned(), "TPCH-Q6".to_owned()],
            tenant_cores: vec![2, 2],
            tenant_latency_critical: vec![true, false],
            instructions_per_tenant: vec![instr / 2, instr / 2],
            reads_completed_per_tenant: vec![60, 40],
            avg_read_latency_per_tenant: vec![70.0, 95.0],
            bandwidth_share_per_tenant: vec![0.6, 0.4],
            row_hit_rate_per_tenant: vec![0.5, 0.3],
            avg_read_queue_len_per_tenant: vec![1.0, 1.0],
            ecc_corrected: 3,
            ecc_detected_uncorrectable: 1,
            ecc_miscorrects: 0,
            demand_retries: 2,
            scrub_reads_issued: 50,
            scrub_reads_completed: 48,
            scrub_corrected: 4,
            scrub_uncorrectable: 0,
            rows_retired: 1,
            lines_poisoned: 1,
            poisoned_reads: 0,
            faults_injected: 9,
            faults_corrected: 7,
            faults_uncorrectable: 2,
            faults_latent: 0,
            rows_retired_per_rank: vec![1, 0],
            retired_capacity_bytes: 8192,
            read_latency_p50_dram: 72.0,
            read_latency_p95_dram: 180.0,
            read_latency_p99_dram: 240.0,
            read_latency_max_dram: 255,
        }
    }

    #[test]
    fn ipc_and_normalization() {
        let base = stats(4000, 1000);
        let other = stats(2000, 1000);
        assert!((base.user_ipc() - 4.0).abs() < 1e-9);
        assert!((other.normalized_ipc(&base) - 0.5).abs() < 1e-9);
        assert!((other.normalized_latency(&base) - 1.0).abs() < 1e-9);
        assert!((other.normalized_hit_rate(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_detects_imbalance() {
        let mut s = stats(4000, 1000);
        assert!((s.ipc_fairness() - 1.0).abs() < 1e-9);
        s.instructions_per_core = vec![100, 1000, 1000, 1900];
        assert!(s.ipc_fairness() < 0.2);
    }

    #[test]
    fn zero_cycles_do_not_divide_by_zero() {
        let s = stats(0, 0);
        assert_eq!(s.user_ipc(), 0.0);
        assert_eq!(s.per_core_ipc(), vec![0.0; 4]);
    }

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean([]), 0.0);
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_serialize_to_json() {
        let s = stats(100, 10);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workload\":\"DS\""));
        assert!(json.contains("\"cpu_cycles\":10"));
        assert!(json.contains("\"instructions_per_core\":[25,25,25,25]"));
        assert!(json.contains("\"row_buffer_hit_rate\":0.4"));
        // Energy keys are additive (appended after the original key set).
        assert!(json.contains("\"power_policy\":\"none\""));
        assert!(json.contains("\"dram_background_energy_mj\":0.6"));
        assert!(json.contains("\"power_down_fraction\":0"));
        let energy_pos = json.find("\"dram_energy_mj\"").unwrap();
        let added_pos = json.find("\"power_policy\"").unwrap();
        assert!(
            added_pos > energy_pos,
            "new keys must come after the pre-existing ones"
        );
        // Tenancy/QoS keys are additive too (after the energy keys).
        let qos_pos = json.find("\"qos_policy\"").unwrap();
        assert!(qos_pos > added_pos);
        assert!(json.contains("\"tenants\":2"));
        assert!(json.contains("\"tenant_workloads\":[\"DS\",\"TPCH-Q6\"]"));
        assert!(json.contains("\"tenant_latency_critical\":[true,false]"));
        assert!(json.contains("\"reads_completed_per_tenant\":[60,40]"));
        assert!(json.contains("\"bandwidth_share_per_tenant\":[0.6,0.4]"));
        // Reliability keys are additive too (after the tenancy keys).
        let ecc_pos = json.find("\"ecc_corrected\"").unwrap();
        assert!(ecc_pos > qos_pos);
        assert!(json.contains("\"ecc_corrected\":3"));
        assert!(json.contains("\"demand_retries\":2"));
        assert!(json.contains("\"scrub_reads_issued\":50"));
        assert!(json.contains("\"faults_injected\":9"));
        assert!(json.contains("\"rows_retired_per_rank\":[1,0]"));
        assert!(json.contains("\"retired_capacity_bytes\":8192"));
        // Latency-percentile keys are additive too (after the reliability
        // keys).
        let p50_pos = json.find("\"read_latency_p50_dram\"").unwrap();
        assert!(p50_pos > ecc_pos);
        assert!(json.contains("\"read_latency_p50_dram\":72"));
        assert!(json.contains("\"read_latency_p95_dram\":180"));
        assert!(json.contains("\"read_latency_p99_dram\":240"));
        assert!(json.contains("\"read_latency_max_dram\":255"));
        assert!(json.ends_with('}'));
        // Every key appears exactly once.
        assert_eq!(json.matches("\"scheduler\"").count(), 1);
    }

    #[test]
    fn tenant_ipc_partitions_the_aggregate() {
        let s = stats(4000, 1000);
        assert!((s.tenant_ipc(0) - 2.0).abs() < 1e-9);
        assert!((s.tenant_ipc(1) - 2.0).abs() < 1e-9);
        assert_eq!(s.tenant_ipc(7), 0.0);
        let sum: f64 = s.tenant_ipcs().iter().sum();
        assert!((sum - s.user_ipc()).abs() < 1e-9);
    }
}
