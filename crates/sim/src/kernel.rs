//! The simulation kernel: the pieces that glue the CPU-side frontend to the
//! DRAM-side backend without belonging to either.
//!
//! # Clock-domain crossing
//!
//! The model runs two clock domains: cores and caches at 2 GHz, the DRAM
//! command bus at 800 MHz (DDR3-1600). The ratio is exactly
//! [`crate::config::DRAM_CYCLES_PER_5_CPU_CYCLES`]
//! DRAM cycles per 5 CPU cycles, so [`ClockCrossing`] keeps a fractional
//! accumulator in units of fifths: every CPU step adds 2/5 of a DRAM cycle,
//! and whenever the accumulator reaches a whole DRAM cycle the backend is
//! ticked. Over any window of 5 CPU cycles the backend therefore runs exactly
//! 2 DRAM cycles, with no drift and no floating point.
//!
//! # Pending fills and retries
//!
//! Data moving *up* (memory fills and L2 hits on their way back to a core)
//! waits in a [`FillQueue`], a min-heap ordered by due CPU cycle so that
//! delivering the due fills each cycle costs `O(due · log n)` instead of a
//! linear scan over everything outstanding. Requests moving *down* that were
//! rejected by a full controller queue wait in per-(shard, channel, kind)
//! retry buckets owned by the [`backend`](crate::backend); both structures
//! replace the `O(outstanding)` per-cycle `Vec` scans of the former
//! monolithic `System`.
//!
//! # Event-horizon fast-forward
//!
//! A cycle-accurate model spends most of its wall-clock on cycles where
//! nothing happens: cores burning down a compute burst or stalled on memory,
//! controllers waiting out DRAM timing fences, whole refresh intervals of
//! silence. The kernel therefore lets every layer report the next cycle at
//! which it could possibly act:
//!
//! * the frontend, via `Frontend::next_event_cycle` — the next core that
//!   needs its instruction stream, wakes from a stall, or the next DMA beat
//!   (cores expose this as `InOrderCore::runway`);
//! * the fill queue, via [`FillQueue::next_due_cycle`] — the min-heap head;
//! * the backend, via `MemoryController::next_ready_dram_cycle` — derived
//!   from bank/rank/bus timing state, pending queues, refresh schedules,
//!   scheduler time boundaries and page-policy proposals.
//!
//! `System::run_cycles` takes the minimum over all layers (the *event
//! horizon*), converts DRAM-domain events to CPU cycles through
//! [`ClockCrossing::cpu_cycle_of_dram_tick`], and jumps straight there with
//! [`ClockCrossing::fast_forward`] — which advances both clocks and the
//! fractional 2:5 phase accumulator exactly as per-cycle stepping would, so
//! the jump is invisible: every layer guarantees its bound never overshoots,
//! making the fast-forwarded run *bit-identical* to the naive loop (the
//! `fast_forward` config knob and `tests/fast_forward_equivalence.rs` hold
//! it to that). Skipped cycles apply their only side effects (core cycle
//! counters, controller queue-occupancy samples) in closed form.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::DRAM_CYCLES_PER_5_CPU_CYCLES;

/// A component advanced cycle by cycle in its own clock domain.
///
/// One `tick` call advances the component by one cycle of *its* clock and
/// appends whatever surfaced this cycle to `events`; the kernel decides how
/// often each domain ticks (see [`ClockCrossing`]). Taking the event buffer
/// as a parameter lets the caller reuse one allocation across the whole run.
pub trait Tick {
    /// What the component reports back each cycle (completed requests for a
    /// memory backend, memory traffic for a core frontend).
    type Event;

    /// Advances the component to cycle `now`, pushing this cycle's events.
    fn tick(&mut self, now: u64, events: &mut Vec<Self::Event>);
}

/// Tracks the CPU and DRAM clocks and the fractional phase between them.
#[derive(Debug, Clone, Default)]
pub struct ClockCrossing {
    cpu_cycle: u64,
    dram_cycle: u64,
    /// Fractional DRAM cycles owed, in units of 1/5 DRAM cycle.
    acc: u64,
}

impl ClockCrossing {
    /// Both clocks at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Current DRAM cycle.
    #[must_use]
    pub fn dram_cycle(&self) -> u64 {
        self.dram_cycle
    }

    /// Accrues one CPU cycle's worth of DRAM time and returns how many whole
    /// DRAM cycles the backend must now be ticked.
    pub fn accrue_cpu_cycle(&mut self) -> u64 {
        self.acc += DRAM_CYCLES_PER_5_CPU_CYCLES;
        let due = self.acc / 5;
        self.acc %= 5;
        due
    }

    /// Records that one due DRAM tick ran.
    pub fn complete_dram_tick(&mut self) {
        self.dram_cycle += 1;
    }

    /// Records that the CPU cycle finished.
    pub fn complete_cpu_cycle(&mut self) {
        self.cpu_cycle += 1;
    }

    /// How many DRAM ticks would run within the next `cpu_cycles` CPU cycles,
    /// without advancing anything.
    #[must_use]
    pub fn dram_ticks_within(&self, cpu_cycles: u64) -> u64 {
        (self.acc + DRAM_CYCLES_PER_5_CPU_CYCLES * cpu_cycles) / 5
    }

    /// Jumps both clocks forward by `cpu_cycles` CPU cycles at once.
    ///
    /// Exactly equivalent to `cpu_cycles` iterations of
    /// [`ClockCrossing::accrue_cpu_cycle`] / [`ClockCrossing::complete_dram_tick`] /
    /// [`ClockCrossing::complete_cpu_cycle`]: the integer phase accumulator
    /// makes the bulk update associative, so the 2:5 ratio carries no drift
    /// across a jump of any length. The caller is responsible for ensuring
    /// the skipped DRAM ticks would have been no-ops.
    pub fn fast_forward(&mut self, cpu_cycles: u64) {
        let total = self.acc + DRAM_CYCLES_PER_5_CPU_CYCLES * cpu_cycles;
        self.dram_cycle += total / 5;
        self.acc = total % 5;
        self.cpu_cycle += cpu_cycles;
    }

    /// The CPU cycle during which DRAM tick number `dram_tick` runs (the
    /// tick that observes `now == dram_tick`), given the current phase.
    ///
    /// Ticks that already ran map to the current CPU cycle; `u64::MAX` maps
    /// to `u64::MAX` (the conventional "never" sentinel).
    #[must_use]
    pub fn cpu_cycle_of_dram_tick(&self, dram_tick: u64) -> u64 {
        if dram_tick == u64::MAX {
            return u64::MAX;
        }
        if dram_tick < self.dram_cycle {
            return self.cpu_cycle;
        }
        // The tick runs during the N-th upcoming CPU cycle, where N is the
        // smallest count with floor((acc + 2N) / 5) covering it. Saturating
        // arithmetic keeps far-future sentinels from wrapping.
        let needed = dram_tick - self.dram_cycle + 1;
        let n = 5u64
            .saturating_mul(needed)
            .saturating_sub(self.acc)
            .div_ceil(DRAM_CYCLES_PER_5_CPU_CYCLES);
        self.cpu_cycle.saturating_add(n - 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FillEntry {
    due_cpu_cycle: u64,
    /// Insertion sequence number: ties on the due cycle break FIFO so that
    /// delivery order — and with it the whole simulation — is deterministic.
    seq: u64,
    core: usize,
    addr: u64,
}

impl Ord for FillEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_cpu_cycle, self.seq).cmp(&(other.due_cpu_cycle, other.seq))
    }
}

impl PartialOrd for FillEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Cache blocks on their way back to a core (L2 hits after their access
/// latency, memory fills after the crossbar), ordered by delivery cycle.
#[derive(Debug, Default)]
pub struct FillQueue {
    heap: BinaryHeap<Reverse<FillEntry>>,
    seq: u64,
}

impl FillQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules delivery of `addr` to `core` at CPU cycle `due_cpu_cycle`.
    pub fn push(&mut self, due_cpu_cycle: u64, core: usize, addr: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(FillEntry {
            due_cpu_cycle,
            seq,
            core,
            addr,
        }));
    }

    /// The CPU cycle of the earliest pending fill, if any (the event-horizon
    /// contribution of data already on its way back to a core).
    #[must_use]
    pub fn next_due_cycle(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(entry)| entry.due_cpu_cycle)
    }

    /// Removes and returns the next `(core, addr)` due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(usize, u64)> {
        let Reverse(head) = self.heap.peek()?;
        if head.due_cpu_cycle > now {
            return None;
        }
        let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
        Some((entry.core, entry.addr))
    }

    /// Number of undelivered fills.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no fill is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ratio_is_exactly_two_dram_per_five_cpu() {
        let mut clock = ClockCrossing::new();
        let mut dram_ticks = 0;
        for _ in 0..5_000 {
            for _ in 0..clock.accrue_cpu_cycle() {
                clock.complete_dram_tick();
                dram_ticks += 1;
            }
            clock.complete_cpu_cycle();
        }
        assert_eq!(clock.cpu_cycle(), 5_000);
        assert_eq!(dram_ticks, 2_000);
        assert_eq!(clock.dram_cycle(), 2_000);
    }

    #[test]
    fn dram_ticks_are_spread_not_bunched() {
        let mut clock = ClockCrossing::new();
        let per_cycle: Vec<u64> = (0..5).map(|_| clock.accrue_cpu_cycle()).collect();
        // 2 DRAM cycles per 5 CPU cycles, at most one per CPU cycle.
        assert_eq!(per_cycle.iter().sum::<u64>(), 2);
        assert!(per_cycle.iter().all(|&n| n <= 1));
    }

    #[test]
    fn fast_forward_matches_per_cycle_stepping() {
        // Every jump length from every phase must land on the exact state the
        // per-cycle loop reaches.
        for prefix in 0..7u64 {
            for jump in 0..23u64 {
                let mut stepped = ClockCrossing::new();
                let mut jumped = ClockCrossing::new();
                for clock in [&mut stepped, &mut jumped] {
                    for _ in 0..prefix {
                        for _ in 0..clock.accrue_cpu_cycle() {
                            clock.complete_dram_tick();
                        }
                        clock.complete_cpu_cycle();
                    }
                }
                for _ in 0..jump {
                    for _ in 0..stepped.accrue_cpu_cycle() {
                        stepped.complete_dram_tick();
                    }
                    stepped.complete_cpu_cycle();
                }
                assert_eq!(jumped.dram_ticks_within(jump), {
                    stepped.dram_cycle() - jumped.dram_cycle()
                });
                jumped.fast_forward(jump);
                assert_eq!(stepped.cpu_cycle(), jumped.cpu_cycle());
                assert_eq!(stepped.dram_cycle(), jumped.dram_cycle());
                assert_eq!(stepped.acc, jumped.acc);
            }
        }
    }

    #[test]
    fn cpu_cycle_of_dram_tick_names_the_cycle_the_tick_runs_in() {
        // Walk the real interleaving and record which CPU cycle each DRAM
        // tick executes in, then check the closed form from every phase.
        let mut clock = ClockCrossing::new();
        let mut tick_cycle = Vec::new();
        for cpu in 0..50u64 {
            // The prediction for the next tick must hold at every phase.
            let next_tick = clock.dram_cycle();
            let predicted = clock.cpu_cycle_of_dram_tick(next_tick);
            for _ in 0..clock.accrue_cpu_cycle() {
                tick_cycle.push(cpu);
                clock.complete_dram_tick();
            }
            if clock.dram_cycle() > next_tick {
                assert_eq!(predicted, cpu, "next-tick prediction at cycle {cpu}");
            }
            clock.complete_cpu_cycle();
        }
        // Re-predict every tick from a fresh clock at phase zero.
        let fresh = ClockCrossing::new();
        for (tick, &cycle) in tick_cycle.iter().enumerate() {
            assert_eq!(
                fresh.cpu_cycle_of_dram_tick(tick as u64),
                cycle,
                "tick {tick} predicted wrong cycle"
            );
        }
        assert_eq!(fresh.cpu_cycle_of_dram_tick(u64::MAX), u64::MAX);
    }

    #[test]
    fn fills_pop_in_due_then_fifo_order() {
        let mut q = FillQueue::new();
        q.push(10, 0, 0xA);
        q.push(5, 1, 0xB);
        q.push(10, 2, 0xC);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some((1, 0xB)));
        assert_eq!(q.pop_due(9), None);
        // Equal due cycles come back in insertion order.
        assert_eq!(q.pop_due(10), Some((0, 0xA)));
        assert_eq!(q.pop_due(10), Some((2, 0xC)));
        assert!(q.is_empty());
    }
}
