//! The simulation kernel: the pieces that glue the CPU-side frontend to the
//! DRAM-side backend without belonging to either.
//!
//! # Clock-domain crossing
//!
//! The model runs two clock domains: cores and caches at 2 GHz, the DRAM
//! command bus at 800 MHz (DDR3-1600). The ratio is exactly
//! [`crate::config::DRAM_CYCLES_PER_5_CPU_CYCLES`]
//! DRAM cycles per 5 CPU cycles, so [`ClockCrossing`] keeps a fractional
//! accumulator in units of fifths: every CPU step adds 2/5 of a DRAM cycle,
//! and whenever the accumulator reaches a whole DRAM cycle the backend is
//! ticked. Over any window of 5 CPU cycles the backend therefore runs exactly
//! 2 DRAM cycles, with no drift and no floating point.
//!
//! # The time-ordered event queue
//!
//! The kernel's scheduling primitive is [`EventQueue`], a calendar (bucket
//! ring) queue: a circular array of per-cycle FIFO buckets covering a sliding
//! window of upcoming cycles, with a `BTreeMap` overflow level for events
//! beyond the window. Near-future events — the overwhelmingly common case:
//! crossbar hops, L2 latencies, DRAM timing fences — cost `O(1)` to push and
//! pop; far-future events (refresh intervals, power-down timeouts, scheduler
//! quanta) pay one `BTreeMap` insert and migrate into the ring as the window
//! slides over them. Events posted for the same cycle pop in insertion
//! order, so delivery — and with it the whole simulation — is deterministic
//! (`event_queue_ties_pop_fifo` and the model-based property test hold it to
//! that). "Decrease-key" is done lazily, as in a timer wheel: post the new
//! deadline and ignore the stale one when it fires, which is also how the
//! kernel's cached layer bounds behave.
//!
//! [`FillQueue`] — cache blocks on their way back up to a core (L2 hits
//! after their access latency, memory fills after the crossbar) — is a thin
//! typed wrapper over an [`EventQueue`]. Requests moving *down* that were
//! rejected by a full controller queue wait in per-(shard, channel, kind)
//! retry buckets owned by the [`backend`](crate::backend).
//!
//! # Event-driven execution
//!
//! A cycle-accurate model spends most of its wall-clock on cycles where
//! nothing happens — and, on dense streams, most of the remaining wall-clock
//! *re-polling* layers that already know their next deadline. The kernel
//! therefore runs (when `SystemConfig::event_driven` is set) a time-ordered
//! loop in which every layer posts its next actionable cycle once and is
//! only re-evaluated when that cycle arrives or an upstream dependency
//! invalidates the posted bound:
//!
//! * each core keeps a *runway* (`InOrderCore::runway`) — how many cycles it
//!   can burn without new decisions — and the frontend advances cores
//!   lazily, catching each one up in closed form only when its posted wake
//!   cycle (or an arriving fill) makes it act;
//! * the fill queue is consulted via [`FillQueue::next_due_cycle`] — the
//!   head of the calendar queue;
//! * the backend caches, per shard, the next DRAM tick at which the shard
//!   can possibly act (`MemoryController::next_ready_dram_cycle`, derived
//!   from bank/rank/bus timing state, pending queues, refresh schedules,
//!   scheduler time boundaries and page-policy proposals), recomputed only
//!   after a tick that did no work and invalidated by request submission.
//!
//! `System::run_cycles` takes the minimum over these posted cycles, converts
//! DRAM-domain deadlines to CPU cycles through
//! [`ClockCrossing::cpu_cycle_of_dram_tick`], and jumps straight there with
//! [`ClockCrossing::fast_forward`] — which advances both clocks and the
//! fractional 2:5 phase accumulator exactly as per-cycle stepping would.
//! Every layer guarantees its bound never overshoots, so the event-driven
//! run is *bit-identical* to the naive polling loop (the `fast_forward` /
//! `event_driven` config knobs and `tests/fast_forward_equivalence.rs` hold
//! it to that). Skipped cycles apply their only side effects (core cycle
//! counters, controller queue-occupancy samples) in closed form. The older
//! event-horizon mode (`fast_forward` without `event_driven`) keeps the
//! PR-2 recompute-and-jump loop as a bisection aid.
//!
//! # Threaded backend shards
//!
//! Block-interleaved backend shards share no state, so with
//! `SystemConfig::threads > 1` their due DRAM ticks run on worker threads.
//! Determinism is preserved by construction: the barrier sits at the 2:5
//! clock-crossing boundary (workers only run ticks the sequential loop would
//! run before the next CPU-side interaction), and per-shard completions are
//! joined in (tick, shard) order — exactly the order the sequential loop
//! produces — so `SimStats` is bit-identical for any thread count.

use std::collections::{BTreeMap, VecDeque};

use crate::config::DRAM_CYCLES_PER_5_CPU_CYCLES;

/// A component advanced cycle by cycle in its own clock domain.
///
/// One `tick` call advances the component by one cycle of *its* clock and
/// appends whatever surfaced this cycle to `events`; the kernel decides how
/// often each domain ticks (see [`ClockCrossing`]). Taking the event buffer
/// as a parameter lets the caller reuse one allocation across the whole run.
pub trait Tick {
    /// What the component reports back each cycle (completed requests for a
    /// memory backend, memory traffic for a core frontend).
    type Event;

    /// Advances the component to cycle `now`, pushing this cycle's events.
    fn tick(&mut self, now: u64, events: &mut Vec<Self::Event>);
}

/// Tracks the CPU and DRAM clocks and the fractional phase between them.
#[derive(Debug, Clone, Default)]
pub struct ClockCrossing {
    cpu_cycle: u64,
    dram_cycle: u64,
    /// Fractional DRAM cycles owed, in units of 1/5 DRAM cycle.
    acc: u64,
}

impl ClockCrossing {
    /// Both clocks at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Current DRAM cycle.
    #[must_use]
    pub fn dram_cycle(&self) -> u64 {
        self.dram_cycle
    }

    /// Accrues one CPU cycle's worth of DRAM time and returns how many whole
    /// DRAM cycles the backend must now be ticked.
    pub fn accrue_cpu_cycle(&mut self) -> u64 {
        self.acc += DRAM_CYCLES_PER_5_CPU_CYCLES;
        let due = self.acc / 5;
        self.acc %= 5;
        due
    }

    /// Records that one due DRAM tick ran.
    pub fn complete_dram_tick(&mut self) {
        self.dram_cycle += 1;
    }

    /// Records that the CPU cycle finished.
    pub fn complete_cpu_cycle(&mut self) {
        self.cpu_cycle += 1;
    }

    /// How many DRAM ticks would run within the next `cpu_cycles` CPU cycles,
    /// without advancing anything.
    #[must_use]
    pub fn dram_ticks_within(&self, cpu_cycles: u64) -> u64 {
        (self.acc + DRAM_CYCLES_PER_5_CPU_CYCLES * cpu_cycles) / 5
    }

    /// Jumps both clocks forward by `cpu_cycles` CPU cycles at once.
    ///
    /// Exactly equivalent to `cpu_cycles` iterations of
    /// [`ClockCrossing::accrue_cpu_cycle`] / [`ClockCrossing::complete_dram_tick`] /
    /// [`ClockCrossing::complete_cpu_cycle`]: the integer phase accumulator
    /// makes the bulk update associative, so the 2:5 ratio carries no drift
    /// across a jump of any length. The caller is responsible for ensuring
    /// the skipped DRAM ticks would have been no-ops.
    pub fn fast_forward(&mut self, cpu_cycles: u64) {
        let total = self.acc + DRAM_CYCLES_PER_5_CPU_CYCLES * cpu_cycles;
        self.dram_cycle += total / 5;
        self.acc = total % 5;
        self.cpu_cycle += cpu_cycles;
    }

    /// Serializes both clocks and the fractional phase accumulator
    /// (checkpoint support).
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("clock");
        w.u64(self.cpu_cycle);
        w.u64(self.dram_cycle);
        w.u64(self.acc);
    }

    /// Restores both clocks and the phase accumulator from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an
    /// accumulator outside the 2:5 phase range.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("clock")?;
        self.cpu_cycle = r.u64()?;
        self.dram_cycle = r.u64()?;
        let acc = r.u64()?;
        if acc >= 5 {
            return Err(r.bad_value(format!("phase accumulator {acc} outside 0..5")));
        }
        self.acc = acc;
        Ok(())
    }

    /// The CPU cycle during which DRAM tick number `dram_tick` runs (the
    /// tick that observes `now == dram_tick`), given the current phase.
    ///
    /// Ticks that already ran map to the current CPU cycle; `u64::MAX` maps
    /// to `u64::MAX` (the conventional "never" sentinel).
    #[must_use]
    pub fn cpu_cycle_of_dram_tick(&self, dram_tick: u64) -> u64 {
        if dram_tick == u64::MAX {
            return u64::MAX;
        }
        if dram_tick < self.dram_cycle {
            return self.cpu_cycle;
        }
        // The tick runs during the N-th upcoming CPU cycle, where N is the
        // smallest count with floor((acc + 2N) / 5) covering it. Saturating
        // arithmetic keeps far-future sentinels from wrapping.
        let needed = dram_tick - self.dram_cycle + 1;
        let n = 5u64
            .saturating_mul(needed)
            .saturating_sub(self.acc)
            .div_ceil(DRAM_CYCLES_PER_5_CPU_CYCLES);
        self.cpu_cycle.saturating_add(n - 1)
    }
}

/// Cycles the calendar ring covers ahead of its base before events spill to
/// the overflow map. Fixed at 64 so bucket occupancy fits one `u64` bitmask
/// (the earliest pending cycle is a rotate plus a trailing-zero count);
/// sized to cover the kernel's near-future traffic (crossbar hops, cache
/// latencies, DRAM timing fences) with headroom.
const EVENT_RING_SPAN: u64 = 64;

/// A time-ordered event queue: a calendar (bucket ring) queue with a sorted
/// overflow level.
///
/// A circular array of `EVENT_RING_SPAN` per-cycle FIFO buckets covers the
/// window `[base, base + span)`; events beyond the window wait in a
/// `BTreeMap` keyed by cycle and migrate into the ring as the window slides
/// over their cycle. Pushes, pops and next-due queries of near-future events
/// are `O(1)` — a one-word occupancy bitmask locates the earliest non-empty
/// bucket without walking the ring. Events due the same cycle pop in
/// insertion order — ties are FIFO, never arbitrary — which is what makes
/// kernels built on this queue deterministic. Rescheduling ("decrease-key")
/// is done lazily timer-wheel style: push the new deadline and disregard the
/// stale event when it surfaces.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Per-cycle FIFO buckets; cycle `c` lives at `c % EVENT_RING_SPAN`
    /// while `c - base < EVENT_RING_SPAN`.
    ring: Vec<VecDeque<T>>,
    /// Occupancy bitmask: bit `i` set iff `ring[i]` is non-empty.
    occupied: u64,
    /// Start of the ring's window. Only advances on pops, so it never
    /// outruns the caller's clock: any push at or after the current cycle
    /// lands at its exact position.
    base: u64,
    /// Events in the ring.
    ring_len: usize,
    /// Far-future events, migrated into the ring as `base` advances.
    /// Invariant: every key is `>= base + EVENT_RING_SPAN`.
    overflow: BTreeMap<u64, VecDeque<T>>,
    /// Events in the overflow map.
    overflow_len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with its window starting at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ring: std::iter::repeat_with(VecDeque::new)
                .take(EVENT_RING_SPAN as usize)
                .collect(),
            occupied: 0,
            base: 0,
            ring_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
        }
    }

    /// Total scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow_len
    }

    /// Whether no event is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` for cycle `due`. Cycles the queue has already
    /// drained past clamp to the start of the window, so a late post fires
    /// immediately rather than being lost.
    pub fn push(&mut self, due: u64, item: T) {
        let due = due.max(self.base);
        if due - self.base < EVENT_RING_SPAN {
            let idx = (due % EVENT_RING_SPAN) as usize;
            self.ring[idx].push_back(item);
            self.occupied |= 1 << idx;
            self.ring_len += 1;
        } else {
            self.overflow.entry(due).or_default().push_back(item);
            self.overflow_len += 1;
        }
    }

    /// The earliest occupied cycle in the ring, located via the occupancy
    /// bitmask in constant time.
    fn first_ring_cycle(&self) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        let start = (self.base % EVENT_RING_SPAN) as u32;
        let offset = u64::from(self.occupied.rotate_right(start).trailing_zeros());
        Some(self.base + offset)
    }

    /// The cycle of the earliest scheduled event, if any. Ring events always
    /// precede overflow events (overflow keys lie beyond the window).
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        self.first_ring_cycle()
            .or_else(|| self.overflow.keys().next().copied())
    }

    /// Pulls every overflow bucket now inside `[base, base + span)` into the
    /// ring. Migration happens eagerly on every `base` advance, before any
    /// new push can target the newly covered cycle, so same-cycle FIFO order
    /// is preserved across the overflow boundary.
    fn migrate(&mut self) {
        while let Some((&cycle, _)) = self.overflow.first_key_value() {
            if cycle - self.base >= EVENT_RING_SPAN {
                break;
            }
            // simlint: allow(panic) key returned by first_key_value two lines up
            let bucket = self.overflow.remove(&cycle).expect("first key exists");
            self.overflow_len -= bucket.len();
            self.ring_len += bucket.len();
            let idx = (cycle % EVENT_RING_SPAN) as usize;
            debug_assert!(
                self.ring[idx].is_empty(),
                "migrated into an occupied bucket"
            );
            self.ring[idx] = bucket;
            self.occupied |= 1 << idx;
        }
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `now`; same-cycle events come back in insertion order.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        let cycle = match self.first_ring_cycle() {
            Some(cycle) => cycle,
            None => *self.overflow.first_key_value()?.0,
        };
        if cycle > now {
            return None;
        }
        // Slide the window up to the event being popped (cycle <= now, so
        // the base never outruns the caller's clock) and migrate overflow
        // buckets the window now covers.
        self.base = cycle;
        self.migrate();
        let idx = (cycle % EVENT_RING_SPAN) as usize;
        let item = self.ring[idx]
            .pop_front()
            // simlint: allow(panic) occupied bitmap guarantees a pending event at idx
            .expect("first pending bucket is non-empty");
        self.ring_len -= 1;
        if self.ring[idx].is_empty() {
            self.occupied &= !(1 << idx);
        }
        Some(item)
    }
}

/// Cache blocks on their way back to a core (L2 hits after their access
/// latency, memory fills after the crossbar), ordered by delivery cycle with
/// FIFO ties: a typed wrapper over the kernel's [`EventQueue`].
#[derive(Debug, Default)]
pub struct FillQueue {
    queue: EventQueue<(usize, u64)>,
}

impl FillQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules delivery of `addr` to `core` at CPU cycle `due_cpu_cycle`.
    pub fn push(&mut self, due_cpu_cycle: u64, core: usize, addr: u64) {
        self.queue.push(due_cpu_cycle, (core, addr));
    }

    /// The CPU cycle of the earliest pending fill, if any (the event-horizon
    /// contribution of data already on its way back to a core).
    #[must_use]
    pub fn next_due_cycle(&self) -> Option<u64> {
        self.queue.next_due()
    }

    /// Removes and returns the next `(core, addr)` due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(usize, u64)> {
        self.queue.pop_due(now)
    }

    /// Number of undelivered fills.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no fill is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Serializes the queue structurally — window base plus every pending
    /// fill as `(cycle, core, addr)` in pop order (checkpoint support). The
    /// restored queue clamps and migrates identically because the base is
    /// preserved and pushes replay in the saved order.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("fill-queue");
        w.u64(self.queue.base);
        w.usize(self.queue.len());
        // Ring buckets in cycle order from the base, then overflow buckets
        // (whose keys all lie beyond the ring window) in key order — exactly
        // the order the queue would pop them.
        for offset in 0..EVENT_RING_SPAN {
            let cycle = self.queue.base + offset;
            let idx = (cycle % EVENT_RING_SPAN) as usize;
            for &(core, addr) in &self.queue.ring[idx] {
                w.u64(cycle);
                w.usize(core);
                w.u64(addr);
            }
        }
        for (&cycle, bucket) in &self.queue.overflow {
            for &(core, addr) in bucket {
                w.u64(cycle);
                w.usize(core);
                w.u64(addr);
            }
        }
    }

    /// Restores the queue from a checkpoint written by
    /// [`FillQueue::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation or an event
    /// scheduled before the window base.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("fill-queue")?;
        let base = r.u64()?;
        let count = r.bounded_len(24)?;
        let mut queue = EventQueue::new();
        queue.base = base;
        for _ in 0..count {
            let cycle = r.u64()?;
            if cycle < base {
                return Err(r.bad_value(format!("fill at cycle {cycle} before base {base}")));
            }
            let core = r.usize()?;
            let addr = r.u64()?;
            queue.push(cycle, (core, addr));
        }
        self.queue = queue;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ratio_is_exactly_two_dram_per_five_cpu() {
        let mut clock = ClockCrossing::new();
        let mut dram_ticks = 0;
        for _ in 0..5_000 {
            for _ in 0..clock.accrue_cpu_cycle() {
                clock.complete_dram_tick();
                dram_ticks += 1;
            }
            clock.complete_cpu_cycle();
        }
        assert_eq!(clock.cpu_cycle(), 5_000);
        assert_eq!(dram_ticks, 2_000);
        assert_eq!(clock.dram_cycle(), 2_000);
    }

    #[test]
    fn dram_ticks_are_spread_not_bunched() {
        let mut clock = ClockCrossing::new();
        let per_cycle: Vec<u64> = (0..5).map(|_| clock.accrue_cpu_cycle()).collect();
        // 2 DRAM cycles per 5 CPU cycles, at most one per CPU cycle.
        assert_eq!(per_cycle.iter().sum::<u64>(), 2);
        assert!(per_cycle.iter().all(|&n| n <= 1));
    }

    #[test]
    fn fast_forward_matches_per_cycle_stepping() {
        // Every jump length from every phase must land on the exact state the
        // per-cycle loop reaches.
        for prefix in 0..7u64 {
            for jump in 0..23u64 {
                let mut stepped = ClockCrossing::new();
                let mut jumped = ClockCrossing::new();
                for clock in [&mut stepped, &mut jumped] {
                    for _ in 0..prefix {
                        for _ in 0..clock.accrue_cpu_cycle() {
                            clock.complete_dram_tick();
                        }
                        clock.complete_cpu_cycle();
                    }
                }
                for _ in 0..jump {
                    for _ in 0..stepped.accrue_cpu_cycle() {
                        stepped.complete_dram_tick();
                    }
                    stepped.complete_cpu_cycle();
                }
                assert_eq!(jumped.dram_ticks_within(jump), {
                    stepped.dram_cycle() - jumped.dram_cycle()
                });
                jumped.fast_forward(jump);
                assert_eq!(stepped.cpu_cycle(), jumped.cpu_cycle());
                assert_eq!(stepped.dram_cycle(), jumped.dram_cycle());
                assert_eq!(stepped.acc, jumped.acc);
            }
        }
    }

    #[test]
    fn cpu_cycle_of_dram_tick_names_the_cycle_the_tick_runs_in() {
        // Walk the real interleaving and record which CPU cycle each DRAM
        // tick executes in, then check the closed form from every phase.
        let mut clock = ClockCrossing::new();
        let mut tick_cycle = Vec::new();
        for cpu in 0..50u64 {
            // The prediction for the next tick must hold at every phase.
            let next_tick = clock.dram_cycle();
            let predicted = clock.cpu_cycle_of_dram_tick(next_tick);
            for _ in 0..clock.accrue_cpu_cycle() {
                tick_cycle.push(cpu);
                clock.complete_dram_tick();
            }
            if clock.dram_cycle() > next_tick {
                assert_eq!(predicted, cpu, "next-tick prediction at cycle {cpu}");
            }
            clock.complete_cpu_cycle();
        }
        // Re-predict every tick from a fresh clock at phase zero.
        let fresh = ClockCrossing::new();
        for (tick, &cycle) in tick_cycle.iter().enumerate() {
            assert_eq!(
                fresh.cpu_cycle_of_dram_tick(tick as u64),
                cycle,
                "tick {tick} predicted wrong cycle"
            );
        }
        assert_eq!(fresh.cpu_cycle_of_dram_tick(u64::MAX), u64::MAX);
    }

    #[test]
    fn fills_pop_in_due_then_fifo_order() {
        let mut q = FillQueue::new();
        q.push(10, 0, 0xA);
        q.push(5, 1, 0xB);
        q.push(10, 2, 0xC);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some((1, 0xB)));
        assert_eq!(q.pop_due(9), None);
        // Equal due cycles come back in insertion order.
        assert_eq!(q.pop_due(10), Some((0, 0xA)));
        assert_eq!(q.pop_due(10), Some((2, 0xC)));
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_ties_pop_fifo() {
        let mut q = EventQueue::new();
        // Same-cycle ties must pop in insertion order, including across the
        // ring/overflow boundary: 0..4 go to the ring, the far batch to the
        // overflow map, and both preserve per-cycle FIFO.
        for i in 0..4u32 {
            q.push(7, i);
        }
        let far = 7 + 3 * EVENT_RING_SPAN;
        for i in 10..14u32 {
            q.push(far, i);
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.next_due(), Some(7));
        for i in 0..4u32 {
            assert_eq!(q.pop_due(7), Some(i));
        }
        assert_eq!(q.pop_due(far - 1), None);
        assert_eq!(q.next_due(), Some(far));
        for i in 10..14u32 {
            assert_eq!(q.pop_due(far), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_clamps_late_pushes_forward() {
        let mut q = EventQueue::new();
        q.push(50, "a");
        assert_eq!(q.pop_due(50), Some("a"));
        // The window has drained past cycle 10; a late post must still fire.
        q.push(10, "late");
        assert_eq!(q.next_due(), Some(50));
        assert_eq!(q.pop_due(50), Some("late"));
    }

    /// Model-based property test: against a reference `BTreeMap` of FIFO
    /// buckets, the calendar queue must agree on every pop and every
    /// next-due answer across a long pseudo-random mix of dense (near) and
    /// sparse (far) schedules. Determinism of same-cycle ties falls out of
    /// the comparison: the model pops strictly in (cycle, insertion) order.
    #[test]
    fn event_queue_matches_reference_model() {
        let mut q = EventQueue::new();
        let mut model: BTreeMap<u64, VecDeque<u32>> = BTreeMap::new();
        let mut now = 0u64;
        let mut rng = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
        let mut next = |bound: u64| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % bound
        };
        for op in 0..20_000u32 {
            match next(4) {
                // Dense near-future push (in-ring) or sparse far push
                // (overflow), tagged with the op index so FIFO violations
                // are visible.
                0 | 1 => {
                    let horizon = if next(8) == 0 { 1000 } else { 16 };
                    let due = now + next(horizon);
                    q.push(due, op);
                    model.entry(due).or_default().push_back(op);
                }
                2 => {
                    now += next(32);
                }
                _ => {
                    // Drain everything due; both sides must agree exactly.
                    loop {
                        let expect = model.first_entry().and_then(|mut e| {
                            if *e.key() > now {
                                return None;
                            }
                            let v = e.get_mut().pop_front();
                            if e.get().is_empty() {
                                e.remove();
                            }
                            v
                        });
                        let got = q.pop_due(now);
                        assert_eq!(got, expect, "divergence at op {op}, now {now}");
                        if got.is_none() {
                            break;
                        }
                    }
                    assert_eq!(q.next_due(), model.keys().next().copied());
                }
            }
        }
        assert!(q.len() == model.values().map(VecDeque::len).sum::<usize>());
    }

    /// The exact ring edge: from any base, `base + EVENT_RING_SPAN - 1` is
    /// the last in-ring cycle and `base + EVENT_RING_SPAN` is the first
    /// overflow cycle — and both pop at their due cycles in order.
    #[test]
    fn event_queue_ring_edge_straddles_in_and_out_of_window() {
        for base in [0u64, 1, 63, 64, 65, 1000] {
            let mut q = EventQueue::new();
            // Slide the window to `base` by popping an event there.
            q.push(base, 0u32);
            assert_eq!(q.pop_due(base), Some(0));
            let last_in = base + EVENT_RING_SPAN - 1;
            let first_out = base + EVENT_RING_SPAN;
            q.push(first_out, 2);
            q.push(last_in, 1);
            assert_eq!(q.len(), 2);
            assert_eq!(q.next_due(), Some(last_in), "base {base}");
            assert_eq!(q.pop_due(last_in - 1), None);
            assert_eq!(q.pop_due(last_in), Some(1), "base {base}");
            assert_eq!(q.next_due(), Some(first_out));
            assert_eq!(q.pop_due(first_out), Some(2), "base {base}");
            assert!(q.is_empty());
        }
    }

    /// Events pushed past the window land in overflow and migrate into the
    /// ring as the base slides over them, preserving FIFO order with events
    /// pushed directly into the ring at the same cycle *after* migration.
    #[test]
    fn event_queue_overflow_promotes_across_window_slides() {
        let mut q = EventQueue::new();
        // Far beyond the first window: multiple buckets, FIFO within each.
        q.push(200, 1u32);
        q.push(200, 2);
        q.push(300, 3);
        q.push(0, 0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_due(0), Some(0));
        // Nothing due while only overflow remains.
        assert_eq!(q.pop_due(199), None);
        // Popping at 200 slides the window there and migrates the bucket.
        assert_eq!(q.pop_due(250), Some(1));
        // A ring push at the just-migrated cycle queues behind the migrated
        // events (migration is eager on base advance, so order is total).
        q.push(200, 9);
        assert_eq!(q.pop_due(250), Some(2));
        assert_eq!(q.pop_due(250), Some(9));
        assert_eq!(q.next_due(), Some(300));
        assert_eq!(q.pop_due(300), Some(3));
        assert!(q.is_empty());
    }

    /// Lazy decrease-key across the ring/overflow boundary: rescheduling an
    /// overflow event to an earlier in-ring cycle delivers the new deadline
    /// first, and the stale overflow entry surfaces later to be discarded.
    #[test]
    fn event_queue_decrease_key_across_ring_overflow_boundary() {
        let mut q = EventQueue::new();
        // Original deadline far in the future (overflow), then the timer is
        // "decreased" to an in-ring cycle by pushing the same token again.
        q.push(500, 7u32);
        q.push(10, 7);
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(10), Some(7), "new deadline fires first");
        // The stale copy still exists at its old cycle; a consumer tracking
        // the live deadline would disregard it on arrival.
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(500));
        assert_eq!(q.pop_due(499), None);
        assert_eq!(q.pop_due(500), Some(7));
        assert!(q.is_empty());

        // And the reverse direction: an in-ring deadline superseded by a
        // farther one (increase-key) still pops the earlier copy first.
        // (Fresh queue: the one above has slid its window past cycle 20,
        // so a push there would clamp forward to the base.)
        let mut q = EventQueue::new();
        q.push(20, 3u32);
        q.push(400, 3);
        assert_eq!(q.pop_due(20), Some(3));
        assert_eq!(q.next_due(), Some(400));
        assert_eq!(q.pop_due(400), Some(3));
        assert!(q.is_empty());
    }
}
