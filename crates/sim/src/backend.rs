//! The memory-side backend: one or more [`MemoryController`] shards behind a
//! single submission interface.
//!
//! The seed simulator hard-wired exactly one controller; the backend
//! generalizes that to `SystemConfig::num_channels` independent controller
//! shards. Cache blocks are interleaved across shards by block address
//! ([`Backend::route`]), and the shard-selection bits are stripped before the
//! request reaches a controller ([`Backend::localize`]) so that each shard
//! sees a dense address stream with the same row locality a single-controller
//! system would — exactly how real channel interleaving behaves. With
//! `num_channels = 1` the routing and localization are the identity and the
//! system behaves like the seed's single controller. (Service order under
//! backpressure is not bit-identical to the seed: the seed let fresh requests
//! overtake parked ones between retry scans, whereas the retry buckets here
//! are strictly FIFO per queue — a fairness improvement, but one that can
//! shift individual latencies whenever a controller queue fills.)
//!
//! The backend runs entirely in the DRAM clock domain: the kernel calls
//! [`Tick::tick`] once per DRAM cycle and collects the requests whose data
//! completed. New backends (e.g. a CXL-attached tier or an HBM stack) plug in
//! here: anything that accepts [`MemoryRequest`]s and implements
//! [`Tick<Event = CompletedRequest>`](crate::kernel::Tick) can stand behind
//! the same kernel.
//!
//! Requests rejected by a full controller queue wait in per-(shard, channel,
//! kind) retry buckets. Admission for a given `(channel, kind)` is strictly
//! FIFO and depends only on that queue's occupancy, so retrying just each
//! bucket's head is equivalent to the seed's full `O(waiting)` rescan — at
//! `O(accepted)` cost per cycle.

use std::collections::{BTreeMap, VecDeque};

use cloudmc_dram::{ChannelStats, DramCycles, FaultLedger};
use cloudmc_memctrl::{
    AccessKind, CompletedRequest, McStats, MemoryController, MemoryRequest, MAX_TENANTS,
};

use crate::config::SystemConfig;
use crate::kernel::Tick;
use crate::pool::{ShardJob, WorkerPool};

/// Retry bucket key: requests queue per shard, per channel, per direction,
/// because controller admission is decided exactly at that granularity.
/// A `BTreeMap` (not a `HashMap`) keeps drain order deterministic.
type RetryKey = (usize, usize, AccessKind);

/// One or more memory-controller shards selected by block-address
/// interleaving, plus the retry buckets for back-pressured requests.
///
/// The controllers live in `Option` slots so the threaded event path can
/// check a due shard out to a `WorkerPool` worker *by value* and reinsert
/// it when the tick's barrier completes; outside that window every slot is
/// `Some`. `next_due` caches, per shard, a DRAM cycle before which the shard
/// provably has nothing to do — bounds may undershoot (a stale-past bound
/// just means "due now") but never overshoot: ticks refresh the bound from
/// the controller's own timing walk, and `submit`/retry admission pull it
/// back to the admission cycle.
#[derive(Debug)]
pub struct Backend {
    shards: Vec<Option<MemoryController>>,
    next_due: Vec<DramCycles>,
    // simlint: allow(snapshot-coverage) runtime thread pool, rebuilt from config; not serializable state
    pool: Option<WorkerPool>,
    retry: BTreeMap<RetryKey, VecDeque<MemoryRequest>>,
    // simlint: allow(snapshot-coverage) derived: sum of retry bucket lengths, recomputed on load
    retry_len: usize,
    /// Kernel self-profiler flag: when set, wall-clock time spent blocked on
    /// the worker-pool barrier is accumulated in `barrier_nanos`. Off by
    /// default so the threaded tick path takes no `Instant::now` calls.
    // simlint: allow(snapshot-coverage) host profiling flag, config-derived
    profile: bool,
    // simlint: allow(snapshot-coverage) host wall-clock accounting, never simulated state
    barrier_nanos: u64,
}

impl Backend {
    /// Builds `cfg.num_channels` controller shards from `cfg.effective_mc()`,
    /// plus a `WorkerPool` when `cfg.threads > 1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the controller configuration
    /// is invalid.
    pub fn new(cfg: &SystemConfig) -> Result<Self, String> {
        let mc_cfg = cfg.effective_mc();
        let num_shards = cfg.num_channels.max(1);
        let shards = (0..num_shards)
            .map(|shard| {
                // Decorrelate the fault model across shards: with a shared
                // seed every shard would plant stuck/hard rows at identical
                // coordinates and flip the same transient bits, which is not
                // how independent DIMMs fail. The per-shard offset is a pure
                // function of the shard index, so determinism (and the
                // threaded/sequential bit-identity) is preserved.
                let mut shard_cfg = mc_cfg;
                if let Some(fault) = shard_cfg.fault_model.as_mut() {
                    fault.seed = fault
                        .seed
                        .wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
                MemoryController::new(shard_cfg).map(Some)
            })
            .collect::<Result<Vec<_>, _>>()?;
        // More workers than shards would never all be busy at once.
        let pool = (cfg.threads > 1).then(|| WorkerPool::new(cfg.threads.min(num_shards)));
        Ok(Self {
            shards,
            next_due: vec![0; num_shards],
            pool,
            retry: BTreeMap::new(),
            retry_len: 0,
            profile: cfg.telemetry.profile_kernel,
            barrier_nanos: 0,
        })
    }

    /// One shard's controller. Slots are only ever empty while a threaded
    /// tick is in flight, which never escapes a single `tick_event` call.
    fn mc(&self, shard: usize) -> &MemoryController {
        // simlint: allow(panic) slots are only empty inside tick_event_threaded
        self.shards[shard].as_ref().expect("shard checked in")
    }

    fn mc_mut(&mut self, shard: usize) -> &mut MemoryController {
        // simlint: allow(panic) slots are only empty inside tick_event_threaded
        self.shards[shard].as_mut().expect("shard checked in")
    }

    fn shards_iter(&self) -> impl Iterator<Item = &MemoryController> {
        self.shards
            .iter()
            // simlint: allow(panic) slots are only empty inside tick_event_threaded
            .map(|slot| slot.as_ref().expect("shard checked in"))
    }

    /// Number of controller shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total DRAM channels across all shards.
    #[must_use]
    pub fn total_channels(&self) -> usize {
        self.shards_iter()
            .map(MemoryController::channel_count)
            .sum()
    }

    /// One shard's controller (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &MemoryController {
        self.mc(shard)
    }

    /// The shard serving `addr`: cache blocks interleave across shards.
    #[must_use]
    pub fn route(&self, addr: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            ((addr >> 6) % self.shards.len() as u64) as usize
        }
    }

    /// Strips the shard-selection bits out of `addr`, compacting the block
    /// index so each shard sees a dense, row-local address stream.
    #[must_use]
    pub fn localize(&self, addr: u64) -> u64 {
        if self.shards.len() == 1 {
            addr
        } else {
            (((addr >> 6) / self.shards.len() as u64) << 6) | (addr & 63)
        }
    }

    /// Submits a request at DRAM cycle `now`, parking it in a retry bucket if
    /// the target queue is full. Back-pressure queueing delay stays part of
    /// the observed latency because `request.arrival` is never rewritten.
    pub fn submit(&mut self, mut request: MemoryRequest, now: DramCycles) {
        let shard = self.route(request.addr);
        request.addr = self.localize(request.addr);
        // New work invalidates the shard's cached readiness bound: it may now
        // have something to do as early as this very cycle.
        self.next_due[shard] = self.next_due[shard].min(now);
        // The bucket key needs the decoded channel, but `enqueue` decodes
        // internally anyway — so only pay for an extra decode off the fast
        // path (a backlog exists, or the controller just rejected).
        if self.retry_len > 0 {
            let channel = self.mc(shard).decode(request.addr).channel;
            let key = (shard, channel, request.kind);
            // FIFO per bucket: never overtake an already-waiting request for
            // the same queue.
            if self.retry.get(&key).is_some_and(|q| !q.is_empty()) {
                self.retry.entry(key).or_default().push_back(request);
                self.retry_len += 1;
                return;
            }
        }
        if let Err(rejected) = self.mc_mut(shard).enqueue(request, now) {
            let channel = self.mc(shard).decode(rejected.addr).channel;
            self.retry
                .entry((shard, channel, rejected.kind))
                .or_default()
                .push_back(rejected);
            self.retry_len += 1;
        }
    }

    /// Re-attempts each retry bucket's head while its target queue has space.
    fn drain_retries(&mut self, now: DramCycles) {
        if self.retry_len == 0 {
            return;
        }
        let Self {
            shards,
            next_due,
            retry,
            retry_len,
            ..
        } = self;
        for ((shard, _channel, kind), queue) in retry.iter_mut() {
            // simlint: allow(panic) slots are only empty inside tick_event_threaded
            let mc = shards[*shard].as_mut().expect("shard checked in");
            while let Some(&head) = queue.front() {
                if !mc.can_accept(head.addr, *kind) {
                    break;
                }
                // simlint: allow(panic) guarded by the can_accept check above
                mc.enqueue(head, now).expect("can_accept was just checked");
                // An admitted request invalidates the shard's cached bound.
                next_due[*shard] = next_due[*shard].min(now);
                queue.pop_front();
                *retry_len -= 1;
            }
        }
    }

    /// Requests queued or in flight inside the controllers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards_iter().map(MemoryController::pending).sum()
    }

    /// Requests waiting in retry buckets for controller queue space.
    #[must_use]
    pub fn retry_backlog(&self) -> usize {
        self.retry_len
    }

    /// Requests queued, in flight, or parked in retry buckets, per tenant
    /// (per-tenant request-conservation checks; walks the retry buckets, so
    /// not for the per-cycle hot path).
    #[must_use]
    pub fn pending_per_tenant(&self) -> [u64; MAX_TENANTS] {
        let mut out = [0u64; MAX_TENANTS];
        for shard in self.shards_iter() {
            for (slot, v) in out.iter_mut().zip(shard.pending_per_tenant()) {
                *slot += v;
            }
        }
        for queue in self.retry.values() {
            for request in queue {
                out[request.tenant.min(MAX_TENANTS - 1)] += 1;
            }
        }
        out
    }

    /// Controller statistics merged across all shards.
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut total = McStats::new(self.mc(0).config().num_cores);
        for shard in self.shards_iter() {
            total.merge(&shard.stats());
        }
        total
    }

    /// Fault-injection conservation ledger merged across all shards. All
    /// zeros when no fault model is configured.
    #[must_use]
    pub fn fault_ledger(&self) -> FaultLedger {
        let mut total = FaultLedger::default();
        for shard in self.shards_iter() {
            total.merge(&shard.fault_ledger());
        }
        total
    }

    /// The first fail-stop uncorrectable-error description latched by any
    /// shard, if one occurred (lowest shard index wins for determinism).
    #[must_use]
    pub fn fault_error(&self) -> Option<&str> {
        self.shards_iter().find_map(MemoryController::fault_error)
    }

    /// Retired-row counts per rank, concatenated shard-major then
    /// channel-major (all zeros when no fault model is configured).
    #[must_use]
    pub fn rows_retired_per_rank(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in self.shards_iter() {
            out.extend(shard.rows_retired_per_rank());
        }
        out
    }

    /// The next DRAM cycle at or after `now` at which any shard can possibly
    /// do work, derived from each controller's timing/queue state. While a
    /// retry backlog exists the backend must be ticked every cycle (admission
    /// is retried per tick), so `now` is returned. `u64::MAX` means the whole
    /// backend is quiescent.
    #[must_use]
    pub fn next_ready_dram_cycle(&self, now: DramCycles) -> DramCycles {
        if self.retry_len > 0 {
            return now;
        }
        self.shards_iter()
            .map(|shard| shard.next_ready_dram_cycle(now))
            .min()
            .unwrap_or(DramCycles::MAX)
    }

    /// The earliest DRAM cycle at or after `now` at which any shard may have
    /// work, read from the cached per-shard bounds — O(shards) arithmetic,
    /// no controller timing walk. A retry backlog forces every-tick service
    /// exactly like [`Backend::next_ready_dram_cycle`].
    #[must_use]
    pub fn cached_next_due(&self, now: DramCycles) -> DramCycles {
        if self.retry_len > 0 {
            return now;
        }
        self.next_due
            .iter()
            .copied()
            .min()
            .unwrap_or(DramCycles::MAX)
            .max(now)
    }

    /// Accounts for `cycles` DRAM cycles the kernel has proven eventless for
    /// every shard (bulk queue-occupancy sampling; see
    /// [`MemoryController::skip_dram_cycles`]).
    pub fn skip_dram_cycles(&mut self, cycles: u64) {
        for slot in &mut self.shards {
            slot.as_mut()
                // simlint: allow(panic) slots are only empty inside tick_event_threaded
                .expect("shard checked in")
                .skip_dram_cycles(cycles);
        }
    }

    /// Event-driven DRAM tick: only shards whose cached bound says they are
    /// due run the full controller tick; the rest account the cycle as a
    /// skip (keeping queue-occupancy sample counts identical to the naive
    /// every-shard tick). A due shard's bound is refreshed from the tick's
    /// outcome by `bound_after_tick`.
    ///
    /// With a worker pool and more than one due shard, due ticks run on the
    /// pool and merge in shard order — completions, stats and bounds are
    /// bit-identical to the sequential path for any thread count.
    pub fn tick_event(&mut self, now: DramCycles, events: &mut Vec<CompletedRequest>) {
        self.drain_retries(now);
        let due = self.next_due.iter().filter(|&&d| d <= now).count();
        if due > 1 && self.pool.is_some() {
            self.tick_event_threaded(now, events);
        } else {
            for shard in 0..self.shards.len() {
                if self.next_due[shard] <= now {
                    // simlint: allow(panic) slots are only empty inside tick_event_threaded
                    let mc = self.shards[shard].as_mut().expect("shard checked in");
                    let worked = mc.tick(now, events);
                    self.next_due[shard] = bound_after_tick(mc, worked, now);
                } else {
                    self.mc_mut(shard).skip_dram_cycles(1);
                }
            }
        }
    }

    /// The threaded half of [`Backend::tick_event`]: check due controllers
    /// out to the pool, barrier on all results, reinsert in shard order.
    fn tick_event_threaded(&mut self, now: DramCycles, events: &mut Vec<CompletedRequest>) {
        // simlint: allow(panic) tick_event dispatches here only when a pool exists
        let pool = self.pool.as_ref().expect("pool checked by caller");
        let mut dispatched = 0usize;
        for shard in 0..self.shards.len() {
            if self.next_due[shard] <= now {
                // simlint: allow(panic) slots are refilled before tick_event_threaded returns
                let mc = self.shards[shard].take().expect("shard checked in");
                pool.dispatch(ShardJob { shard, mc, now });
                dispatched += 1;
            } else {
                self.shards[shard]
                    .as_mut()
                    // simlint: allow(panic) slots are refilled before tick_event_threaded returns
                    .expect("shard checked in")
                    .skip_dram_cycles(1);
            }
        }
        // Deterministic barrier: every checked-out controller must come home
        // before the DRAM tick (and with it the 2:5 clock-crossing step)
        // completes. Completions merge in ascending shard order — exactly
        // the sequential service order.
        // simlint: allow(wall-clock) profile-gated: measures host time only, never sim state
        let barrier_start = self.profile.then(std::time::Instant::now);
        let mut results: Vec<_> = (0..dispatched).map(|_| pool.collect()).collect();
        if let Some(start) = barrier_start {
            self.barrier_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        results.sort_unstable_by_key(|r| r.shard);
        for result in results {
            self.next_due[result.shard] = result.next_due;
            self.shards[result.shard] = Some(result.mc);
            events.extend(result.done);
        }
    }

    /// Wall-clock nanoseconds spent blocked on the worker-pool barrier since
    /// the last call, resetting the accumulator. Always 0 unless the kernel
    /// self-profiler is enabled in the telemetry configuration.
    pub(crate) fn take_barrier_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.barrier_nanos)
    }

    /// Why this backend cannot be checkpointed, if it cannot: any shard
    /// using dynamically dispatched (boxed) scheduler or policy plugins has
    /// state the snapshot format cannot see. `None` means snapshotting is
    /// supported. The worker pool is not a blocker — it holds no
    /// architectural state and is rebuilt from the configuration on restore.
    #[must_use]
    pub fn snapshot_unsupported_reason(&self) -> Option<&'static str> {
        self.shards_iter()
            .find_map(MemoryController::snapshot_unsupported_reason)
    }

    /// Serializes the backend's mutable state: every controller shard in
    /// index order, the cached per-shard readiness bounds, and the retry
    /// buckets (checkpoint support). Callers must gate on
    /// [`Backend::snapshot_unsupported_reason`] first.
    pub fn save_state(&self, w: &mut cloudmc_snap::SnapWriter) {
        w.section("backend");
        w.usize(self.shards.len());
        for shard in self.shards_iter() {
            shard.save_state(w);
        }
        w.u64_slice(&self.next_due);
        w.usize(self.retry.len());
        for (&(shard, channel, kind), queue) in &self.retry {
            w.usize(shard);
            w.usize(channel);
            w.u8(match kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
            w.usize(queue.len());
            for req in queue {
                w.u64(req.id);
                w.u8(match req.kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                });
                w.u64(req.addr);
                w.usize(req.core);
                w.usize(req.tenant);
                w.u64(req.arrival);
                w.bool(req.dma);
            }
        }
    }

    /// Restores the backend's mutable state from a checkpoint. The backend
    /// must have been built from the same configuration as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cloudmc_snap::SnapError`] on truncation, impossible
    /// values, or shapes that do not match the configuration.
    pub fn load_state(
        &mut self,
        r: &mut cloudmc_snap::SnapReader<'_>,
    ) -> Result<(), cloudmc_snap::SnapError> {
        r.section("backend")?;
        let count = r.usize()?;
        if count != self.shards.len() {
            return Err(r.bad_value(format!("{count} shards, expected {}", self.shards.len())));
        }
        for slot in &mut self.shards {
            // simlint: allow(panic) slots are only empty inside tick_event_threaded
            slot.as_mut().expect("shard checked in").load_state(r)?;
        }
        let bounds = r.bounded_len(8)?;
        if bounds != self.next_due.len() {
            return Err(r.bad_value(format!(
                "{bounds} shard bounds, expected {}",
                self.next_due.len()
            )));
        }
        for slot in &mut self.next_due {
            *slot = r.u64()?;
        }
        self.retry.clear();
        self.retry_len = 0;
        let buckets = r.bounded_len(16)?;
        for _ in 0..buckets {
            let shard = r.usize()?;
            if shard >= self.shards.len() {
                return Err(r.bad_value(format!("retry bucket shard {shard} out of range")));
            }
            let channel = r.usize()?;
            let channels = self.mc(shard).channel_count();
            if channel >= channels {
                return Err(r.bad_value(format!("retry bucket channel {channel} out of range")));
            }
            let kind = match r.u8()? {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                other => {
                    return Err(r.bad_value(format!("retry bucket access kind {other}")));
                }
            };
            let len = r.bounded_len(30)?;
            let mut queue = VecDeque::with_capacity(len);
            for _ in 0..len {
                let id = r.u64()?;
                let req_kind = match r.u8()? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    other => return Err(r.bad_value(format!("request access kind {other}"))),
                };
                let addr = r.u64()?;
                let core = r.usize()?;
                let tenant = r.usize()?;
                if tenant >= MAX_TENANTS {
                    return Err(r.bad_value(format!("request tenant {tenant} out of range")));
                }
                let arrival = r.u64()?;
                let dma = r.bool()?;
                queue.push_back(MemoryRequest {
                    id,
                    kind: req_kind,
                    addr,
                    core,
                    tenant,
                    arrival,
                    dma,
                });
            }
            self.retry_len += queue.len();
            if self.retry.insert((shard, channel, kind), queue).is_some() {
                return Err(r.bad_value(format!(
                    "duplicate retry bucket (shard {shard}, channel {channel})"
                )));
            }
        }
        Ok(())
    }

    /// Device-level statistics summed over every channel of every shard
    /// (command counters only; residency via [`Backend::device_totals_at`]).
    #[must_use]
    pub fn device_totals(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for shard in self.shards_iter() {
            for ch in 0..shard.channel_count() {
                total.merge(shard.channel_device_stats(ch));
            }
        }
        total
    }

    /// Device-level statistics summed over every channel of every shard,
    /// including power-state residency accrued up to DRAM cycle `now` in
    /// closed form (exact under fast-forward).
    #[must_use]
    pub fn device_totals_at(&self, now: DramCycles) -> ChannelStats {
        let mut total = ChannelStats::default();
        for shard in self.shards_iter() {
            for ch in 0..shard.channel_count() {
                total.merge(&shard.channel_device_stats_at(ch, now));
            }
        }
        total
    }
}

/// A shard's next-due bound after an executed tick at `now`.
///
/// A shard with queued or in-flight requests is simply polled again next
/// tick, like the naive loop: its fences (bus turnaround, tRCD, a transfer
/// in flight) are a handful of DRAM cycles, and the full
/// [`MemoryController::next_ready_dram_cycle`] walk — every inflight entry,
/// every rank's refresh state, every queued request's earliest legal command,
/// plus scheduler/page/power timers — costs more than the no-op ticks it
/// would skip. Only a *drained* shard takes the walk, where the bound is a
/// refresh or policy-timer horizon hundreds of cycles out and skipping pays.
/// Both the sequential and the worker-pool tick path use this one function,
/// so the tick/skip pattern (and with it every queue-occupancy sample) is
/// identical for any thread count.
pub(crate) fn bound_after_tick(mc: &MemoryController, worked: bool, now: DramCycles) -> DramCycles {
    if worked || mc.pending() > 0 {
        now + 1
    } else {
        mc.next_ready_dram_cycle(now + 1).max(now + 1)
    }
}

impl Tick for Backend {
    type Event = CompletedRequest;

    /// Advances every shard by one DRAM cycle after retrying parked requests,
    /// reporting the requests whose data completed this cycle.
    fn tick(&mut self, now: u64, events: &mut Vec<CompletedRequest>) {
        self.drain_retries(now);
        for slot in &mut self.shards {
            // simlint: allow(panic) slots are only empty inside tick_event_threaded
            slot.as_mut().expect("shard checked in").tick(now, events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn backend(num_channels: usize) -> Backend {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.num_channels = num_channels;
        Backend::new(&cfg).unwrap()
    }

    fn drain(backend: &mut Backend, cycles: u64) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for c in 0..cycles {
            backend.tick(c, &mut done);
        }
        done
    }

    #[test]
    fn single_shard_routing_is_identity() {
        let be = backend(1);
        for addr in [0u64, 64, 0x1234_5678, u64::MAX - 63] {
            assert_eq!(be.route(addr), 0);
            assert_eq!(be.localize(addr), addr);
        }
    }

    #[test]
    fn blocks_interleave_across_shards() {
        let be = backend(4);
        assert_eq!(be.shard_count(), 4);
        assert_eq!(be.total_channels(), 4);
        let shards: Vec<usize> = (0..8u64).map(|b| be.route(b * 64)).collect();
        assert_eq!(shards, [0, 1, 2, 3, 0, 1, 2, 3]);
        // Consecutive blocks of one shard stay consecutive after
        // localization, preserving row locality.
        assert_eq!(be.localize(0), 0);
        assert_eq!(be.localize(4 * 64), 64);
        assert_eq!(be.localize(8 * 64 + 17), 128 + 17);
    }

    #[test]
    fn requests_complete_across_shards() {
        let mut be = backend(2);
        for i in 0..16u64 {
            be.submit(
                MemoryRequest::new(i, AccessKind::Read, i * 64, (i % 16) as usize, 0),
                0,
            );
        }
        let done = drain(&mut be, 500);
        assert_eq!(done.len(), 16);
        assert_eq!(be.stats().reads_completed, 16);
        assert_eq!(be.pending(), 0);
        assert_eq!(be.retry_backlog(), 0);
        // Both shards saw traffic.
        assert!(be.shard(0).stats().reads_completed > 0);
        assert!(be.shard(1).stats().reads_completed > 0);
        assert!(be.device_totals().reads > 0);
    }

    #[test]
    fn backpressure_parks_and_eventually_serves_requests() {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.mc.read_queue_capacity = 2;
        cfg.num_channels = 1;
        let mut be = Backend::new(&cfg).unwrap();
        for i in 0..12u64 {
            be.submit(
                MemoryRequest::new(i, AccessKind::Read, i * 0x2_0000, 0, 0),
                0,
            );
        }
        assert!(be.retry_backlog() > 0, "tiny queue must reject some");
        let done = drain(&mut be, 3_000);
        assert_eq!(done.len(), 12, "parked requests must eventually complete");
        assert_eq!(be.retry_backlog(), 0);
    }

    #[test]
    fn retry_preserves_fifo_order_per_queue() {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.mc.read_queue_capacity = 1;
        let mut be = Backend::new(&cfg).unwrap();
        // Same bank and row: service order follows arrival order.
        for i in 0..6u64 {
            be.submit(MemoryRequest::new(i, AccessKind::Read, i * 64, 0, 0), 0);
        }
        let done = drain(&mut be, 5_000);
        let order: Vec<u64> = done.iter().map(|d| d.request.id).collect();
        assert_eq!(order, [0, 1, 2, 3, 4, 5]);
    }
}
