//! The memory-side backend: one or more [`MemoryController`] shards behind a
//! single submission interface.
//!
//! The seed simulator hard-wired exactly one controller; the backend
//! generalizes that to `SystemConfig::num_channels` independent controller
//! shards. Cache blocks are interleaved across shards by block address
//! ([`Backend::route`]), and the shard-selection bits are stripped before the
//! request reaches a controller ([`Backend::localize`]) so that each shard
//! sees a dense address stream with the same row locality a single-controller
//! system would — exactly how real channel interleaving behaves. With
//! `num_channels = 1` the routing and localization are the identity and the
//! system behaves like the seed's single controller. (Service order under
//! backpressure is not bit-identical to the seed: the seed let fresh requests
//! overtake parked ones between retry scans, whereas the retry buckets here
//! are strictly FIFO per queue — a fairness improvement, but one that can
//! shift individual latencies whenever a controller queue fills.)
//!
//! The backend runs entirely in the DRAM clock domain: the kernel calls
//! [`Tick::tick`] once per DRAM cycle and collects the requests whose data
//! completed. New backends (e.g. a CXL-attached tier or an HBM stack) plug in
//! here: anything that accepts [`MemoryRequest`]s and implements
//! [`Tick<Event = CompletedRequest>`](crate::kernel::Tick) can stand behind
//! the same kernel.
//!
//! Requests rejected by a full controller queue wait in per-(shard, channel,
//! kind) retry buckets. Admission for a given `(channel, kind)` is strictly
//! FIFO and depends only on that queue's occupancy, so retrying just each
//! bucket's head is equivalent to the seed's full `O(waiting)` rescan — at
//! `O(accepted)` cost per cycle.

use std::collections::{BTreeMap, VecDeque};

use cloudmc_dram::{ChannelStats, DramCycles};
use cloudmc_memctrl::{
    AccessKind, CompletedRequest, McStats, MemoryController, MemoryRequest, MAX_TENANTS,
};

use crate::config::SystemConfig;
use crate::kernel::Tick;

/// Retry bucket key: requests queue per shard, per channel, per direction,
/// because controller admission is decided exactly at that granularity.
/// A `BTreeMap` (not a `HashMap`) keeps drain order deterministic.
type RetryKey = (usize, usize, AccessKind);

/// One or more memory-controller shards selected by block-address
/// interleaving, plus the retry buckets for back-pressured requests.
#[derive(Debug)]
pub struct Backend {
    shards: Vec<MemoryController>,
    retry: BTreeMap<RetryKey, VecDeque<MemoryRequest>>,
    retry_len: usize,
}

impl Backend {
    /// Builds `cfg.num_channels` controller shards from `cfg.effective_mc()`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the controller configuration
    /// is invalid.
    pub fn new(cfg: &SystemConfig) -> Result<Self, String> {
        let mc_cfg = cfg.effective_mc();
        let shards = (0..cfg.num_channels.max(1))
            .map(|_| MemoryController::new(mc_cfg))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            retry: BTreeMap::new(),
            retry_len: 0,
        })
    }

    /// Number of controller shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total DRAM channels across all shards.
    #[must_use]
    pub fn total_channels(&self) -> usize {
        self.shards
            .iter()
            .map(MemoryController::channel_count)
            .sum()
    }

    /// One shard's controller (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &MemoryController {
        &self.shards[shard]
    }

    /// The shard serving `addr`: cache blocks interleave across shards.
    #[must_use]
    pub fn route(&self, addr: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            ((addr >> 6) % self.shards.len() as u64) as usize
        }
    }

    /// Strips the shard-selection bits out of `addr`, compacting the block
    /// index so each shard sees a dense, row-local address stream.
    #[must_use]
    pub fn localize(&self, addr: u64) -> u64 {
        if self.shards.len() == 1 {
            addr
        } else {
            (((addr >> 6) / self.shards.len() as u64) << 6) | (addr & 63)
        }
    }

    /// Submits a request at DRAM cycle `now`, parking it in a retry bucket if
    /// the target queue is full. Back-pressure queueing delay stays part of
    /// the observed latency because `request.arrival` is never rewritten.
    pub fn submit(&mut self, mut request: MemoryRequest, now: DramCycles) {
        let shard = self.route(request.addr);
        request.addr = self.localize(request.addr);
        // The bucket key needs the decoded channel, but `enqueue` decodes
        // internally anyway — so only pay for an extra decode off the fast
        // path (a backlog exists, or the controller just rejected).
        if self.retry_len > 0 {
            let channel = self.shards[shard].decode(request.addr).channel;
            let key = (shard, channel, request.kind);
            // FIFO per bucket: never overtake an already-waiting request for
            // the same queue.
            if self.retry.get(&key).is_some_and(|q| !q.is_empty()) {
                self.retry.entry(key).or_default().push_back(request);
                self.retry_len += 1;
                return;
            }
        }
        if let Err(rejected) = self.shards[shard].enqueue(request, now) {
            let channel = self.shards[shard].decode(rejected.addr).channel;
            self.retry
                .entry((shard, channel, rejected.kind))
                .or_default()
                .push_back(rejected);
            self.retry_len += 1;
        }
    }

    /// Re-attempts each retry bucket's head while its target queue has space.
    fn drain_retries(&mut self, now: DramCycles) {
        if self.retry_len == 0 {
            return;
        }
        for ((shard, _channel, kind), queue) in &mut self.retry {
            while let Some(&head) = queue.front() {
                if !self.shards[*shard].can_accept(head.addr, *kind) {
                    break;
                }
                self.shards[*shard]
                    .enqueue(head, now)
                    .expect("can_accept was just checked");
                queue.pop_front();
                self.retry_len -= 1;
            }
        }
    }

    /// Requests queued or in flight inside the controllers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.iter().map(MemoryController::pending).sum()
    }

    /// Requests waiting in retry buckets for controller queue space.
    #[must_use]
    pub fn retry_backlog(&self) -> usize {
        self.retry_len
    }

    /// Requests queued, in flight, or parked in retry buckets, per tenant
    /// (per-tenant request-conservation checks; walks the retry buckets, so
    /// not for the per-cycle hot path).
    #[must_use]
    pub fn pending_per_tenant(&self) -> [u64; MAX_TENANTS] {
        let mut out = [0u64; MAX_TENANTS];
        for shard in &self.shards {
            for (slot, v) in out.iter_mut().zip(shard.pending_per_tenant()) {
                *slot += v;
            }
        }
        for queue in self.retry.values() {
            for request in queue {
                out[request.tenant.min(MAX_TENANTS - 1)] += 1;
            }
        }
        out
    }

    /// Controller statistics merged across all shards.
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut total = McStats::new(self.shards[0].config().num_cores);
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    /// The next DRAM cycle at or after `now` at which any shard can possibly
    /// do work, derived from each controller's timing/queue state. While a
    /// retry backlog exists the backend must be ticked every cycle (admission
    /// is retried per tick), so `now` is returned. `u64::MAX` means the whole
    /// backend is quiescent.
    #[must_use]
    pub fn next_ready_dram_cycle(&self, now: DramCycles) -> DramCycles {
        if self.retry_len > 0 {
            return now;
        }
        self.shards
            .iter()
            .map(|shard| shard.next_ready_dram_cycle(now))
            .min()
            .unwrap_or(DramCycles::MAX)
    }

    /// Accounts for `cycles` DRAM cycles the kernel has proven eventless for
    /// every shard (bulk queue-occupancy sampling; see
    /// [`MemoryController::skip_dram_cycles`]).
    pub fn skip_dram_cycles(&mut self, cycles: u64) {
        for shard in &mut self.shards {
            shard.skip_dram_cycles(cycles);
        }
    }

    /// Device-level statistics summed over every channel of every shard
    /// (command counters only; residency via [`Backend::device_totals_at`]).
    #[must_use]
    pub fn device_totals(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for shard in &self.shards {
            for ch in 0..shard.channel_count() {
                total.merge(shard.channel_device_stats(ch));
            }
        }
        total
    }

    /// Device-level statistics summed over every channel of every shard,
    /// including power-state residency accrued up to DRAM cycle `now` in
    /// closed form (exact under fast-forward).
    #[must_use]
    pub fn device_totals_at(&self, now: DramCycles) -> ChannelStats {
        let mut total = ChannelStats::default();
        for shard in &self.shards {
            for ch in 0..shard.channel_count() {
                total.merge(&shard.channel_device_stats_at(ch, now));
            }
        }
        total
    }
}

impl Tick for Backend {
    type Event = CompletedRequest;

    /// Advances every shard by one DRAM cycle after retrying parked requests,
    /// reporting the requests whose data completed this cycle.
    fn tick(&mut self, now: u64, events: &mut Vec<CompletedRequest>) {
        self.drain_retries(now);
        for shard in &mut self.shards {
            shard.tick(now, events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmc_workloads::Workload;

    fn backend(num_channels: usize) -> Backend {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.num_channels = num_channels;
        Backend::new(&cfg).unwrap()
    }

    fn drain(backend: &mut Backend, cycles: u64) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for c in 0..cycles {
            backend.tick(c, &mut done);
        }
        done
    }

    #[test]
    fn single_shard_routing_is_identity() {
        let be = backend(1);
        for addr in [0u64, 64, 0x1234_5678, u64::MAX - 63] {
            assert_eq!(be.route(addr), 0);
            assert_eq!(be.localize(addr), addr);
        }
    }

    #[test]
    fn blocks_interleave_across_shards() {
        let be = backend(4);
        assert_eq!(be.shard_count(), 4);
        assert_eq!(be.total_channels(), 4);
        let shards: Vec<usize> = (0..8u64).map(|b| be.route(b * 64)).collect();
        assert_eq!(shards, [0, 1, 2, 3, 0, 1, 2, 3]);
        // Consecutive blocks of one shard stay consecutive after
        // localization, preserving row locality.
        assert_eq!(be.localize(0), 0);
        assert_eq!(be.localize(4 * 64), 64);
        assert_eq!(be.localize(8 * 64 + 17), 128 + 17);
    }

    #[test]
    fn requests_complete_across_shards() {
        let mut be = backend(2);
        for i in 0..16u64 {
            be.submit(
                MemoryRequest::new(i, AccessKind::Read, i * 64, (i % 16) as usize, 0),
                0,
            );
        }
        let done = drain(&mut be, 500);
        assert_eq!(done.len(), 16);
        assert_eq!(be.stats().reads_completed, 16);
        assert_eq!(be.pending(), 0);
        assert_eq!(be.retry_backlog(), 0);
        // Both shards saw traffic.
        assert!(be.shard(0).stats().reads_completed > 0);
        assert!(be.shard(1).stats().reads_completed > 0);
        assert!(be.device_totals().reads > 0);
    }

    #[test]
    fn backpressure_parks_and_eventually_serves_requests() {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.mc.read_queue_capacity = 2;
        cfg.num_channels = 1;
        let mut be = Backend::new(&cfg).unwrap();
        for i in 0..12u64 {
            be.submit(
                MemoryRequest::new(i, AccessKind::Read, i * 0x2_0000, 0, 0),
                0,
            );
        }
        assert!(be.retry_backlog() > 0, "tiny queue must reject some");
        let done = drain(&mut be, 3_000);
        assert_eq!(done.len(), 12, "parked requests must eventually complete");
        assert_eq!(be.retry_backlog(), 0);
    }

    #[test]
    fn retry_preserves_fifo_order_per_queue() {
        let mut cfg = SystemConfig::baseline(Workload::TpchQ6);
        cfg.mc.read_queue_capacity = 1;
        let mut be = Backend::new(&cfg).unwrap();
        // Same bank and row: service order follows arrival order.
        for i in 0..6u64 {
            be.submit(MemoryRequest::new(i, AccessKind::Read, i * 64, 0, 0), 0);
        }
        let done = drain(&mut be, 5_000);
        let order: Vec<u64> = done.iter().map(|d| d.request.id).collect();
        assert_eq!(order, [0, 1, 2, 3, 4, 5]);
    }
}
