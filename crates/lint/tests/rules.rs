//! Integration tests: every rule against the known-bad / known-good fixture
//! trees, mutation tests for the cross-file rules, and a self-check that the
//! live workspace is violation-free.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cloudmc_lint::{analyze, update_schema, Config, Report};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_all(root: PathBuf) -> Report {
    analyze(&Config::all_rules(root)).expect("analyze fixture tree")
}

fn analyze_rule(root: PathBuf, rule: &str) -> Report {
    let enabled: BTreeSet<String> = [rule.to_owned()].into_iter().collect();
    analyze(&Config { root, enabled }).expect("analyze fixture tree")
}

/// Asserts the bad tree reports `rule` in `file`, and the good tree reports
/// `rule` nowhere.
fn assert_hit_and_clean(rule: &str, bad_file: &str) {
    let bad = analyze_rule(fixture_root("bad"), rule);
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == rule && d.file == bad_file),
        "expected a `{rule}` diagnostic in {bad_file}, got: {:#?}",
        bad.diagnostics
    );
    let good = analyze_rule(fixture_root("good"), rule);
    assert!(
        good.diagnostics.iter().all(|d| d.rule != rule),
        "good tree must be clean for `{rule}`, got: {:#?}",
        good.diagnostics
    );
}

#[test]
fn hash_iter_hits_bad_and_passes_good() {
    assert_hit_and_clean("hash-iter", "crates/sim/src/hash_bad.rs");
}

#[test]
fn wall_clock_hits_bad_and_passes_good() {
    assert_hit_and_clean("wall-clock", "crates/sim/src/clock_bad.rs");
}

#[test]
fn panic_hits_bad_and_passes_good() {
    assert_hit_and_clean("panic", "crates/sim/src/panic_bad.rs");
}

#[test]
fn snapshot_coverage_hits_bad_and_passes_good() {
    assert_hit_and_clean("snapshot-coverage", "crates/memctrl/src/snapio.rs");
    // The diagnostic names the forgotten field.
    let bad = analyze_rule(fixture_root("bad"), "snapshot-coverage");
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "snapshot-coverage" && d.message.contains("addr")),
        "diagnostic should name the missing `addr` field: {:#?}",
        bad.diagnostics
    );
}

#[test]
fn stats_schema_hits_bad_and_passes_good() {
    assert_hit_and_clean("stats-schema", "crates/sim/src/stats.rs");
    let bad = analyze_rule(fixture_root("bad"), "stats-schema");
    // Both drift directions are reported: a schema key gone from the source
    // and a new source key missing from the schema.
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "stats-schema" && d.message.contains("row_hits")),
        "removed key `row_hits` must be reported: {:#?}",
        bad.diagnostics
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "stats-schema" && d.message.contains("writes")),
        "unlisted key `writes` must be reported: {:#?}",
        bad.diagnostics
    );
}

#[test]
fn no_unsafe_hits_bad_and_passes_good() {
    assert_hit_and_clean("no-unsafe", "crates/cpu/src/unsafe_bad.rs");
}

#[test]
fn float_merge_hits_bad_and_passes_good() {
    assert_hit_and_clean("float-merge", "crates/memctrl/src/merge_bad.rs");
}

#[test]
fn io_access_hits_bad_and_passes_good() {
    assert_hit_and_clean("io-access", "crates/dram/src/io_bad.rs");
}

#[test]
fn suppression_without_reason_is_itself_a_violation() {
    let bad = analyze_rule(fixture_root("bad"), "panic");
    assert!(
        bad.diagnostics.iter().any(|d| {
            d.rule == "panic"
                && d.file == "crates/sim/src/empty_reason.rs"
                && d.message.contains("justification")
        }),
        "reason-less suppression must be flagged: {:#?}",
        bad.diagnostics
    );
}

#[test]
fn justified_suppression_is_counted_not_reported() {
    let good = analyze_rule(fixture_root("good"), "wall-clock");
    assert!(good.diagnostics.is_empty());
    assert_eq!(
        good.suppressed, 1,
        "the annotated Instant::now in clock_good.rs counts as suppressed"
    );
}

#[test]
fn good_tree_is_fully_clean_under_all_rules() {
    let good = analyze_all(fixture_root("good"));
    assert!(
        good.diagnostics.is_empty(),
        "good tree must pass every rule: {:#?}",
        good.diagnostics
    );
    assert!(good.files_scanned >= 7);
}

// ---------------------------------------------------------------------------
// Mutation tests: start from clean sources, inject one regression, and
// assert simlint catches it.
// ---------------------------------------------------------------------------

/// Builds a throwaway workspace tree from `(relative path, contents)` pairs,
/// runs `f` against its root, and cleans up.
fn with_temp_tree(name: &str, files: &[(&str, &str)], f: impl FnOnce(&Path)) {
    let root = std::env::temp_dir().join(format!("simlint-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dir");
        std::fs::write(&path, text).expect("write fixture file");
    }
    f(&root);
    let _ = std::fs::remove_dir_all(&root);
}

const COVERED_STATE: &str = "\
pub struct CoreState { pub pc: u64, pub cycles: u64 }
impl CoreState {
    pub fn save_state(&self, w: &mut Vec<u64>) {
        w.push(self.pc);
        w.push(self.cycles);
    }
    pub fn load_state(&mut self, r: &mut std::slice::Iter<'_, u64>) {
        self.pc = *r.next().copied().unwrap_or(&0);
        self.cycles = *r.next().copied().unwrap_or(&0);
    }
}
";

#[test]
fn mutation_field_dropped_from_save_state_is_reported() {
    // The clean version passes…
    with_temp_tree(
        "snapcov-clean",
        &[("crates/sim/src/state.rs", COVERED_STATE)],
        |root| {
            let report = analyze_rule(root.to_path_buf(), "snapshot-coverage");
            assert!(
                report.diagnostics.is_empty(),
                "covered struct must pass: {:#?}",
                report.diagnostics
            );
        },
    );
    // …and deleting one `w.push(self.cycles)` line is caught.
    let mutated = COVERED_STATE.replacen("        w.push(self.cycles);\n", "", 1);
    with_temp_tree(
        "snapcov-mutated",
        &[("crates/sim/src/state.rs", &mutated)],
        |root| {
            let report = analyze_rule(root.to_path_buf(), "snapshot-coverage");
            assert!(
                report.diagnostics.iter().any(|d| {
                    d.rule == "snapshot-coverage"
                        && d.message.contains("cycles")
                        && d.message.contains("save_state")
                }),
                "dropped field `cycles` must be reported: {:#?}",
                report.diagnostics
            );
        },
    );
}

const STATS_SOURCE: &str = "\
pub struct SimStats { pub reads: u64, pub writes: u64 }
impl SimStats {
    pub fn to_json(&self) -> String {
        format!(\"{{\\\"reads\\\":{},\\\"writes\\\":{}}}\", self.reads, self.writes)
    }
}
";

#[test]
fn mutation_key_deleted_from_schema_file_is_reported() {
    // In-sync schema passes…
    with_temp_tree(
        "schema-clean",
        &[
            ("crates/sim/src/stats.rs", STATS_SOURCE),
            ("stats_schema.txt", "reads\nwrites\n"),
        ],
        |root| {
            let report = analyze_rule(root.to_path_buf(), "stats-schema");
            assert!(
                report.diagnostics.is_empty(),
                "in-sync schema must pass: {:#?}",
                report.diagnostics
            );
        },
    );
    // …and deleting the `writes` line from stats_schema.txt is caught.
    with_temp_tree(
        "schema-mutated",
        &[
            ("crates/sim/src/stats.rs", STATS_SOURCE),
            ("stats_schema.txt", "reads\n"),
        ],
        |root| {
            let report = analyze_rule(root.to_path_buf(), "stats-schema");
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.rule == "stats-schema" && d.message.contains("writes")),
                "deleted schema key `writes` must be reported: {:#?}",
                report.diagnostics
            );
        },
    );
}

#[test]
fn update_schema_regenerates_a_passing_schema() {
    with_temp_tree(
        "schema-regen",
        &[("crates/sim/src/stats.rs", STATS_SOURCE)],
        |root| {
            // No schema file at all is a violation…
            let before = analyze_rule(root.to_path_buf(), "stats-schema");
            assert!(!before.diagnostics.is_empty());
            // …and --update-schema repairs it.
            let n = update_schema(root).expect("regenerate schema");
            assert_eq!(n, 2, "two keys: reads, writes");
            let after = analyze_rule(root.to_path_buf(), "stats-schema");
            assert!(
                after.diagnostics.is_empty(),
                "regenerated schema must pass: {:#?}",
                after.diagnostics
            );
        },
    );
}

// ---------------------------------------------------------------------------
// Live workspace self-check.
// ---------------------------------------------------------------------------

#[test]
fn live_workspace_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = analyze_all(root);
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean — fix or annotate:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "sanity: the real tree was scanned"
    );
}
