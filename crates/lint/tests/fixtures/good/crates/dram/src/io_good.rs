//! Fixture: configuration arrives through typed config structs, not the
//! process environment (clean for `io-access` and `no-unsafe`).

/// Geometry knob passed in by the caller.
pub struct RowConfig {
    /// Rows per bank.
    pub rows: u64,
}

/// Model code consumes explicit configuration.
pub fn rows(cfg: &RowConfig) -> u64 {
    cfg.rows
}
