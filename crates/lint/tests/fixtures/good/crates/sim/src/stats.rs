//! Fixture: stats JSON keys match the checked-in schema exactly
//! (clean for `stats-schema`).

/// Simulator counters serialized to JSON.
pub struct SimStats {
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
}

impl SimStats {
    /// Renders the counters as a stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        format!("{{\"reads\":{},\"writes\":{}}}", self.reads, self.writes)
    }
}
