//! Fixture: annotated, profile-gated wall-clock read (clean for
//! `wall-clock` — the suppression carries a justification).

use std::time::Instant;

/// Host-time probe used only by the opt-in profiler.
pub fn profile_stamp(enabled: bool) -> Option<Instant> {
    if !enabled {
        return None;
    }
    // simlint: allow(wall-clock) profile-gated: measures host time only, never sim state
    Some(Instant::now())
}
