//! Fixture: HashMap used without direct iteration (clean for `hash-iter`).

use std::collections::HashMap;

/// Holds per-tenant counters keyed by tenant id.
pub struct TenantCounters {
    counts: HashMap<u64, u64>,
}

impl TenantCounters {
    /// Point lookups and inserts are fine; only iteration is ordered-hash.
    pub fn bump(&mut self, tenant: u64) {
        *self.counts.entry(tenant).or_insert(0) += 1;
    }

    /// Reads one tenant's counter.
    pub fn get(&self, tenant: u64) -> u64 {
        self.counts.get(&tenant).copied().unwrap_or(0)
    }
}
