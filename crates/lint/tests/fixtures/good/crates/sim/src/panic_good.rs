//! Fixture: error paths stay typed in library code; tests may unwrap
//! (clean for `panic`).

/// Returns the first element or a default — no panic path.
pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [7u64];
        assert_eq!(xs.first().copied().unwrap(), first(&xs));
    }
}
